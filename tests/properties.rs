//! Cross-crate property-based tests: invariants that must hold for any
//! associative memory, any mapping strategy, and any query.

use hd_linalg::BitVector;
use hdc::BinaryAm;
use imc_sim::{tile_grid, AmMapping, ArraySpec, MappingStrategy};
use proptest::prelude::*;

/// A sampled test case: class count, raw `(class, bits)` centroids, and a
/// matching query.
type AmQueryCase = (usize, Vec<(usize, Vec<bool>)>, Vec<bool>);

/// Strategy: a random binary AM plus a matching random query.
fn am_and_query(
    max_classes: usize,
    max_vectors: usize,
    dims: Vec<usize>,
) -> impl Strategy<Value = AmQueryCase> {
    (2..=max_classes, prop::sample::select(dims)).prop_flat_map(move |(k, dim)| {
        let vectors = prop::collection::vec(
            (0..k, prop::collection::vec(any::<bool>(), dim)),
            k..=max_vectors,
        );
        let query = prop::collection::vec(any::<bool>(), dim);
        (Just(k), vectors, query)
    })
}

fn build_am(k: usize, raw: &[(usize, Vec<bool>)]) -> BinaryAm {
    let centroids: Vec<(usize, BitVector)> =
        raw.iter().map(|(c, bits)| (*c, BitVector::from_bools(bits))).collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mapping (Basic or any valid partitioning) computes exactly the
    /// software associative-search scores.
    #[test]
    fn mapped_search_equals_software(
        (k, raw, qbits) in am_and_query(4, 8, vec![60, 64, 120, 128]),
        partitions in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let am = build_am(k, &raw);
        let dim = am.dim();
        prop_assume!(dim.is_multiple_of(partitions));
        let strategy = if partitions == 1 {
            MappingStrategy::Basic
        } else {
            MappingStrategy::Partitioned { partitions }
        };
        let mapping = AmMapping::new(&am, ArraySpec::new(32, 16).unwrap(), strategy).unwrap();
        let q = BitVector::from_bools(&qbits);
        let hw = mapping.search(&q).unwrap();
        let sw = am.scores(&q).unwrap();
        prop_assert_eq!(&hw.scores, &sw);
        prop_assert_eq!(hw.predicted_class, am.search(&q).unwrap().class);
    }

    /// Mapping stats invariants: cycles >= arrays/..., utilization in
    /// (0, 1], partitioned cycles == P x row-tiles when columns fit.
    #[test]
    fn mapping_stats_invariants(
        (k, raw, _q) in am_and_query(3, 6, vec![64, 128]),
        partitions in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let am = build_am(k, &raw);
        prop_assume!(am.dim().is_multiple_of(partitions));
        let strategy = if partitions == 1 {
            MappingStrategy::Basic
        } else {
            MappingStrategy::Partitioned { partitions }
        };
        let spec = ArraySpec::new(32, 64).unwrap();
        let stats = AmMapping::new(&am, spec, strategy).unwrap().stats();
        prop_assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
        prop_assert!(stats.arrays >= 1);
        prop_assert!(stats.cycles >= stats.arrays.div_ceil(partitions));
        // With all partition columns in one tile, cycles = P * row_tiles.
        let cols = am.num_centroids() * partitions;
        if cols <= spec.cols() {
            let row_tiles = (am.dim() / partitions).div_ceil(spec.rows());
            prop_assert_eq!(stats.cycles, partitions * row_tiles);
        }
    }

    /// The tile grid covers the logical matrix with no gap: tiles * array
    /// capacity >= logical cells, and removing one tile row/col would be
    /// too small.
    #[test]
    fn tile_grid_is_tight(rows in 1usize..500, cols in 1usize..500) {
        let spec = ArraySpec::new(37, 53).unwrap();
        let g = tile_grid(rows, cols, spec);
        prop_assert!(g.row_tiles * 37 >= rows);
        prop_assert!(g.col_tiles * 53 >= cols);
        prop_assert!((g.row_tiles - 1) * 37 < rows);
        prop_assert!((g.col_tiles - 1) * 53 < cols);
    }

    /// Associative search is permutation-equivariant in the centroids: the
    /// winning *class* does not depend on row order (up to ties).
    #[test]
    fn search_winner_score_invariant_under_row_shuffle(
        (k, raw, qbits) in am_and_query(3, 6, vec![64]),
    ) {
        let am = build_am(k, &raw);
        let q = BitVector::from_bools(&qbits);
        let best = am.search(&q).unwrap().score;
        let mut reversed = raw.clone();
        reversed.reverse();
        let am_rev = build_am(k, &reversed);
        prop_assert_eq!(am_rev.search(&q).unwrap().score, best);
    }

    /// Quantize-per-row always produces balanced-ish rows: the popcount of
    /// each binarized centroid never exceeds the dimensionality and is 0
    /// only for constant rows.
    #[test]
    fn per_row_quantization_balance(
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 32), 1..5),
    ) {
        let centroids: Vec<(usize, Vec<f32>)> =
            rows.iter().map(|r| (0usize, r.clone())).collect();
        let fam = hdc::FloatAm::from_centroids(1, centroids).unwrap();
        let bam = fam.quantize_per_row();
        for (i, row) in rows.iter().enumerate() {
            let ones = bam.centroid(i).count_ones() as usize;
            prop_assert!(ones <= 32);
            let constant = row.iter().all(|v| (v - row[0]).abs() < f32::EPSILON);
            if constant {
                prop_assert_eq!(ones, 0, "constant row has no above-mean entries");
            } else {
                prop_assert!(ones >= 1, "non-constant row must keep at least one bit");
            }
        }
    }
}
