//! Integration tests that pin the paper's quantitative claims where they
//! are deterministic (Table II arithmetic, Table I formulas, Fig. 7
//! ratios) and their qualitative shape where they are statistical
//! (multi-centroid vs single-centroid, clustering vs random init).

use hd_baselines::{baseline_memory, BaselineKind, BasicHdc, HdcClassifier};
use hd_datasets::synthetic::SyntheticSpec;
use hd_linalg::rng::seeded;
use hd_linalg::BitVector;
use hdc::BinaryAm;
use imc_sim::{system_report, AmMapping, ArraySpec, EnergyModel, MappingStrategy};
use memhd::{MemhdConfig, MemhdModel};
use rand::Rng;

fn random_am(k: usize, vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % k, BitVector::from_bools(&bits))
        })
        .collect();
    BinaryAm::from_centroids(k, centroids).expect("valid AM")
}

/// Table II(a): MNIST/FMNIST — Basic 640 cycles/arrays vs MEMHD 8; the
/// paper's 80× cycle and 71×-vs-best-partitioning array improvements.
#[test]
fn table2_mnist_improvements() {
    let spec = ArraySpec::default();
    let basic = system_report(
        784,
        &AmMapping::new(&random_am(10, 10, 10240, 1), spec, MappingStrategy::Basic).unwrap(),
    );
    let part10 = system_report(
        784,
        &AmMapping::new(
            &random_am(10, 10, 10240, 1),
            spec,
            MappingStrategy::Partitioned { partitions: 10 },
        )
        .unwrap(),
    );
    let memhd = system_report(
        784,
        &AmMapping::new(&random_am(10, 128, 128, 2), spec, MappingStrategy::Basic).unwrap(),
    );

    assert_eq!(basic.total_cycles(), 640);
    assert_eq!(basic.total_arrays(), 640);
    assert_eq!(part10.total_cycles(), 640); // partitioning saves no cycles
    assert_eq!(part10.total_arrays(), 568);
    assert_eq!(memhd.total_cycles(), 8);
    assert_eq!(memhd.total_arrays(), 8);
    assert_eq!(basic.total_cycles() / memhd.total_cycles(), 80); // 80x
    assert_eq!(part10.total_arrays() / memhd.total_arrays(), 71); // 71x
}

/// Table II(b): ISOLET — 480 vs 24 cycles (20×), 420 vs 24 arrays (17.5×).
#[test]
fn table2_isolet_improvements() {
    let spec = ArraySpec::default();
    let basic = system_report(
        617,
        &AmMapping::new(&random_am(26, 26, 10240, 3), spec, MappingStrategy::Basic).unwrap(),
    );
    let part4 = system_report(
        617,
        &AmMapping::new(
            &random_am(26, 26, 10240, 3),
            spec,
            MappingStrategy::Partitioned { partitions: 4 },
        )
        .unwrap(),
    );
    let memhd = system_report(
        617,
        &AmMapping::new(&random_am(26, 128, 512, 4), spec, MappingStrategy::Basic).unwrap(),
    );
    assert_eq!(basic.total_cycles(), 480);
    assert_eq!(memhd.total_cycles(), 24);
    assert_eq!(basic.total_cycles() / memhd.total_cycles(), 20); // 20x
    assert_eq!(part4.total_arrays(), 420);
    assert!((part4.total_arrays() as f64 / memhd.total_arrays() as f64 - 17.5).abs() < 1e-9);
}

/// Table II(b), ISOLET column in full: the complete cycle/array counts
/// behind the 20× headline — Basic 480/480, P=2 480/440, P=4 480/420,
/// MEMHD 512×128 24/24.
#[test]
fn table2_isolet_full_counts() {
    let spec = ArraySpec::default();
    let am = random_am(26, 26, 10240, 7);
    let report = |strategy| system_report(617, &AmMapping::new(&am, spec, strategy).unwrap());

    let basic = report(MappingStrategy::Basic);
    assert_eq!((basic.em_cycles, basic.am_cycles), (400, 80)); // 5×80 EM tiles + 80 AM tiles
    assert_eq!((basic.total_cycles(), basic.total_arrays()), (480, 480));

    let p2 = report(MappingStrategy::Partitioned { partitions: 2 });
    assert_eq!((p2.total_cycles(), p2.total_arrays()), (480, 440)); // 400 EM + 40 AM arrays

    let p4 = report(MappingStrategy::Partitioned { partitions: 4 });
    assert_eq!((p4.total_cycles(), p4.total_arrays()), (480, 420)); // 400 EM + 20 AM arrays

    let memhd = system_report(
        617,
        &AmMapping::new(&random_am(26, 128, 512, 8), spec, MappingStrategy::Basic).unwrap(),
    );
    assert_eq!((memhd.em_cycles, memhd.am_cycles), (20, 4)); // 5×4 EM tiles + 4 AM tiles
    assert_eq!((memhd.total_cycles(), memhd.total_arrays()), (24, 24));
    assert!((memhd.am_utilization - 1.0).abs() < 1e-12);
}

/// Table II(b), UCIHAR-shaped column (561 features, 6 classes): Basic
/// 10240D costs 480 cycles / 480 arrays; MEMHD 256×128 costs 12/12 — a
/// 40× improvement on both axes, with partitioning again saving arrays
/// but no cycles.
#[test]
fn table2_ucihar_improvements() {
    let spec = ArraySpec::default();
    let basic = system_report(
        561,
        &AmMapping::new(&random_am(6, 6, 10240, 9), spec, MappingStrategy::Basic).unwrap(),
    );
    let part5 = system_report(
        561,
        &AmMapping::new(
            &random_am(6, 6, 10240, 9),
            spec,
            MappingStrategy::Partitioned { partitions: 5 },
        )
        .unwrap(),
    );
    let memhd = system_report(
        561,
        &AmMapping::new(&random_am(6, 128, 256, 10), spec, MappingStrategy::Basic).unwrap(),
    );

    assert_eq!((basic.total_cycles(), basic.total_arrays()), (480, 480)); // 400 EM + 80 AM
    assert_eq!(part5.total_cycles(), 480); // partitioning saves no cycles
    assert_eq!(part5.total_arrays(), 416); // 400 EM + 16 AM arrays
    assert_eq!((memhd.em_cycles, memhd.am_cycles), (10, 2)); // 5×2 EM tiles + 2 AM tiles
    assert_eq!((memhd.total_cycles(), memhd.total_arrays()), (12, 12));
    assert_eq!(basic.total_cycles() / memhd.total_cycles(), 40); // 40×
    assert_eq!(basic.total_arrays() / memhd.total_arrays(), 40); // 40×
    assert!((memhd.am_utilization - 1.0).abs() < 1e-12);
}

/// Table II utilization column: 7.81% → 39.06% → 78.13% → 100% (MNIST).
#[test]
fn table2_utilization_ladder() {
    let spec = ArraySpec::default();
    let am = random_am(10, 10, 10240, 5);
    let util = |strategy| AmMapping::new(&am, spec, strategy).unwrap().stats().utilization * 100.0;
    assert!((util(MappingStrategy::Basic) - 7.8125).abs() < 1e-9);
    assert!((util(MappingStrategy::Partitioned { partitions: 5 }) - 39.0625).abs() < 1e-9);
    assert!((util(MappingStrategy::Partitioned { partitions: 10 }) - 78.125).abs() < 1e-9);
    let memhd = AmMapping::new(&random_am(10, 128, 128, 6), spec, MappingStrategy::Basic)
        .unwrap()
        .stats()
        .utilization;
    assert!((memhd - 1.0).abs() < 1e-12);
}

/// Fig. 7: MEMHD's AM energy is 80× below BasicHDC 10240D and 4× below
/// LeHDC 400D; partitioning leaves energy unchanged.
#[test]
fn fig7_energy_ratios() {
    let spec = ArraySpec::default();
    let model = EnergyModel::default();
    let energy = |k: usize, v: usize, d: usize, strategy| {
        AmMapping::new(&random_am(k, v, d, 9), spec, strategy).unwrap().inference_energy_pj(&model)
    };
    let basic = energy(10, 10, 10240, MappingStrategy::Basic);
    let basic_p10 = energy(10, 10, 10240, MappingStrategy::Partitioned { partitions: 10 });
    let lehdc = energy(10, 10, 400, MappingStrategy::Basic);
    let memhd = energy(10, 128, 128, MappingStrategy::Basic);
    assert!((basic / memhd - 80.0).abs() < 1e-9);
    assert!((lehdc / memhd - 4.0).abs() < 1e-9);
    assert!((basic_p10 - basic).abs() < 1e-9, "partitioning must not change energy");
}

/// Fig. 7's full comparison ladder at matched-accuracy AM sizes, driven
/// straight through [`EnergyModel`] arithmetic: per-inference AM energy
/// and latency are both proportional to tile activations, so BasicHDC
/// 10240D : SearcHD 8000D : QuantHD 1600D : LeHDC 400D : MEMHD 128D
/// land at 80 : 63 : 13 : 4 : 1 (ceil-of-row-tiles), and programming
/// energy scales with mapped cells independently of the ladder.
#[test]
fn fig7_energy_ladder_full() {
    let spec = ArraySpec::default();
    let model = EnergyModel::default();
    let am_energy = |k: usize, v: usize, d: usize| {
        let mapping =
            AmMapping::new(&random_am(k, v, d, 11), spec, MappingStrategy::Basic).unwrap();
        (mapping.inference_energy_pj(&model), mapping.stats().cycles)
    };
    let (basic, basic_cycles) = am_energy(10, 10, 10240);
    let (searchd, searchd_cycles) = am_energy(10, 10, 8000);
    let (quanthd, _) = am_energy(10, 10, 1600);
    let (lehdc, _) = am_energy(10, 10, 400);
    let (memhd, memhd_cycles) = am_energy(10, 128, 128);

    assert_eq!((basic_cycles, searchd_cycles, memhd_cycles), (80, 63, 1));
    for (label, energy, ratio) in [
        ("basic", basic, 80.0),
        ("searchd", searchd, 63.0),
        ("quanthd", quanthd, 13.0),
        ("lehdc", lehdc, 4.0),
    ] {
        assert!((energy / memhd - ratio).abs() < 1e-9, "{label}: {energy} / {memhd}");
    }
    // Energy and latency ladders are the same arithmetic: both are
    // linear in tile activations.
    assert!((model.latency_ns(basic_cycles) / model.latency_ns(memhd_cycles) - 80.0).abs() < 1e-9);
    // Programming energy is a one-time cost in mapped cells, not cycles:
    // MEMHD's 128×128 fully-utilized AM programs exactly one array.
    let memhd_mapping =
        AmMapping::new(&random_am(10, 128, 128, 11), spec, MappingStrategy::Basic).unwrap();
    assert!(
        (memhd_mapping.program_energy_pj(&model) - model.program_energy_pj(128 * 128)).abs() < 1e-9
    );
}

/// Table I: the memory model orders models as the paper does, and MEMHD's
/// total footprint beats every 10240D baseline by >50x.
#[test]
fn table1_memory_ordering() {
    let f = 784;
    let l = 256;
    let k = 10;
    let searchd = baseline_memory(BaselineKind::SearcHd { n: 64 }, f, l, 10240, k);
    let quanthd = baseline_memory(BaselineKind::QuantHd, f, l, 10240, k);
    let basic = baseline_memory(BaselineKind::BasicHdc, f, l, 10240, k);
    let memhd = baseline_memory(BaselineKind::Memhd { columns: 128 }, f, l, 128, k);
    assert!(searchd.total_bits() > quanthd.total_bits());
    assert!(quanthd.total_bits() > basic.total_bits());
    assert!(basic.total_bits() as f64 / memhd.total_bits() as f64 > 50.0);
}

/// Fig. 3's qualitative core: on a multi-modal dataset, MEMHD at a small
/// AM reaches an accuracy that BasicHDC needs several times the memory to
/// match.
#[test]
fn memhd_more_memory_efficient_than_basichdc() {
    let ds = SyntheticSpec::fmnist_like(80, 30).generate(13).expect("dataset");
    let k = ds.num_classes;

    let cfg = MemhdConfig::new(128, 128, k).unwrap().with_epochs(10).with_seed(1);
    let memhd = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("memhd fit");
    let memhd_acc = memhd.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
    let memhd_kb = memhd.memory_report().total_kb();

    // BasicHDC at the same D (same memory class) must do worse; BasicHDC
    // needs a much bigger D to catch up.
    let basic_same =
        BasicHdc::fit(128, &ds.train_features, &ds.train_labels, k, 1).expect("basic fit");
    let basic_same_acc = basic_same.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
    assert!(
        memhd_acc > basic_same_acc + 0.05,
        "MEMHD {memhd_acc} should clearly beat BasicHDC {basic_same_acc} at matched D"
    );

    let basic_big =
        BasicHdc::fit(1024, &ds.train_features, &ds.train_labels, k, 1).expect("basic fit");
    let basic_big_kb = basic_big.memory_report().total_kb();
    assert!(
        basic_big_kb / memhd_kb > 5.0,
        "catching up costs BasicHDC >5x the memory ({basic_big_kb} vs {memhd_kb} KB)"
    );
}

/// Fig. 5's qualitative core: clustering-based initialization starts at
/// least as accurate as random sampling on multi-modal data (averaged
/// over seeds).
#[test]
fn clustering_init_starts_ahead() {
    let ds = SyntheticSpec::isolet_like(40, 10).generate(17).expect("dataset");
    let k = ds.num_classes;
    let mut gap = 0.0;
    for seed in 0..3u64 {
        let base = MemhdConfig::new(256, 52, k).unwrap().with_epochs(0).with_seed(seed);
        let clustering =
            MemhdModel::fit(&base, &ds.train_features, &ds.train_labels).expect("clustering fit");
        let random = MemhdModel::fit(
            &base.clone().with_init_method(memhd::InitMethod::RandomSampling),
            &ds.train_features,
            &ds.train_labels,
        )
        .expect("random fit");
        gap += clustering.history().initial_accuracy().unwrap()
            - random.history().initial_accuracy().unwrap();
    }
    assert!(gap > 0.0, "clustering init should start ahead on average (gap sum {gap})");
}
