//! End-to-end integration tests spanning the full workspace: dataset
//! synthesis → encoding → initialization → training → quantization →
//! IMC mapping → inference.

use hd_datasets::synthetic::SyntheticSpec;
use hdc::Encoder;
use imc_sim::{system_report, AmMapping, ArraySpec, MappingStrategy};
use memhd::{InitMethod, MemhdConfig, MemhdModel};

fn small_dataset(seed: u64) -> hd_datasets::Dataset {
    SyntheticSpec::mnist_like(60, 20).generate(seed).expect("valid spec")
}

#[test]
fn full_pipeline_trains_and_classifies() {
    let ds = small_dataset(1);
    let cfg = MemhdConfig::new(128, 64, ds.num_classes)
        .expect("valid config")
        .with_epochs(8)
        .with_seed(3);
    let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
    let acc = model.evaluate(&ds.test_features, &ds.test_labels).expect("eval");
    assert!(acc > 0.5, "test accuracy {acc} too low for a separable problem");
    // Fully-utilized AM: exactly C centroids.
    assert_eq!(model.binary_am().num_centroids(), 64);
    // Every class is represented.
    for c in 0..ds.num_classes {
        assert!(!model.binary_am().rows_of_class(c).is_empty());
    }
}

#[test]
fn mapped_inference_is_bit_exact_end_to_end() {
    let ds = small_dataset(2);
    let cfg = MemhdConfig::new(128, 128, ds.num_classes)
        .expect("valid config")
        .with_epochs(5)
        .with_seed(7);
    let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
    let mapping = AmMapping::new(model.binary_am(), ArraySpec::default(), MappingStrategy::Basic)
        .expect("mapping");

    // MEMHD 128x128 on a 128x128 array: one-shot search, full utilization.
    let stats = mapping.stats();
    assert_eq!(stats.arrays, 1);
    assert_eq!(stats.cycles, 1);
    assert!((stats.utilization - 1.0).abs() < 1e-12);

    for i in 0..ds.test_len() {
        let features = ds.test_features.row(i);
        let sw = model.predict(features).expect("sw predict");
        let q = model.encoder().encode_binary(features).expect("encode");
        let hw = mapping.search(&q).expect("hw search");
        assert_eq!(sw, hw.predicted_class, "sample {i} diverged between software and mapping");
        // Scores must match the software associative memory exactly.
        assert_eq!(hw.scores, model.binary_am().scores(&q).expect("scores"));
    }
}

#[test]
fn partitioned_mapping_matches_for_trained_baseline() {
    use hd_baselines::BasicHdc;
    let ds = small_dataset(3);
    let model =
        BasicHdc::fit(512, &ds.train_features, &ds.train_labels, ds.num_classes, 5).expect("fit");
    let spec = ArraySpec::default();
    let basic = AmMapping::new(model.binary_am(), spec, MappingStrategy::Basic).expect("basic map");
    let part =
        AmMapping::new(model.binary_am(), spec, MappingStrategy::Partitioned { partitions: 4 })
            .expect("partitioned map");

    // Partitioning: fewer arrays, same cycles, higher utilization.
    assert!(part.stats().arrays < basic.stats().arrays);
    assert_eq!(part.stats().cycles, basic.stats().cycles);
    assert!(part.stats().utilization > basic.stats().utilization);

    // And identical functional behavior.
    for i in 0..ds.test_len().min(30) {
        let q = {
            use hdc::Encoder;
            model.encoder().encode_binary(ds.test_features.row(i)).expect("encode")
        };
        assert_eq!(basic.search(&q).expect("basic").scores, part.search(&q).expect("part").scores);
    }
}

#[test]
fn determinism_across_full_pipeline() {
    let ds = small_dataset(4);
    let cfg = MemhdConfig::new(64, 32, ds.num_classes)
        .expect("valid config")
        .with_epochs(4)
        .with_seed(11);
    let a = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit a");
    let b = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit b");
    assert_eq!(a.binary_am().as_bit_matrix(), b.binary_am().as_bit_matrix());
    assert_eq!(a.history(), b.history());
    let preds_a = a.predict_batch(&ds.test_features).expect("preds a");
    let preds_b = b.predict_batch(&ds.test_features).expect("preds b");
    assert_eq!(preds_a, preds_b);
}

#[test]
fn both_init_methods_complete_and_fill_columns() {
    let ds = small_dataset(5);
    for method in [InitMethod::Clustering, InitMethod::RandomSampling] {
        let cfg = MemhdConfig::new(64, 40, ds.num_classes)
            .expect("valid config")
            .with_epochs(3)
            .with_init_method(method)
            .with_seed(2);
        let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
        assert_eq!(model.binary_am().num_centroids(), 40, "{method:?}");
    }
}

#[test]
fn memory_report_matches_table1_formulas() {
    let ds = small_dataset(6);
    let cfg = MemhdConfig::new(128, 96, ds.num_classes).expect("valid config").with_epochs(1);
    let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
    let r = model.memory_report();
    assert_eq!(r.em_bits, (ds.feature_dim() * 128) as u64); // f × D
    assert_eq!(r.am_bits, 96 * 128); // C × D
}

#[test]
fn system_report_composes_em_and_am() {
    let ds = small_dataset(7);
    let cfg = MemhdConfig::new(128, 128, ds.num_classes)
        .expect("valid config")
        .with_epochs(1)
        .with_seed(1);
    let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
    let mapping = AmMapping::new(model.binary_am(), ArraySpec::default(), MappingStrategy::Basic)
        .expect("mapping");
    let r = system_report(ds.feature_dim(), &mapping);
    // f=784 over 128 rows -> 7 EM tiles; D=128 fits one column tile.
    assert_eq!(r.em_cycles, 7);
    assert_eq!(r.am_cycles, 1);
    assert_eq!(r.total_cycles(), 8);
    assert_eq!(r.total_arrays(), 8);
}

#[test]
fn training_history_shows_learning() {
    let ds = small_dataset(8);
    let cfg = MemhdConfig::new(128, 64, ds.num_classes)
        .expect("valid config")
        .with_epochs(10)
        .with_seed(9);
    let model = MemhdModel::fit(&cfg, &ds.train_features, &ds.train_labels).expect("fit");
    let hist = model.history();
    let initial = hist.initial_accuracy().expect("has epoch 0");
    let best = hist.records().iter().map(|r| r.train_accuracy).fold(f64::NEG_INFINITY, f64::max);
    assert!(best >= initial, "training should not lose to the initialization");
}
