//! Spoken-letter recognition scenario (ISOLET-shaped): small per-class
//! sample budgets and many classes.
//!
//! This is the regime where the paper's Fig. 4 shows that *more columns is
//! not always better*: with ~240 samples per class, over-allocating
//! centroids makes them chase outliers. The example sweeps column counts
//! at fixed dimensionality and reports where accuracy peaks, then shows
//! the initial-accuracy advantage of clustering-based initialization
//! (paper Fig. 5) on the same data.
//!
//! Run with: `cargo run --release --example spoken_letters`

use hd_datasets::synthetic::SyntheticSpec;
use hdc::{encode_dataset, RandomProjectionEncoder};
use memhd::{InitMethod, MemhdConfig, MemhdModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticSpec::isolet_like(120, 30).generate(21)?;
    println!(
        "dataset: {} ({} classes, {} train samples/class)\n",
        dataset.name,
        dataset.num_classes,
        dataset.train_len() / dataset.num_classes
    );

    // Encode once; sweep AM shapes over the same hypervectors.
    let dim = 256;
    let encoder = RandomProjectionEncoder::new(dataset.feature_dim(), dim, 9);
    let train = encode_dataset(&encoder, &dataset.train_features)?;
    let test = encode_dataset(&encoder, &dataset.test_features)?;

    println!("column sweep at D = {dim} (watch for the peak, paper Fig. 4):");
    println!("{:<10} {:>14} {:>12}", "columns C", "centroids/cls", "accuracy %");
    for cols in [26usize, 52, 128, 256] {
        let config = MemhdConfig::new(dim, cols, dataset.num_classes)?.with_epochs(12).with_seed(5);
        let model =
            MemhdModel::fit_encoded(&config, encoder.clone(), &train, &dataset.train_labels)?;
        let acc = model.evaluate_encoded(&test.bin, &dataset.test_labels)? * 100.0;
        println!("{:<10} {:>14.1} {:>12.2}", cols, cols as f64 / dataset.num_classes as f64, acc);
    }

    // Clustering vs random-sampling initialization (paper Fig. 5).
    println!("\ninitialization comparison at {dim}x128:");
    for (name, method) in
        [("clustering", InitMethod::Clustering), ("random sampling", InitMethod::RandomSampling)]
    {
        let config = MemhdConfig::new(dim, 128, dataset.num_classes)?
            .with_epochs(12)
            .with_init_method(method)
            .with_seed(5);
        let model =
            MemhdModel::fit_encoded(&config, encoder.clone(), &train, &dataset.train_labels)?;
        let h = model.history();
        println!(
            "  {name:<16} initial {:.2}% -> best {:.2}% (converged by epoch {:?})",
            h.initial_accuracy().unwrap_or(0.0) * 100.0,
            h.records().iter().map(|r| r.train_accuracy).fold(0.0, f64::max) * 100.0,
            h.convergence_epoch(0.005).unwrap_or(0)
        );
    }

    Ok(())
}
