//! HD recommender: exact top-k associative search as a ranking engine.
//!
//! The paper's associative memory answers "which stored centroid is
//! closest" — a 1-nearest-prototype classifier. The same machinery, plus
//! the exact top-k search this workspace grew
//! ([`hd_linalg::SearchMemory::topk_batch`]), is a recommender: store
//! every catalog item's hypervector as an AM row, represent a user as
//! the majority bundle of the items they liked, and the k best rows for
//! that profile query are the k recommendations — exactly, not
//! approximately, with the workspace's score-desc / row-asc tie-break.
//!
//! The catalog is a synthetic MovieLens-shaped corpus from
//! [`hd_datasets::synthetic`]: genres are classes, items are the
//! per-class samples (multi-modal within each genre — think sub-genres).
//! Each user likes items drawn from a preferred genre; we hold out two
//! liked items, bundle the rest into the profile, rank the unseen
//! catalog by top-k associative search, and report hit-rate@k (how often
//! a held-out liked item appears in the top k) against the
//! random-ranking baseline.
//!
//! Run with: `cargo run --release --example recommender`

use hd_datasets::synthetic::SyntheticSpec;
use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, QueryBatch, SearchMemory};
use hdc::{Encoder, RandomProjectionEncoder};
use rand::Rng;

const HD_DIM: usize = 4096;
const USERS: usize = 200;
const LIKES_PER_USER: usize = 12;
const HOLDOUT_PER_USER: usize = 2;

/// Majority bundle of item hypervectors: each output bit is the majority
/// vote across the bundled items, with even ties broken by a seeded
/// random vector (the standard HD tie-break, so profiles stay dense).
fn majority_bundle(items: &[&BitVector], dim: usize, seed: u64) -> BitVector {
    let mut counts = vec![0usize; dim];
    for item in items {
        for i in item.iter_ones() {
            counts[i] += 1;
        }
    }
    let mut rng = seeded(seed);
    let half = items.len() as f64 / 2.0;
    BitVector::from_bools(
        &counts
            .iter()
            .map(|&c| {
                let c = c as f64;
                if c == half {
                    rng.gen()
                } else {
                    c > half
                }
            })
            .collect::<Vec<bool>>(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Catalog: 8 genres x 100 items, 64 raw features, multi-modal
    //    genres (the builder's default 4 modes/class play the role of
    //    sub-genres).
    let catalog = SyntheticSpec::builder("movielens-like", 64, 8).generate(101)?;
    let n_items = catalog.train_len();
    let genre_of: Vec<usize> = catalog.train_labels.clone();
    println!(
        "catalog: {n_items} items, {} genres, {} raw features -> {HD_DIM}-bit hypervectors",
        catalog.num_classes,
        catalog.feature_dim()
    );

    // 2. Encode every item once; the catalog AM stores one row per item.
    let encoder = RandomProjectionEncoder::new(catalog.feature_dim(), HD_DIM, 7);
    let item_hvs: Vec<BitVector> = (0..n_items)
        .map(|i| encoder.encode_binary(catalog.train_features.row(i)))
        .collect::<hdc::Result<_>>()?;
    let memory = SearchMemory::from_rows(&item_hvs)?;

    // 3. Users: each prefers one genre and likes a random dozen of its
    //    items; two likes are held out as the relevance targets.
    let mut rng = seeded(202);
    let items_of_genre: Vec<Vec<usize>> = (0..catalog.num_classes)
        .map(|g| (0..n_items).filter(|&i| genre_of[i] == g).collect())
        .collect();
    let mut profiles: Vec<BitVector> = Vec::with_capacity(USERS);
    let mut seen: Vec<Vec<usize>> = Vec::with_capacity(USERS);
    let mut held_out: Vec<Vec<usize>> = Vec::with_capacity(USERS);
    for u in 0..USERS {
        let genre = u % catalog.num_classes;
        let mut likes = items_of_genre[genre].clone();
        // Fisher-Yates prefix: a seeded random dozen of the genre.
        for i in 0..LIKES_PER_USER {
            let j = rng.gen_range(i..likes.len());
            likes.swap(i, j);
        }
        likes.truncate(LIKES_PER_USER);
        let holdout: Vec<usize> = likes.split_off(LIKES_PER_USER - HOLDOUT_PER_USER);
        let liked_hvs: Vec<&BitVector> = likes.iter().map(|&i| &item_hvs[i]).collect();
        profiles.push(majority_bundle(&liked_hvs, HD_DIM, 300 + u as u64));
        seen.push(likes);
        held_out.push(holdout);
    }
    let batch = QueryBatch::from_vectors(&profiles)?;

    // 4. Rank the unseen catalog per user: one fused top-k sweep wide
    //    enough to absorb the profile items, which are then filtered out
    //    (a user's own likes are trivially their nearest rows).
    let max_k = 20usize;
    let fetch = max_k + (LIKES_PER_USER - HOLDOUT_PER_USER);
    let topk = memory.topk_batch(&batch, fetch)?;
    let recommended: Vec<Vec<usize>> = (0..USERS)
        .map(|u| {
            topk.hits(u)
                .iter()
                .map(|&(row, _)| row)
                .filter(|row| !seen[u].contains(row))
                .take(max_k)
                .collect()
        })
        .collect();

    // 5. Hit-rate@k: a held-out liked item should surface among the top
    //    recommendations far above the random-ranking baseline.
    let unseen_items = n_items - (LIKES_PER_USER - HOLDOUT_PER_USER);
    println!("\n{:>4}  {:>10}  {:>8}", "k", "hit-rate@k", "random");
    for k in [1usize, 5, 10, 20] {
        let mut hits = 0usize;
        let mut targets = 0usize;
        for u in 0..USERS {
            for h in &held_out[u] {
                targets += 1;
                if recommended[u][..k.min(recommended[u].len())].contains(h) {
                    hits += 1;
                }
            }
        }
        let rate = hits as f64 / targets as f64;
        // Random ranking surfaces a specific unseen item in the top k
        // with probability k / |unseen catalog|.
        let baseline = k as f64 / unseen_items as f64;
        println!("{k:>4}  {:>9.1}%  {:>7.2}%", rate * 100.0, baseline * 100.0);
    }

    // 6. Sanity: recommendations should overwhelmingly come from the
    //    user's preferred genre (the profile bundle sits in its cluster).
    let mut same_genre = 0usize;
    let mut total = 0usize;
    for u in 0..USERS {
        let genre = u % catalog.num_classes;
        for &item in &recommended[u][..10.min(recommended[u].len())] {
            total += 1;
            if genre_of[item] == genre {
                same_genre += 1;
            }
        }
    }
    println!(
        "\ngenre purity of top-10 recommendations: {:.1}%",
        same_genre as f64 / total as f64 * 100.0
    );
    Ok(())
}
