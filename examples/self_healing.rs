//! Self-healing fault-tolerant serving, end to end: the three layers
//! that keep an IMC-backed associative memory answering correctly while
//! its hardware misbehaves.
//!
//! 1. **Replicated readout** — program the AM onto R independently
//!    faulted replicas and read back the bitwise majority; cell BER `p`
//!    becomes ~`3p^2` at R=3.
//! 2. **Online scrubbing** — sweep rows against golden signatures in
//!    bounded ticks, repair in place, republish the healed model.
//! 3. **Supervised serving** — shard workers are respawned once on a
//!    panic and degraded out after that, with degraded answers flagged
//!    (never silently wrong), deadlines for impatient callers, and
//!    admission shedding under overload.
//!
//! Run with: `cargo run --release --example self_healing`

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, SearchMemory};
use hd_serve::{Searchable, ServeConfig, Server, ShardedSearcher};
use hdc::BinaryAm;
use imc_sim::{
    AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy, ReplicatedAmMapping,
    ScrubConfig, Scrubber,
};
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 256;
    let classes = 16;
    let mut rng = seeded(7);
    let centroids: Vec<(usize, BitVector)> = (0..classes)
        .map(|c| (c, BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>())))
        .collect();
    let am = BinaryAm::from_centroids(classes, centroids)?;
    let golden = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic)?;

    // --- Layer 1: replicated readout -------------------------------
    let ber = 0.05;
    let plain = FaultyAmMapping::program(&golden, FaultModel::bit_flip(ber), 11)?;
    let replicated = ReplicatedAmMapping::program(&golden, FaultModel::bit_flip(ber), 3, 11)?;
    println!("programming at BER {ber}:");
    println!("  plain mapping:      {:5} corrupted cells", plain.effective_flipped(&golden)?);
    println!(
        "  3-replica majority: {:5} corrupted cells (each replica independently faulted)",
        replicated.residual_flipped(&golden)?
    );

    // --- Layer 2: online scrubbing ---------------------------------
    let mut deployed = plain.clone();
    let scrubber = Scrubber::new(&golden, ScrubConfig { cells_per_tick: 2048 }, 13)?;
    let mut ticks = 0;
    let mut healed = 0;
    loop {
        let report = scrubber.tick(&mut deployed)?;
        ticks += 1;
        healed += report.cells_healed;
        if report.completed_pass {
            break;
        }
    }
    println!("\nscrubbing the plain mapping ({} rows/tick):", scrubber.rows_per_tick());
    println!("  {ticks} ticks, {healed} cells healed, residual = {}", {
        deployed.effective_flipped(&golden)?
    });

    // --- Layer 3: supervised serving -------------------------------
    let rows: Vec<BitVector> = (0..48)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect();
    let memory = SearchMemory::from_rows(&rows)?;
    let labels: Vec<usize> = (0..rows.len()).map(|r| r % classes).collect();
    let sharded = Arc::new(ShardedSearcher::new(memory, labels, 4)?);
    let server = Server::start(
        Arc::clone(&sharded) as Arc<dyn Searchable>,
        ServeConfig { max_batch: 16, max_delay: Duration::from_micros(200), max_in_flight: 1024 },
    )?;
    let query = BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>());

    let healthy = server.classify(query.as_view())?;
    println!("\nserving over {} shard workers:", sharded.num_shards());
    println!("  healthy:  row {:2}, degraded = {}", healthy.row, healthy.degraded);

    // The injected panics below are expected; keep the demo output
    // readable by silencing the default panic-backtrace printer.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // One injected panic is absorbed by the respawn budget.
    sharded.inject_shard_panics(1, 1)?;
    let respawned = server.classify(query.as_view())?;
    println!(
        "  1 panic:  row {:2}, degraded = {} (worker respawned, missing = {:?})",
        respawned.row,
        respawned.degraded,
        sharded.missing_shards()
    );

    // A crash loop exhausts the budget: the shard degrades out and
    // answers are flagged, exact over the surviving rows.
    sharded.inject_shard_panics(2, 100)?;
    let degraded = server.classify(query.as_view())?;
    println!(
        "  crashes:  row {:2}, degraded = {} (shard degraded, missing = {:?})",
        degraded.row,
        degraded.degraded,
        sharded.missing_shards()
    );

    std::panic::set_hook(default_hook);

    // The healed mapping republishes through the registry: a new
    // generation, zero residual faults.
    let generation = server.publish(Arc::new(deployed) as Arc<dyn Searchable>)?;
    let served = server.classify_with_deadline(query.as_view(), Duration::from_millis(100))?;
    println!(
        "\nrepublished the scrubbed mapping as generation {generation}: \
         class {} at score {}, degraded = {}",
        served.class, served.score, served.degraded
    );

    server.shutdown();
    let stats = server.stats();
    println!(
        "server stats: {} queries, {} batches, {} shed, {} degraded-flagged",
        stats.queries, stats.batches, stats.shed, stats.degraded_queries
    );
    Ok(())
}
