//! End-to-end serving demo: train a MEMHD model, stand up the `hd-serve`
//! micro-batching server over its quantized AM, drive it from concurrent
//! client threads, then hot-swap in a fault-degraded IMC mapping (the
//! republish hook) without dropping a single in-flight query.
//!
//! Run with: `cargo run --release --example serving`

use hd_datasets::synthetic::SyntheticSpec;
use hd_serve::{Pending, Searchable, ServeConfig, Server, ShardedSearcher};
use hdc::Encoder;
use imc_sim::{AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy};
use memhd::{MemhdConfig, MemhdModel};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== hd-serve: sharded micro-batching associative search ==\n");
    println!("kernel backend: {}\n", hd_linalg::kernel::active());

    // 1. Train a small MEMHD model on synthetic multi-modal data.
    let ds = SyntheticSpec::fmnist_like(60, 25).generate(7)?;
    let config = MemhdConfig::new(128, 64, ds.num_classes)?.with_epochs(5).with_seed(1);
    let model = MemhdModel::fit(&config, &ds.train_features, &ds.train_labels)?;
    let accuracy = model.evaluate(&ds.test_features, &ds.test_labels)?;
    println!("trained MEMHD 128x64 ({} classes), test accuracy {accuracy:.3}", ds.num_classes);

    // Pre-encode the test set into binary hypervector queries — clients
    // of the AM service submit encoded queries (the encoding module is a
    // separate IMC structure in the paper's architecture).
    let queries = model.encoder().encode_binary_batch(&ds.test_features)?;
    let queries: Vec<hd_linalg::BitVector> =
        (0..queries.len()).map(|i| queries.query(i).to_bit_vector()).collect();

    // 2. Serve the model's AM, sharded across two pinned workers.
    let sharded = ShardedSearcher::from_am(model.binary_am(), 2)?;
    println!(
        "sharded AM: {} rows x {} bits over {} shard(s), workers: {}",
        Searchable::rows(&sharded),
        Searchable::dim(&sharded),
        sharded.num_shards(),
        sharded.has_workers(),
    );
    let server = Arc::new(Server::start(
        Arc::new(sharded),
        ServeConfig { max_batch: 64, max_delay: Duration::from_micros(200), ..Default::default() },
    )?);

    // 3. Drive it from concurrent clients, each pipelining single-query
    //    submissions.
    let started = Instant::now();
    let correct: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let server = Arc::clone(&server);
                let queries = &queries;
                let labels = &ds.test_labels;
                scope.spawn(move || {
                    let mut correct = 0usize;
                    for (chunk_q, chunk_l) in
                        queries.chunks(64).zip(labels.chunks(64)).skip(t).step_by(4)
                    {
                        let pendings: Vec<Pending> = chunk_q
                            .iter()
                            .map(|q| server.submit(q.as_view()).expect("submit"))
                            .collect();
                        for (p, &label) in pendings.into_iter().zip(chunk_l) {
                            if p.wait().expect("wait").class == label {
                                correct += 1;
                            }
                        }
                    }
                    correct
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let elapsed = started.elapsed();
    let stats = server.stats();
    println!(
        "\nserved {} queries from 4 clients in {elapsed:.2?} \
         ({:.0} ns/query, {} batches, largest {})",
        stats.queries,
        elapsed.as_nanos() as f64 / stats.queries.max(1) as f64,
        stats.batches,
        stats.largest_batch,
    );
    println!(
        "served accuracy {:.3} (matches direct evaluation)",
        correct as f64 / queries.len() as f64
    );

    // 4. Hot republish: map the AM onto IMC arrays, degrade it with
    //    injected faults, and swap it in mid-traffic.
    let mapping = AmMapping::new(model.binary_am(), ArraySpec::default(), MappingStrategy::Basic)?;
    let healthy = FaultyAmMapping::program(&mapping, FaultModel::ideal(), 1)?;
    let degraded = healthy.inject(FaultModel::bit_flip(0.02), 2)?;
    println!(
        "\nfault injection: {} of {} cells flipped (BER 2%)",
        degraded.flipped_cells(),
        Searchable::rows(&degraded) * Searchable::dim(&degraded),
    );
    let generation = server.publish(Arc::new(degraded))?;
    println!("republished degraded mapping as generation {generation}");

    let p = server.classify(queries[0].as_view())?;
    println!(
        "query 0 on generation {}: class {} (score {}) — still {} on the degraded array",
        p.generation,
        p.class,
        p.score,
        if p.class == ds.test_labels[0] { "correct" } else { "incorrect" },
    );

    server.shutdown();
    Ok(())
}
