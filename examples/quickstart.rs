//! Quickstart: train a MEMHD classifier end to end and inspect everything
//! the paper cares about — accuracy, memory footprint, and the IMC mapping.
//!
//! Run with: `cargo run --release --example quickstart`

use hd_datasets::synthetic::SyntheticSpec;
use imc_sim::{system_report, AmMapping, ArraySpec, EnergyModel, MappingStrategy};
use memhd::{MemhdConfig, MemhdModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset. Here: the MNIST-shaped synthetic stand-in (784
    //    features, 10 classes, multi-modal classes). Swap in
    //    `hd_datasets::loader::load_mnist_format(..)` for the real corpus.
    let dataset = SyntheticSpec::mnist_like(200, 50).generate(42)?;
    println!(
        "dataset: {} ({} train / {} test samples, {} features, {} classes)",
        dataset.name,
        dataset.train_len(),
        dataset.test_len(),
        dataset.feature_dim(),
        dataset.num_classes
    );

    // 2. Configure MEMHD for a 128x128 IMC array: D = 128 rows, C = 128
    //    columns. Defaults follow the paper: clustering-based init with
    //    R = 0.8, then quantization-aware iterative learning.
    let config = MemhdConfig::new(128, 128, dataset.num_classes)?.with_epochs(15).with_seed(7);

    // 3. Train: projection encoding -> classwise k-means init ->
    //    confusion-driven cluster allocation -> 1-bit quantization ->
    //    quantization-aware iterative learning.
    let model = MemhdModel::fit(&config, &dataset.train_features, &dataset.train_labels)?;
    let history = model.history();
    println!(
        "training: initial accuracy {:.2}% -> best {:.2}% over {} epochs",
        history.initial_accuracy().unwrap_or(0.0) * 100.0,
        history.final_accuracy().unwrap_or(0.0) * 100.0,
        history.epochs_run()
    );

    // 4. Evaluate.
    let accuracy = model.evaluate(&dataset.test_features, &dataset.test_labels)?;
    println!("test accuracy: {:.2}%", accuracy * 100.0);

    // 5. Memory footprint (paper Table I): EM f x D bits + AM C x D bits.
    println!("memory: {}", model.memory_report());

    // 6. Map the trained AM onto a 128x128 IMC array and check the
    //    paper's headline hardware numbers: one-shot associative search,
    //    100% column utilization.
    let mapping = AmMapping::new(model.binary_am(), ArraySpec::default(), MappingStrategy::Basic)?;
    let report = system_report(dataset.feature_dim(), &mapping);
    println!("imc mapping: {report}");
    let energy = EnergyModel::default();
    println!(
        "one inference: {} AM cycle(s), {:.1} pJ, {:.1} ns",
        mapping.stats().cycles,
        mapping.inference_energy_pj(&energy),
        energy.latency_ns(report.total_cycles())
    );

    // 7. Classify one sample on the mapped hardware and confirm it matches
    //    the software path bit for bit.
    let sample = dataset.test_features.row(0);
    let sw_pred = model.predict(sample)?;
    let query = {
        use hdc::Encoder;
        model.encoder().encode_binary(sample)?
    };
    let hw = mapping.search(&query)?;
    println!(
        "sample 0: software pred {} | mapped-array pred {} (label {})",
        sw_pred, hw.predicted_class, dataset.test_labels[0]
    );
    assert_eq!(sw_pred, hw.predicted_class);

    // 8. Throughput path: answer the whole test set with one batched
    //    sweep. `predict_batch` packs the encoded queries and runs the
    //    tiled popcount kernel — the preferred entry point when serving
    //    many queries (enable the `rayon` feature to spread large batches
    //    across cores).
    let preds = model.predict_batch(&dataset.test_features)?;
    let correct = preds.iter().zip(&dataset.test_labels).filter(|(p, l)| p == l).count();
    println!(
        "batched inference: {} queries in one sweep, {:.2}% accuracy",
        preds.len(),
        correct as f64 / preds.len() as f64 * 100.0
    );

    Ok(())
}
