//! Language identification — the classic HDC text workload the paper's
//! introduction cites, run through MEMHD's multi-centroid pipeline.
//!
//! Synthetic "languages" are Markov letter generators with distinct
//! transition structure. Texts are encoded with rotated-XOR trigrams
//! ([`hdc::TextNgramEncoder`]) directly into hypervector space — no
//! feature vectors involved — and the lower-level `memhd::init` /
//! `memhd::train` APIs build the fully-utilized associative memory on top.
//! This demonstrates that the multi-centroid machinery composes with any
//! encoder that lands in hypervector space.
//!
//! Run with: `cargo run --release --example language_identification`

use hd_linalg::rng::{derive_seed, seeded, Normal};
use hdc::TextNgramEncoder;
use memhd::{init, train, MemhdConfig};
use rand::rngs::StdRng;
use rand::Rng;

/// A synthetic language: a first-order Markov chain over `a-z` plus space,
/// with a language-specific sparse transition preference.
struct Language {
    name: String,
    /// transition[c] = preferred successors of symbol c.
    transition: Vec<Vec<usize>>,
}

impl Language {
    fn random(name: &str, seed: u64) -> Self {
        let mut rng = seeded(seed);
        // Each symbol prefers a small language-specific successor set —
        // this is what makes trigram statistics discriminative.
        let transition = (0..27).map(|_| (0..4).map(|_| rng.gen_range(0..27)).collect()).collect();
        Language { name: name.to_string(), transition }
    }

    fn sentence(&self, len: usize, rng: &mut StdRng) -> String {
        let mut out = String::with_capacity(len);
        let mut state = rng.gen_range(0..27usize);
        for _ in 0..len {
            out.push(if state == 26 { ' ' } else { (b'a' + state as u8) as char });
            // Mostly follow the language's preferences, sometimes wander.
            state = if rng.gen_bool(0.85) {
                self.transition[state][rng.gen_range(0..self.transition[state].len())]
            } else {
                rng.gen_range(0..27)
            };
        }
        out
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let languages: Vec<Language> =
        (0..6).map(|i| Language::random(&format!("lang-{i}"), 100 + i as u64)).collect();
    let k = languages.len();
    let noise = Normal::new(140.0, 30.0); // sentence-length variation

    // Generate train/test corpora.
    let mut rng = seeded(7);
    let mut train_texts = Vec::new();
    let mut train_labels = Vec::new();
    let mut test_texts = Vec::new();
    let mut test_labels = Vec::new();
    for (label, lang) in languages.iter().enumerate() {
        for i in 0..80 {
            let len = noise.sample(&mut rng).max(40.0) as usize;
            let s = lang.sentence(len, &mut rng);
            if i < 60 {
                train_texts.push(s);
                train_labels.push(label);
            } else {
                test_texts.push(s);
                test_labels.push(label);
            }
        }
    }
    println!("{} languages, {} train / {} test sentences", k, train_texts.len(), test_texts.len());

    // Encode with trigrams into D = 512 (four 128-row arrays deep).
    let dim = 512;
    let encoder = TextNgramEncoder::new(3, dim, 42)?;
    let train_set = encoder.encode_corpus(&train_texts)?;
    let test_set = encoder.encode_corpus(&test_texts)?;

    // Build the fully-utilized multi-centroid AM by hand with the
    // lower-level APIs (no feature-space projection involved).
    let config = MemhdConfig::new(dim, 64, k)?.with_epochs(12).with_seed(derive_seed(42, 1));
    let mut fp_am = init::clustering_init(&config, &train_set, &train_labels)?;
    let (binary_am, history) = train::quantization_aware_train(
        &mut fp_am,
        &train_set,
        &train_labels,
        config.learning_rate(),
        config.epochs(),
        config.seed(),
        train::TrainOptions::default(),
    )?;

    let train_acc = hdc::train::evaluate(&binary_am, &train_set.bin, &train_labels)?;
    let test_acc = hdc::train::evaluate(&binary_am, &test_set.bin, &test_labels)?;
    println!(
        "multi-centroid AM {}x{} | initial {:.1}% -> train {:.1}% | test {:.1}%",
        dim,
        binary_am.num_centroids(),
        history.initial_accuracy().unwrap_or(0.0) * 100.0,
        train_acc * 100.0,
        test_acc * 100.0
    );

    // Per-language centroid allocation (harder languages get more columns).
    let sizes: Vec<(String, usize)> = languages
        .iter()
        .enumerate()
        .map(|(c, l)| (l.name.clone(), binary_am.rows_of_class(c).len()))
        .collect();
    println!("centroids per language: {sizes:?}");

    // Classify a few fresh sentences.
    let mut rng = seeded(99);
    for lang_idx in [0usize, 3, 5] {
        let sentence = languages[lang_idx].sentence(150, &mut rng);
        let q = encoder.encode_binary(&sentence)?;
        let hit = binary_am.search(&q)?;
        println!(
            "\"{}...\" -> {} (truth {})",
            &sentence[..24.min(sentence.len())],
            languages[hit.class].name,
            languages[lang_idx].name
        );
    }
    Ok(())
}
