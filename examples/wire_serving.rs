//! Serving over the wire: stand up the TCP + Unix-domain-socket
//! front-end over a trained MEMHD associative memory, drive it with a
//! pipelined wire client (packed frames, zero repacking on either
//! side), ask for ranked top-k slates, and see a malformed request come
//! back as a typed error frame instead of a dropped connection.
//!
//! Run with: `cargo run --release --example wire_serving`

use hd_datasets::synthetic::SyntheticSpec;
use hd_serve::net::{
    code, ResilientClient, ResilientConfig, ResilientError, Target, WireClient, WireConfig,
    WireEvent, WireServer,
};
use hd_serve::{ServeConfig, Server, ShardedSearcher};
use hdc::Encoder;
use memhd::{MemhdConfig, MemhdModel};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== hd-serve wire front-end: packed frames over TCP and UDS ==\n");
    println!("kernel backend: {}\n", hd_linalg::kernel::active());

    // 1. Train a small MEMHD model and serve its AM, sharded.
    let ds = SyntheticSpec::fmnist_like(60, 25).generate(7)?;
    let config = MemhdConfig::new(128, 64, ds.num_classes)?.with_epochs(5).with_seed(1);
    let model = MemhdModel::fit(&config, &ds.train_features, &ds.train_labels)?;
    let encoded = model.encoder().encode_binary_batch(&ds.test_features)?;
    let queries: Vec<hd_linalg::BitVector> =
        (0..encoded.len()).map(|i| encoded.query(i).to_bit_vector()).collect();
    let sharded = ShardedSearcher::from_am(model.binary_am(), 2)?;
    let server = Arc::new(Server::start(
        Arc::new(sharded),
        ServeConfig { max_batch: 64, max_delay: Duration::from_micros(200), ..Default::default() },
    )?);

    // 2. One front-end, two transports: an ephemeral TCP port for remote
    //    clients and a Unix socket for co-located ones. Every connection
    //    feeds the same micro-batcher, so traffic coalesces across them.
    let wire = Arc::new(WireServer::start(Arc::clone(&server), WireConfig::default())?);
    let addr = wire.listen_tcp("127.0.0.1:0")?;
    let uds_path = std::env::temp_dir().join(format!("hd-wire-demo-{}.sock", std::process::id()));
    wire.listen_uds(&uds_path)?;
    println!("listening on tcp://{addr} and {}", uds_path.display());

    // 3. A TCP client pipelines the whole test set as 32-query frames.
    //    The frame payload is the packed batch layout itself: the
    //    client sends `BitVector` words verbatim, the server ingests
    //    them with one word copy (`Server::submit_packed`).
    let mut client = WireClient::connect_tcp(addr)?;
    println!(
        "handshake: D = {}, {} rows, generation {}\n",
        client.dim(),
        client.rows(),
        client.generation()
    );
    let started = Instant::now();
    let mut in_flight = 0usize;
    let mut correct = 0usize;
    let mut answered = 0usize;
    for frame in queries.chunks(32) {
        client.send_queries(frame, 1)?;
        in_flight += frame.len();
        // Keep at most ~8 frames outstanding — per-connection windowing
        // on top of the server's own admission control.
        while in_flight > 224 {
            let (id, hits) = client.recv_response()?;
            correct += usize::from(hits[0].class == ds.test_labels[id as usize]);
            in_flight -= 1;
            answered += 1;
        }
    }
    while in_flight > 0 {
        let (id, hits) = client.recv_response()?;
        correct += usize::from(hits[0].class == ds.test_labels[id as usize]);
        in_flight -= 1;
        answered += 1;
    }
    let elapsed = started.elapsed();
    println!(
        "tcp: {answered} queries in {elapsed:.2?} ({:.0} ns/query over the wire), accuracy {:.3}",
        elapsed.as_nanos() as f64 / answered.max(1) as f64,
        correct as f64 / answered.max(1) as f64,
    );

    // 4. A UDS client asks for ranked slates (k = 3) instead.
    let mut uds = WireClient::connect_uds(&uds_path)?;
    uds.send_queries(&queries[..1], 3)?;
    let (_, slate) = uds.recv_response()?;
    println!("\nuds top-3 slate for query 0 (true class {}):", ds.test_labels[0]);
    for (rank, hit) in slate.iter().enumerate() {
        println!("  #{rank}: class {} (row {}, score {})", hit.class, hit.row, hit.score);
    }

    // 5. Malformed input answers a typed error frame; the connection
    //    (and every other in-flight query) survives.
    uds.send_queries(&queries[..1], 0)?; // k = 0 is invalid
    match uds.recv()? {
        WireEvent::Error(body) => println!(
            "\nk = 0 rejected with error frame: code {} ({}), \"{}\"",
            body.code,
            if body.code == code::BAD_K { "BAD_K" } else { "?" },
            body.message
        ),
        other => println!("unexpected: {other:?}"),
    }
    uds.send_queries(&queries[..1], 1)?;
    let (_, hits) = uds.recv_response()?;
    println!("same connection still serves: class {} for query 0", hits[0].class);

    // 6. ResilientClient: the same workload through the self-healing
    //    wrapper — connect/request deadlines, reconnect under jittered
    //    backoff, and a retry ledger that makes delivery exactly-once
    //    even across resets and GOAWAYs.
    let resilient_config = ResilientConfig {
        max_attempts: 4,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        ..Default::default()
    };
    let mut resilient =
        ResilientClient::new(Target::Tcp(addr.to_string()), resilient_config.clone());
    let slates = resilient.search(&queries[..16], 1)?;
    println!(
        "\nresilient client: {} / 16 answers delivered exactly once \
         (generation pinned at {:?}, {} connection(s) used)",
        slates.len(),
        resilient.generation().unwrap_or_default(),
        resilient.reconnects(),
    );

    // 7. Graceful drain: queries accepted before the drain are flushed
    //    to completion, then the connection hears GOAWAY carrying the
    //    last-accepted id — everything beyond it is safe to resubmit.
    let mut tail = WireClient::connect_tcp(addr)?;
    let ids = tail.send_queries(&queries[..8], 1)?;
    // Receiving one answer proves the whole frame was accepted (a frame
    // is admitted atomically) before the drain begins.
    let _ = tail.recv_response()?;
    let mut flushed = 1usize;
    let drainer = {
        let wire = Arc::clone(&wire);
        std::thread::spawn(move || wire.drain(Duration::from_secs(5)))
    };
    loop {
        match tail.recv()? {
            WireEvent::Response { .. } => flushed += 1,
            WireEvent::GoAway { last_accepted } => {
                println!(
                    "\ndrain: {flushed} / {} accepted answers flushed, then GOAWAY \
                     (last accepted id {last_accepted} = every id sent; nothing to resubmit)",
                    ids.end - ids.start
                );
                break;
            }
            other => println!("unexpected during drain: {other:?}"),
        }
    }
    assert!(drainer.join().expect("drain thread"), "drain deadline was generous");

    // A post-drain search fails with a typed, retries-exhausted error —
    // the resilient client reports *why* instead of hanging.
    match resilient.search(&queries[..1], 1) {
        Err(ResilientError::RetriesExhausted { attempts, .. }) => {
            println!(
                "post-drain search: retries exhausted after {attempts} attempts (as designed)"
            );
        }
        other => println!("unexpected post-drain outcome: {other:?}"),
    }

    // 8. Clean shutdown closes sockets and unlinks the UDS file; the
    //    in-process server outlives the front-end.
    wire.shutdown();
    println!(
        "\nfront-end down (socket file removed: {}); in-process server still answers: class {}",
        !uds_path.exists(),
        server.classify(queries[0].as_view())?.class
    );
    server.shutdown();
    Ok(())
}
