//! IMC deployment scenario: map one trained model onto arrays with the
//! three strategies of paper Fig. 1 and compare hardware costs.
//!
//! Trains a single-centroid BasicHDC model at high dimensionality (the
//! paper's 10240D regime, scaled down), maps its AM with the Basic and
//! Partitioned strategies, then trains MEMHD sized to the array and maps
//! it fully-utilized — reproducing the Table II / Fig. 7 trade-offs with
//! *live* models rather than synthetic matrices, and verifying that every
//! mapping computes exactly the same predictions as software.
//!
//! Run with: `cargo run --release --example imc_deployment`

use hd_baselines::{BasicHdc, HdcClassifier};
use hd_datasets::synthetic::SyntheticSpec;
use hdc::Encoder;
use imc_sim::{system_report, AmMapping, ArraySpec, EnergyModel, MappingStrategy};
use memhd::{MemhdConfig, MemhdModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticSpec::mnist_like(150, 40).generate(33)?;
    let spec = ArraySpec::default(); // 128x128 SRAM arrays
    let energy = EnergyModel::default();

    // A high-dimensional single-centroid model (the paper's baseline regime).
    let basic_dim = 2048;
    let basic = BasicHdc::fit(basic_dim, &dataset.train_features, &dataset.train_labels, 10, 1)?;
    let basic_acc = basic.evaluate(&dataset.test_features, &dataset.test_labels)? * 100.0;

    // MEMHD sized exactly to one array.
    let config = MemhdConfig::new(spec.rows(), spec.cols(), 10)?.with_epochs(12).with_seed(1);
    let memhd = MemhdModel::fit(&config, &dataset.train_features, &dataset.train_labels)?;
    let memhd_acc = memhd.evaluate(&dataset.test_features, &dataset.test_labels)? * 100.0;

    println!("models: BasicHDC {basic_dim}D {basic_acc:.1}% | MEMHD 128x128 {memhd_acc:.1}%\n");

    println!(
        "{:<28} {:>7} {:>7} {:>9} {:>10} {:>12}",
        "mapping", "cycles", "arrays", "AM util", "energy pJ", "latency ns"
    );
    let print_mapping = |label: &str, mapping: &AmMapping, features: usize| {
        let r = system_report(features, mapping);
        println!(
            "{:<28} {:>7} {:>7} {:>8.1}% {:>10.1} {:>12.1}",
            label,
            r.total_cycles(),
            r.total_arrays(),
            r.am_utilization * 100.0,
            mapping.inference_energy_pj(&energy),
            energy.latency_ns(r.total_cycles()),
        );
    };

    let f = dataset.feature_dim();
    let basic_map = AmMapping::new(basic.binary_am(), spec, MappingStrategy::Basic)?;
    print_mapping(&format!("BasicHDC {basic_dim}D basic"), &basic_map, f);
    for p in [4usize, 8] {
        let m = AmMapping::new(
            basic.binary_am(),
            spec,
            MappingStrategy::Partitioned { partitions: p },
        )?;
        print_mapping(&format!("BasicHDC {basic_dim}D P={p}"), &m, f);
    }
    let memhd_map = AmMapping::new(memhd.binary_am(), spec, MappingStrategy::Basic)?;
    print_mapping("MEMHD 128x128 (one-shot)", &memhd_map, f);

    // Verify bit-exactness of every mapping against software inference,
    // with both sides running their batched search pipelines.
    let checked = dataset.test_len().min(100);
    let probe = dataset.test_features.take_rows(checked)?;
    let basic_batch = basic.encoder().encode_binary_batch(&probe)?;
    let sw = basic.binary_am().classify_batch(&basic_batch)?;
    assert_eq!(basic_map.search_batch(&basic_batch)?.predicted_classes, sw);

    let memhd_batch = memhd.encoder().encode_binary_batch(&probe)?;
    let sw = memhd.binary_am().classify_batch(&memhd_batch)?;
    assert_eq!(memhd_map.search_batch(&memhd_batch)?.predicted_classes, sw);
    println!("\nverified {checked} samples: mapped-array predictions == software predictions");

    Ok(())
}
