//! Image classification scenario: choose an AM shape for a memory budget.
//!
//! The paper's Fig. 4 observation is that the AM structure should be
//! adapted to the hardware: more dimensions (array rows) buy encoding
//! quality; more columns buy per-class capacity. This example trains MEMHD
//! at several shapes on the Fashion-MNIST-like dataset, compares against
//! the single-centroid BasicHDC baseline at matched memory, and shows how
//! intra-class modes are covered by multiple centroids.
//!
//! Run with: `cargo run --release --example image_classification`

use hd_baselines::{BasicHdc, HdcClassifier};
use hd_datasets::synthetic::SyntheticSpec;
use memhd::{MemhdConfig, MemhdModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticSpec::fmnist_like(200, 50).generate(11)?;
    println!(
        "dataset: {} ({} classes, {} modes of variation per class)\n",
        dataset.name, dataset.num_classes, 5
    );

    println!("MEMHD shape sweep (paper Fig. 4 row):");
    println!("{:<12} {:>10} {:>12}", "shape DxC", "memory KB", "accuracy %");
    let mut best: Option<(String, f64, f64)> = None;
    for (dim, cols) in [(64usize, 64usize), (128, 128), (256, 128), (256, 256)] {
        let config = MemhdConfig::new(dim, cols, dataset.num_classes)?.with_epochs(12).with_seed(3);
        let model = MemhdModel::fit(&config, &dataset.train_features, &dataset.train_labels)?;
        let acc = model.evaluate(&dataset.test_features, &dataset.test_labels)? * 100.0;
        let kb = model.memory_report().total_kb();
        println!("{:<12} {:>10.1} {:>12.2}", format!("{dim}x{cols}"), kb, acc);
        if best.as_ref().is_none_or(|(_, _, a)| acc > *a) {
            best = Some((format!("{dim}x{cols}"), kb, acc));
        }

        // Per-class centroid allocation chosen by the confusion-driven
        // initialization: harder classes get more columns.
        if (dim, cols) == (256, 128) {
            let am = model.binary_am();
            let sizes: Vec<usize> =
                (0..dataset.num_classes).map(|c| am.rows_of_class(c).len()).collect();
            println!("  centroids per class at 256x128: {sizes:?}");
        }
    }
    let (shape, kb, acc) = best.expect("at least one shape");

    // Single-centroid baseline at comparable (larger) memory.
    println!("\nBasicHDC baseline (single class vector per class):");
    println!("{:<12} {:>10} {:>12}", "dimension", "memory KB", "accuracy %");
    for dim in [512usize, 1024] {
        let model = BasicHdc::fit(
            dim,
            &dataset.train_features,
            &dataset.train_labels,
            dataset.num_classes,
            3,
        )?;
        let bacc = model.evaluate(&dataset.test_features, &dataset.test_labels)? * 100.0;
        let bkb = model.memory_report().total_kb();
        println!("{:<12} {:>10.1} {:>12.2}", format!("{dim}D"), bkb, bacc);
    }

    println!(
        "\nbest MEMHD: {shape} at {kb:.1} KB, {acc:.2}% — multi-centroid capacity \
         covers the intra-class modes that a single prototype averages away."
    );
    Ok(())
}
