//! Biosignal (ExG) gesture classification — the third application domain
//! the paper's introduction cites (Rahimi et al., "Efficient Biosignal
//! Processing Using Hyperdimensional Computing").
//!
//! Synthetic multi-channel EMG-like recordings are windowed into feature
//! vectors (per-channel mean absolute value and a zero-crossing proxy —
//! standard EMG features), then classified with MEMHD sized to a 128×128
//! IMC array. Gestures are naturally multi-modal — the same gesture
//! executed with different effort levels produces distinct feature
//! clusters — which is exactly the structure the multi-centroid AM
//! captures.
//!
//! Run with: `cargo run --release --example biosignal_gestures`

use hd_linalg::rng::{seeded, Normal};
use hd_linalg::Matrix;
use memhd::{MemhdConfig, MemhdModel};
use rand::rngs::StdRng;
use rand::Rng;

const CHANNELS: usize = 16;
const WINDOW: usize = 64;

/// One synthetic gesture: per-channel activation envelope with several
/// "effort" modes (light / medium / strong execution).
struct Gesture {
    name: &'static str,
    /// Per-channel base activation in [0, 1].
    activation: Vec<f32>,
}

impl Gesture {
    fn new(name: &'static str, seed: u64) -> Self {
        let mut rng = seeded(seed);
        // A gesture activates a sparse subset of channels strongly.
        let activation = (0..CHANNELS)
            .map(|_| if rng.gen_bool(0.3) { 0.5 + 0.5 * rng.gen::<f32>() } else { 0.1 })
            .collect();
        Gesture { name, activation }
    }

    /// Simulates one recording window and extracts features:
    /// [mean-absolute-value per channel, zero-crossing rate per channel].
    fn record(&self, effort: f32, rng: &mut StdRng) -> Vec<f32> {
        let noise = Normal::new(0.0, 1.0);
        let mut features = Vec::with_capacity(2 * CHANNELS);
        let mut zc = Vec::with_capacity(CHANNELS);
        for ch in 0..CHANNELS {
            let amp = self.activation[ch] * effort;
            let mut mav = 0.0f32;
            let mut crossings = 0usize;
            let mut prev = 0.0f32;
            for t in 0..WINDOW {
                // EMG-like signal: amplitude-modulated noise with a weak
                // channel-specific carrier.
                let carrier = ((t as f32) * (0.2 + 0.05 * ch as f32)).sin();
                let sample = amp * (0.6 * noise.sample(rng) + 0.4 * carrier);
                mav += sample.abs();
                if t > 0 && (sample > 0.0) != (prev > 0.0) {
                    crossings += 1;
                }
                prev = sample;
            }
            features.push((mav / WINDOW as f32).min(1.0));
            zc.push(crossings as f32 / WINDOW as f32);
        }
        features.extend(zc);
        features
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gestures = [
        Gesture::new("rest", 1),
        Gesture::new("fist", 2),
        Gesture::new("pinch", 3),
        Gesture::new("point", 4),
        Gesture::new("spread", 5),
    ];
    let k = gestures.len();
    let efforts = [0.5f32, 1.0, 1.6]; // three execution modes per gesture

    let mut rng = seeded(77);
    let build_split = |per_mode: usize, rng: &mut StdRng| {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (label, g) in gestures.iter().enumerate() {
            for &effort in &efforts {
                for _ in 0..per_mode {
                    rows.push(g.record(effort, rng));
                    labels.push(label);
                }
            }
        }
        (Matrix::from_rows(&rows).expect("consistent rows"), labels)
    };
    let (train_x, train_y) = build_split(30, &mut rng);
    let (test_x, test_y) = build_split(10, &mut rng);
    println!(
        "{} gestures x {} effort modes, {} train / {} test windows, {} features",
        k,
        efforts.len(),
        train_y.len(),
        test_y.len(),
        train_x.cols()
    );

    // MEMHD sized to one 128x128 array.
    let config = MemhdConfig::new(128, 128, k)?.with_epochs(12).with_seed(9);
    let model = MemhdModel::fit(&config, &train_x, &train_y)?;
    let acc = model.evaluate(&test_x, &test_y)?;
    println!(
        "MEMHD 128x128: test accuracy {:.1}% | {} | one-shot associative search",
        acc * 100.0,
        model.memory_report()
    );

    // How the confusion-driven allocation spread columns over gestures.
    let am = model.binary_am();
    for (c, g) in gestures.iter().enumerate() {
        println!("  {:<7} -> {} centroids", g.name, am.rows_of_class(c).len());
    }

    // Online refinement with a new session's data (electrode drift, etc.).
    let mut model = model;
    let (new_x, new_y) = build_split(8, &mut rng);
    model.refine(&new_x, &new_y, 4)?;
    let refined = model.evaluate(&test_x, &test_y)?;
    println!("after refinement on a new session: {:.1}%", refined * 100.0);

    Ok(())
}
