//! Workspace facade for the MEMHD reproduction.
//!
//! Re-exports every crate of the stack under one roof so the root-level
//! integration tests (`tests/`) and runnable examples (`examples/`) can
//! depend on a single package. Library consumers should depend on the
//! individual crates directly; see the crate dependency graph in the root
//! `README.md`.

#![forbid(unsafe_code)]

pub use hd_baselines;
pub use hd_clustering;
pub use hd_datasets;
pub use hd_linalg;
pub use hd_serve;
pub use hdc;
pub use imc_sim;
pub use memhd;
pub use memhd_bench;
