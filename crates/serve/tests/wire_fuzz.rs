//! Property-based fuzzing of the wire codec and front-end: arbitrary
//! byte streams, fuzzed headers with truncated payloads, and garbage
//! trailing a valid frame must never panic a connection thread, never
//! hang the peer, and never lose an in-flight query — every outcome is
//! a parseable frame or a clean close.

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, SearchMemory};
use hd_serve::net::wire::{self, WireError};
use hd_serve::net::{
    Header, RetryLedger, WireClient, WireConfig, WireServer, FT_ERROR, FT_GOAWAY, FT_HELLO_ACK,
    FT_PING, FT_PONG, FT_RESPONSE, GOAWAY_NONE, HEADER_LEN,
};
use hd_serve::{Searchable, ServeConfig, Server, ShardedSearcher};
use proptest::prelude::*;
use rand::Rng as _;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const DIM: usize = 128;

/// One shared served fixture for every proptest case (leaked: proptest
/// cases are independent closures, and tearing a server down per case
/// would dominate the suite's runtime).
fn fixture_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let mut rng = seeded(4096);
        let rows: Vec<BitVector> = (0..33)
            .map(|_| BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let classes: Vec<usize> = (0..rows.len()).map(|r| r % 3).collect();
        let memory = SearchMemory::from_rows(&rows).unwrap();
        let sharded = ShardedSearcher::new(memory, classes, 2).unwrap();
        let server = Arc::new(
            Server::start(
                Arc::new(sharded) as Arc<dyn Searchable>,
                ServeConfig {
                    max_batch: 8,
                    max_delay: Duration::from_micros(200),
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let wire = WireServer::start(Arc::clone(&server), WireConfig::default()).unwrap();
        let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
        std::mem::forget(wire);
        std::mem::forget(server);
        addr
    })
}

/// Reads frames until EOF, asserting each one parses as a known frame
/// type. Returns the ids of RESPONSE frames, in arrival order.
fn drain_frames(stream: &mut TcpStream) -> Vec<u64> {
    let mut response_ids = Vec::new();
    loop {
        let header = match wire::read_header(stream) {
            Ok(h) => h,
            Err(WireError::Io(_)) => break, // clean close
            Err(e) => panic!("server sent an unparseable frame: {e}"),
        };
        match header.frame_type {
            FT_ERROR => {
                wire::read_error_body(stream).unwrap();
            }
            FT_RESPONSE => {
                response_ids.push(wire::read_u64(stream).unwrap());
                let _generation = wire::read_u64(stream).unwrap();
                wire::drain(stream, header.k as u64 * 12).unwrap();
            }
            FT_HELLO_ACK => {
                wire::drain(stream, 16).unwrap();
            }
            // Liveness frames are header-only: nothing further to read.
            FT_PING | FT_PONG | FT_GOAWAY => {}
            other => panic!("server sent unknown frame type {other}"),
        }
    }
    response_ids
}

/// A byte stream that is hostile but *shaped*: either raw bytes, or a
/// syntactically valid header with fuzzed fields and an arbitrary
/// (usually truncated) payload — exercising the validation ladder, the
/// bounded drain, and mid-frame disconnects.
fn hostile_bytes() -> impl Strategy<Value = Vec<u8>> {
    (
        any::<bool>(),
        proptest::collection::vec(0u8..=255, 0..96),
        (
            // Covers QUERY, the liveness frames (PING/PONG/GOAWAY), and
            // unknown future types beyond them.
            0u8..12,
            0u8..=255,
            // GOAWAY_NONE (u64::MAX) is a meaningful sentinel nonce.
            proptest::sample::select(vec![0u64, 1, 2, u64::MAX]),
            0u32..10_000,
            0u32..8,
        ),
        proptest::collection::vec(0u8..=255, 0..128),
    )
        .prop_map(
            |(raw_mode, raw, (frame_type, flags, model_key, count, words_per_query), payload)| {
                if raw_mode {
                    return raw;
                }
                let header = Header {
                    frame_type,
                    flags,
                    k: (count & 0x7) as u16,
                    model_key,
                    count,
                    words_per_query,
                };
                let mut bytes = header.encode().to_vec();
                bytes.extend_from_slice(&payload);
                bytes
            },
        )
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn header_decode_never_panics_and_roundtrips_valid_magic(
        bytes in proptest::collection::vec(0u8..=255, HEADER_LEN..HEADER_LEN + 1)
    ) {
        let buf: [u8; HEADER_LEN] = bytes.try_into().unwrap();
        match Header::decode(&buf) {
            Ok(header) => {
                // Valid magic: decode/encode must be the identity.
                prop_assert_eq!(header.encode(), buf);
            }
            Err(WireError::Protocol(_)) => {} // bad magic
            Err(e) => panic!("unexpected decode error: {e}"),
        }
    }

    #[test]
    fn server_answers_or_closes_on_hostile_streams(bytes in hostile_bytes()) {
        let mut stream = TcpStream::connect(fixture_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&bytes).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Must terminate: every frame parseable, then EOF — a read
        // timeout here means a connection thread hung or panicked.
        drain_frames(&mut stream);
    }

    #[test]
    fn garbage_after_a_valid_frame_never_loses_the_query(trailing in hostile_bytes()) {
        let mut rng = seeded(4097);
        let query =
            BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>());
        let mut stream = TcpStream::connect(fixture_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut burst = Vec::new();
        wire::write_query(&mut burst, 1, 7, (DIM / 64) as u32, query.as_words()).unwrap();
        burst.extend_from_slice(&trailing);
        stream.write_all(&burst).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let response_ids = drain_frames(&mut stream);
        // Whatever the trailing bytes decode to, the valid query's
        // answer must come back first.
        prop_assert_eq!(response_ids.first(), Some(&7));
    }

    /// A PING with any nonce (including the GOAWAY_NONE sentinel) and
    /// any flag bits is answered by a PONG echoing the nonce.
    #[test]
    fn ping_with_any_nonce_and_flags_is_ponged(
        nonce_raw in any::<u64>(),
        use_sentinel in any::<bool>(),
        flags in 0u8..=255,
    ) {
        let nonce = if use_sentinel { GOAWAY_NONE } else { nonce_raw };
        let mut stream = TcpStream::connect(fixture_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let header = Header {
            frame_type: FT_PING,
            flags,
            k: 0,
            model_key: nonce,
            count: 0,
            words_per_query: 0,
        };
        stream.write_all(&header.encode()).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let pong = wire::read_header(&mut stream).unwrap();
        prop_assert_eq!(pong.frame_type, FT_PONG);
        prop_assert_eq!(pong.model_key, nonce);
    }

    /// Liveness frames that declare an in-bounds payload are rejected
    /// recoverably: the declared bytes are consumed, the connection
    /// survives, and a QUERY sent afterwards is still answered.
    #[test]
    fn liveness_frames_with_payload_are_rejected_recoverably(
        frame_type in proptest::sample::select(vec![FT_PING, FT_PONG, FT_GOAWAY]),
        count in 1u32..4,
        words_per_query in 1u32..4,
        flags in 0u8..=255,
    ) {
        let mut rng = seeded(4099);
        let query =
            BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>());
        let mut stream = TcpStream::connect(fixture_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let header = Header {
            frame_type,
            flags,
            k: 0,
            model_key: 1,
            count,
            words_per_query,
        };
        let mut burst = header.encode().to_vec();
        burst.extend(vec![0xA5u8; (count * words_per_query) as usize * 8]);
        wire::write_query(&mut burst, 1, 9, (DIM / 64) as u32, query.as_words()).unwrap();
        stream.write_all(&burst).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let response_ids = drain_frames(&mut stream);
        prop_assert_eq!(response_ids, vec![9]);
    }

    /// The retry ledger's exactly-once-observable contract, under
    /// arbitrary interleavings of submissions, responses, duplicate
    /// responses, overload rejections, GOAWAYs, and disconnects:
    /// a delivered id is never resubmitted (enforced by panic inside
    /// `record_submission`), never delivered twice, and the workload
    /// still completes once a connection behaves.
    #[test]
    fn retry_ledger_is_exactly_once_under_arbitrary_disconnects(
        total in 1usize..24,
        ops in proptest::collection::vec((0u8..5, any::<u64>()), 0..256),
    ) {
        let mut ledger = RetryLedger::new(total);
        let mut next_wire_id = 0u64;
        let mut live: Vec<u64> = Vec::new(); // ids submitted this epoch
        let mut seen = vec![false; total];

        let submit_pending =
            |ledger: &mut RetryLedger, next: &mut u64, live: &mut Vec<u64>| {
                for ext in ledger.pending() {
                    ledger.record_submission(*next, &[ext]);
                    live.push(*next);
                    *next += 1;
                }
            };

        for (op, value) in ops {
            match op {
                // (Re)submit everything pending under fresh wire ids.
                0 => submit_pending(&mut ledger, &mut next_wire_id, &mut live),
                // A response for some previously submitted id —
                // possibly one already answered or reverted.
                1 if !live.is_empty() => {
                    let wire_id = live[(value % live.len() as u64) as usize];
                    if let Some(ext) = ledger.record_response(wire_id) {
                        prop_assert!(!seen[ext], "answer for query {ext} delivered twice");
                        seen[ext] = true;
                    }
                    // An exact duplicate must be swallowed.
                    prop_assert_eq!(ledger.record_response(wire_id), None);
                }
                // An overload-style rejection reverts the id.
                2 if !live.is_empty() => {
                    let wire_id = live[(value % live.len() as u64) as usize];
                    ledger.record_unanswered(wire_id);
                }
                // GOAWAY with an arbitrary last-accepted watermark.
                3 => {
                    let last_accepted =
                        if value == u64::MAX { GOAWAY_NONE } else { value % (next_wire_id + 1) };
                    ledger.record_goaway(last_accepted);
                }
                // Disconnect: a new epoch reverts all in-flight ids.
                4 => {
                    ledger.begin_epoch();
                    live.clear();
                }
                _ => {}
            }
        }

        // However hostile the schedule was, a cooperating connection
        // finishes the job: drain to completion.
        ledger.begin_epoch();
        live.clear();
        submit_pending(&mut ledger, &mut next_wire_id, &mut live);
        for wire_id in live {
            if let Some(ext) = ledger.record_response(wire_id) {
                prop_assert!(!seen[ext], "answer for query {ext} delivered twice");
                seen[ext] = true;
            }
        }
        prop_assert!(ledger.is_complete());
        prop_assert_eq!(ledger.delivered_count(), total);
        prop_assert!(seen.iter().all(|&s| s), "every query delivered exactly once");
        prop_assert!(ledger.pending().is_empty());
    }
}

/// After every hostile case above, the fixture must still serve good
/// traffic (runs last only by name luck, so assert it independently).
#[test]
fn fixture_survives_the_fuzz_suite() {
    let mut rng = seeded(4098);
    let query = BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>());
    let mut client = WireClient::connect_tcp(fixture_addr()).unwrap();
    let ids = client.send_queries(std::slice::from_ref(&query), 3).unwrap();
    let (id, hits) = client.recv_response().unwrap();
    assert_eq!(id, ids.start);
    assert_eq!(hits.len(), 3);
}
