//! Property-based fuzzing of the wire codec and front-end: arbitrary
//! byte streams, fuzzed headers with truncated payloads, and garbage
//! trailing a valid frame must never panic a connection thread, never
//! hang the peer, and never lose an in-flight query — every outcome is
//! a parseable frame or a clean close.

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, SearchMemory};
use hd_serve::net::wire::{self, WireError};
use hd_serve::net::{
    Header, WireClient, WireConfig, WireServer, FT_ERROR, FT_HELLO_ACK, FT_RESPONSE, HEADER_LEN,
};
use hd_serve::{Searchable, ServeConfig, Server, ShardedSearcher};
use proptest::prelude::*;
use rand::Rng as _;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const DIM: usize = 128;

/// One shared served fixture for every proptest case (leaked: proptest
/// cases are independent closures, and tearing a server down per case
/// would dominate the suite's runtime).
fn fixture_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let mut rng = seeded(4096);
        let rows: Vec<BitVector> = (0..33)
            .map(|_| BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let classes: Vec<usize> = (0..rows.len()).map(|r| r % 3).collect();
        let memory = SearchMemory::from_rows(&rows).unwrap();
        let sharded = ShardedSearcher::new(memory, classes, 2).unwrap();
        let server = Arc::new(
            Server::start(
                Arc::new(sharded) as Arc<dyn Searchable>,
                ServeConfig {
                    max_batch: 8,
                    max_delay: Duration::from_micros(200),
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let wire = WireServer::start(Arc::clone(&server), WireConfig::default()).unwrap();
        let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
        std::mem::forget(wire);
        std::mem::forget(server);
        addr
    })
}

/// Reads frames until EOF, asserting each one parses as a known frame
/// type. Returns the ids of RESPONSE frames, in arrival order.
fn drain_frames(stream: &mut TcpStream) -> Vec<u64> {
    let mut response_ids = Vec::new();
    loop {
        let header = match wire::read_header(stream) {
            Ok(h) => h,
            Err(WireError::Io(_)) => break, // clean close
            Err(e) => panic!("server sent an unparseable frame: {e}"),
        };
        match header.frame_type {
            FT_ERROR => {
                wire::read_error_body(stream).unwrap();
            }
            FT_RESPONSE => {
                response_ids.push(wire::read_u64(stream).unwrap());
                let _generation = wire::read_u64(stream).unwrap();
                wire::drain(stream, header.k as u64 * 12).unwrap();
            }
            FT_HELLO_ACK => {
                wire::drain(stream, 16).unwrap();
            }
            other => panic!("server sent unknown frame type {other}"),
        }
    }
    response_ids
}

/// A byte stream that is hostile but *shaped*: either raw bytes, or a
/// syntactically valid header with fuzzed fields and an arbitrary
/// (usually truncated) payload — exercising the validation ladder, the
/// bounded drain, and mid-frame disconnects.
fn hostile_bytes() -> impl Strategy<Value = Vec<u8>> {
    (
        any::<bool>(),
        proptest::collection::vec(0u8..=255, 0..96),
        (0u8..8, 0u64..3, 0u32..10_000, 0u32..8),
        proptest::collection::vec(0u8..=255, 0..128),
    )
        .prop_map(
            |(raw_mode, raw, (frame_type, model_key, count, words_per_query), payload)| {
                if raw_mode {
                    return raw;
                }
                let header = Header {
                    frame_type,
                    flags: 0,
                    k: (count & 0x7) as u16,
                    model_key,
                    count,
                    words_per_query,
                };
                let mut bytes = header.encode().to_vec();
                bytes.extend_from_slice(&payload);
                bytes
            },
        )
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn header_decode_never_panics_and_roundtrips_valid_magic(
        bytes in proptest::collection::vec(0u8..=255, HEADER_LEN..HEADER_LEN + 1)
    ) {
        let buf: [u8; HEADER_LEN] = bytes.try_into().unwrap();
        match Header::decode(&buf) {
            Ok(header) => {
                // Valid magic: decode/encode must be the identity.
                prop_assert_eq!(header.encode(), buf);
            }
            Err(WireError::Protocol(_)) => {} // bad magic
            Err(e) => panic!("unexpected decode error: {e}"),
        }
    }

    #[test]
    fn server_answers_or_closes_on_hostile_streams(bytes in hostile_bytes()) {
        let mut stream = TcpStream::connect(fixture_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&bytes).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Must terminate: every frame parseable, then EOF — a read
        // timeout here means a connection thread hung or panicked.
        drain_frames(&mut stream);
    }

    #[test]
    fn garbage_after_a_valid_frame_never_loses_the_query(trailing in hostile_bytes()) {
        let mut rng = seeded(4097);
        let query =
            BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>());
        let mut stream = TcpStream::connect(fixture_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut burst = Vec::new();
        wire::write_query(&mut burst, 1, 7, (DIM / 64) as u32, query.as_words()).unwrap();
        burst.extend_from_slice(&trailing);
        stream.write_all(&burst).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let response_ids = drain_frames(&mut stream);
        // Whatever the trailing bytes decode to, the valid query's
        // answer must come back first.
        prop_assert_eq!(response_ids.first(), Some(&7));
    }
}

/// After every hostile case above, the fixture must still serve good
/// traffic (runs last only by name luck, so assert it independently).
#[test]
fn fixture_survives_the_fuzz_suite() {
    let mut rng = seeded(4098);
    let query = BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>());
    let mut client = WireClient::connect_tcp(fixture_addr()).unwrap();
    let ids = client.send_queries(std::slice::from_ref(&query), 3).unwrap();
    let (id, hits) = client.recv_response().unwrap();
    assert_eq!(id, ids.start);
    assert_eq!(hits.len(), 3);
}
