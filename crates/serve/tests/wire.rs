//! Loopback end-to-end tests for the wire front-end: results over the
//! socket must be bit-identical to in-process submission (including
//! under forced shard degradation), malformed frames must answer typed
//! error frames without losing any in-flight query, and overload must
//! shed whole frames with a typed error.

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, QueryBatch, SearchMemory};
use hd_serve::net::wire::{self, ErrorBody};
use hd_serve::net::{
    code, Header, WireClient, WireConfig, WireEvent, WireServer, CONNECTION_ERROR_ID, FT_ERROR,
    FT_GOAWAY, FT_HELLO_ACK, FT_PING, FT_QUERY, FT_RESPONSE, GOAWAY_NONE, HEADER_LEN,
};
use hd_serve::{Prediction, Searchable, ServeConfig, Server, ShardedSearcher, Winner};
use rand::Rng;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 128;
const ROWS: usize = 61;

fn random_rows(rows: usize, dim: usize, seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..rows)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect()
}

fn random_queries(n: usize, seed: u64) -> Vec<BitVector> {
    random_rows(n, DIM, seed)
}

fn sharded_fixture(seed: u64) -> Arc<ShardedSearcher> {
    let rows = random_rows(ROWS, DIM, seed);
    let classes: Vec<usize> = (0..rows.len()).map(|r| r % 5).collect();
    let memory = SearchMemory::from_rows(&rows).unwrap();
    Arc::new(ShardedSearcher::new(memory, classes, 4).unwrap())
}

/// A served sharded fixture with a TCP listener on an ephemeral port.
fn wire_fixture(seed: u64) -> (Arc<ShardedSearcher>, Arc<Server>, WireServer, SocketAddr) {
    let sharded = sharded_fixture(seed);
    let server = Arc::new(
        Server::start(
            Arc::clone(&sharded) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let wire = WireServer::start(Arc::clone(&server), WireConfig::default()).unwrap();
    let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
    (sharded, server, wire, addr)
}

/// In-process ground truth for one query at one k, via the same server.
fn expected(server: &Server, q: &BitVector, k: usize) -> Vec<Prediction> {
    server.submit_topk(q.as_view(), k).unwrap().wait().unwrap()
}

/// Drives `n` queries through `client` (first `split` at k=1, rest at
/// k=3) and asserts every response is bit-identical to in-process
/// submission and arrives in submission order.
fn roundtrip_and_compare(client: &mut WireClient, server: &Server, queries: &[BitVector]) {
    let split = queries.len() / 2;
    let base = client.send_queries(&queries[..split], 1).unwrap().start;
    client.send_queries(&queries[split..], 3).unwrap();
    let mut order = Vec::new();
    let mut got: HashMap<u64, Vec<Prediction>> = HashMap::new();
    for _ in 0..queries.len() {
        match client.recv().unwrap() {
            WireEvent::Response { id, hits } => {
                order.push(id);
                got.insert(id, hits);
            }
            other => panic!("unexpected event: {other:?}"),
        }
    }
    assert!(order.windows(2).all(|w| w[0] < w[1]), "responses arrive in submission order");
    for (i, q) in queries.iter().enumerate() {
        let k = if i < split { 1 } else { 3 };
        let id = base + i as u64;
        assert_eq!(got[&id], expected(server, q, k), "query {i} must be bit-identical");
    }
}

#[test]
fn tcp_loopback_is_bit_identical_to_in_process_submission() {
    let (_sharded, server, wire, addr) = wire_fixture(401);
    let mut client = WireClient::connect_tcp(addr).unwrap();
    assert_eq!(client.dim() as usize, DIM);
    assert_eq!(client.rows() as usize, ROWS);
    let queries = random_queries(20, 402);
    roundtrip_and_compare(&mut client, &server, &queries);

    // The zero-copy path: a BitVector's packed words sent verbatim
    // answer identically to the BitVector itself.
    let ids = client.send_packed_words(queries[0].as_words(), 1).unwrap();
    let (id, hits) = client.recv_response().unwrap();
    assert_eq!(id, ids.start);
    assert_eq!(hits, expected(&server, &queries[0], 1));

    wire.shutdown();
    server.shutdown();
}

#[cfg(unix)]
#[test]
fn uds_loopback_is_bit_identical_and_socket_file_is_cleaned_up() {
    let (_sharded, server, wire, _addr) = wire_fixture(411);
    let path = std::env::temp_dir().join(format!("hd-wire-test-{}.sock", std::process::id()));
    wire.listen_uds(&path).unwrap();
    let mut client = WireClient::connect_uds(&path).unwrap();
    assert_eq!(client.dim() as usize, DIM);
    let queries = random_queries(16, 412);
    roundtrip_and_compare(&mut client, &server, &queries);
    wire.shutdown();
    assert!(!path.exists(), "shutdown unlinks the socket file");
    server.shutdown();
}

#[test]
fn degraded_shard_failover_flags_wire_responses_and_stays_exact() {
    let (sharded, server, wire, addr) = wire_fixture(421);
    // Kill shard 0 past its respawn budget: the model serves exactly
    // over the survivors and must say so on the wire.
    sharded.inject_shard_panics(0, 100).unwrap();
    // Drive one classification through to force the failover to settle.
    let warmup = random_queries(1, 422).pop().unwrap();
    while !server.classify(warmup.as_view()).unwrap().degraded {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut client = WireClient::connect_tcp(addr).unwrap();
    let queries = random_queries(12, 423);
    let ids = client.send_queries(&queries, 2).unwrap();
    for (i, id) in ids.enumerate() {
        let (got_id, hits) = client.recv_response().unwrap();
        assert_eq!(got_id, id);
        assert!(hits.iter().all(|h| h.degraded), "degraded answers must be flagged on the wire");
        assert_eq!(hits, expected(&server, &queries[i], 2), "exact over the surviving rows");
    }
    assert_eq!(sharded.missing_shards(), vec![0]);
    wire.shutdown();
    server.shutdown();
}

/// Raw-protocol helper: connect + HELLO handshake, returning the stream
/// positioned after the HELLO_ACK.
fn raw_connect(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    wire::write_hello(&mut stream).unwrap();
    let header = wire::read_header(&mut stream).unwrap();
    assert_eq!(header.frame_type, FT_HELLO_ACK);
    wire::drain(&mut stream, 16).unwrap(); // dim, rows, generation
    stream
}

fn read_error_frame(stream: &mut TcpStream) -> ErrorBody {
    let header = wire::read_header(stream).unwrap();
    assert_eq!(header.frame_type, FT_ERROR);
    wire::read_error_body(stream).unwrap()
}

fn read_response_frame(stream: &mut TcpStream) -> (u64, Vec<(u32, u32, u32)>) {
    let header = wire::read_header(stream).unwrap();
    assert_eq!(header.frame_type, FT_RESPONSE);
    let id = wire::read_u64(stream).unwrap();
    let _generation = wire::read_u64(stream).unwrap();
    let hits = (0..header.k)
        .map(|_| {
            (
                wire::read_u32(stream).unwrap(),
                wire::read_u32(stream).unwrap(),
                wire::read_u32(stream).unwrap(),
            )
        })
        .collect();
    (id, hits)
}

fn assert_eof(stream: &mut TcpStream) {
    let mut byte = [0u8; 1];
    assert_eq!(stream.read(&mut byte).unwrap(), 0, "connection must be closed");
}

#[test]
fn recoverable_bad_frames_answer_typed_errors_and_keep_the_connection() {
    let (_sharded, server, wire, addr) = wire_fixture(431);
    let mut stream = raw_connect(addr);
    let wpq = (DIM / 64) as u32;
    let query = random_queries(1, 432).pop().unwrap();

    // k = 0: rejected before submission.
    wire::write_query(&mut stream, 0, 10, wpq, query.as_words()).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (10, code::BAD_K));

    // Wrong dimensionality: one word short per query.
    let short = vec![0u64; (wpq - 1) as usize];
    wire::write_query(&mut stream, 1, 20, wpq - 1, &short).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (20, code::DIMENSION_MISMATCH));

    // Zero queries declared.
    let mut header = Header::new(FT_QUERY);
    header.k = 1;
    header.count = 0;
    header.words_per_query = wpq;
    stream.write_all(&header.encode()).unwrap();
    stream.write_all(&30u64.to_le_bytes()).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (30, code::MALFORMED));

    // Non-default model key.
    let mut header = Header::new(FT_QUERY);
    header.k = 1;
    header.count = 1;
    header.words_per_query = wpq;
    header.model_key = 7;
    stream.write_all(&header.encode()).unwrap();
    stream.write_all(&40u64.to_le_bytes()).unwrap();
    for word in query.as_words() {
        stream.write_all(&word.to_le_bytes()).unwrap();
    }
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (40, code::UNKNOWN_MODEL_KEY));

    // Unknown-but-header-only frame type (a future extension frame):
    // the stream stays synchronized, so the rejection is recoverable.
    stream.write_all(&Header::new(99).encode()).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::BAD_FRAME_TYPE));

    // After all of that, a good frame still answers on this connection.
    wire::write_query(&mut stream, 1, 50, wpq, query.as_words()).unwrap();
    let (id, hits) = read_response_frame(&mut stream);
    assert_eq!(id, 50);
    let want = expected(&server, &query, 1)[0];
    assert_eq!(hits, vec![(want.row as u32, want.class as u32, want.score)]);

    drop(stream);
    wire.shutdown();
    server.shutdown();
}

#[test]
fn fatal_bad_frames_answer_a_final_error_and_close() {
    let (_sharded, server, wire, addr) = wire_fixture(441);

    // Garbage magic.
    let mut stream = raw_connect(addr);
    stream.write_all(&[0xabu8; HEADER_LEN]).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::BAD_MAGIC));
    assert_eof(&mut stream);

    // Unknown frame type declaring a payload: the stream position past
    // it cannot be trusted, so the connection dies.
    let mut stream = raw_connect(addr);
    let mut header = Header::new(99);
    header.count = 1;
    header.words_per_query = 2;
    stream.write_all(&header.encode()).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::BAD_FRAME_TYPE));
    assert_eof(&mut stream);

    // A frame declaring more queries than the server accepts: the
    // payload cannot be trusted enough to drain, so the connection dies.
    let mut stream = raw_connect(addr);
    let mut header = Header::new(FT_QUERY);
    header.k = 1;
    header.count = WireConfig::default().max_frame_queries + 1;
    header.words_per_query = (DIM / 64) as u32;
    stream.write_all(&header.encode()).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::OVERSIZED_FRAME));
    assert_eof(&mut stream);

    // The server survives all three abuses.
    let query = random_queries(1, 442).pop().unwrap();
    let mut client = WireClient::connect_tcp(addr).unwrap();
    client.send_queries(std::slice::from_ref(&query), 1).unwrap();
    let (_, hits) = client.recv_response().unwrap();
    assert_eq!(hits, expected(&server, &query, 1));

    wire.shutdown();
    server.shutdown();
}

#[test]
fn in_flight_queries_are_answered_before_a_fatal_error_closes() {
    let (_sharded, server, wire, addr) = wire_fixture(451);
    let mut stream = raw_connect(addr);
    let queries = random_queries(4, 452);
    let wpq = (DIM / 64) as u32;
    let words: Vec<u64> = queries.iter().flat_map(|q| q.as_words().to_vec()).collect();
    // One write carrying a good 4-query frame immediately followed by
    // garbage: the four answers must drain before the fatal error frame.
    let mut burst = Vec::new();
    wire::write_query(&mut burst, 1, 0, wpq, &words).unwrap();
    burst.extend_from_slice(&[0u8; HEADER_LEN]);
    stream.write_all(&burst).unwrap();
    for (i, q) in queries.iter().enumerate() {
        let (id, hits) = read_response_frame(&mut stream);
        assert_eq!(id, i as u64, "in-flight answers drain in order before the error");
        let want = expected(&server, q, 1)[0];
        assert_eq!(hits, vec![(want.row as u32, want.class as u32, want.score)]);
    }
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::BAD_MAGIC));
    assert_eof(&mut stream);
    wire.shutdown();
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_is_dropped_cleanly_and_server_keeps_serving() {
    let (_sharded, server, wire, addr) = wire_fixture(461);
    let query = random_queries(1, 462).pop().unwrap();
    let wpq = (DIM / 64) as u32;
    {
        let mut stream = raw_connect(addr);
        // A full good frame, answered...
        wire::write_query(&mut stream, 1, 0, wpq, query.as_words()).unwrap();
        let (id, _) = read_response_frame(&mut stream);
        assert_eq!(id, 0);
        // ...then a frame whose payload never finishes.
        let mut header = Header::new(FT_QUERY);
        header.k = 1;
        header.count = 2;
        header.words_per_query = wpq;
        stream.write_all(&header.encode()).unwrap();
        stream.write_all(&1u64.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 8]).unwrap(); // 1 of 4 payload words
    } // disconnect mid-frame
      // Nothing of the truncated frame was submitted; fresh connections
      // are served as if nothing happened.
    let mut client = WireClient::connect_tcp(addr).unwrap();
    client.send_queries(std::slice::from_ref(&query), 1).unwrap();
    let (_, hits) = client.recv_response().unwrap();
    assert_eq!(hits, expected(&server, &query, 1));
    wire.shutdown();
    server.shutdown();
}

/// Wraps a model with a fixed per-flush latency (chaos-test idiom) so
/// the admission gauge stays occupied long enough to overload reliably.
struct SlowModel {
    inner: Arc<dyn Searchable>,
    delay: Duration,
}

impl Searchable for SlowModel {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> hd_serve::Result<Vec<Winner>> {
        std::thread::sleep(self.delay);
        self.inner.search_winners(batch)
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> hd_serve::Result<Vec<Vec<Winner>>> {
        std::thread::sleep(self.delay);
        self.inner.search_topk(batch, k)
    }
}

#[test]
fn overload_sheds_whole_frames_with_a_typed_error_frame() {
    let slow = SlowModel { inner: sharded_fixture(471), delay: Duration::from_millis(150) };
    let server = Arc::new(
        Server::start(
            Arc::new(slow) as Arc<dyn Searchable>,
            ServeConfig { max_batch: 8, max_delay: Duration::from_millis(1), max_in_flight: 8 },
        )
        .unwrap(),
    );
    let wire = WireServer::start(Arc::clone(&server), WireConfig::default()).unwrap();
    let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
    let mut client = WireClient::connect_tcp(addr).unwrap();
    let queries = random_queries(12, 472);
    // Frame A (6 queries) occupies the gauge for the model's 150 ms;
    // frame B (6 more) exceeds max_in_flight = 8 and is shed whole.
    client.send_queries(&queries[..6], 1).unwrap();
    std::thread::sleep(Duration::from_millis(20)); // let A reach admission
    let ids_b = client.send_queries(&queries[6..], 1).unwrap();
    // FIFO: frame A's six answers first, then frame B's shed notice
    // carrying the frame's first id.
    for i in 0..6u64 {
        let (id, hits) = client.recv_response().unwrap();
        assert_eq!(id, i);
        assert_eq!(hits.len(), 1);
    }
    match client.recv().unwrap() {
        WireEvent::Error(body) => {
            assert_eq!((body.id, body.code), (ids_b.start, code::OVERLOADED));
        }
        other => panic!("expected an OVERLOADED error frame, got {other:?}"),
    }
    // The connection survives a shed: retry succeeds once capacity frees.
    let retry = client.send_queries(&queries[6..7], 1).unwrap();
    let (id, hits) = client.recv_response().unwrap();
    assert_eq!(id, retry.start);
    assert_eq!(hits.len(), 1);
    assert!(server.stats().shed >= 6, "the whole frame was shed");
    wire.shutdown();
    server.shutdown();
}

/// A wire fixture with a short idle budget, for the liveness tests.
fn idle_fixture(
    seed: u64,
    idle: Duration,
    max_conns: usize,
) -> (Arc<Server>, WireServer, SocketAddr) {
    let sharded = sharded_fixture(seed);
    let server = Arc::new(
        Server::start(
            sharded as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let config =
        WireConfig { idle_timeout: Some(idle), max_connections: max_conns, ..Default::default() };
    let wire = WireServer::start(Arc::clone(&server), config).unwrap();
    let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
    (server, wire, addr)
}

/// Polls until `cond` holds or `deadline` passes; asserts it held.
fn wait_until(deadline: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(start.elapsed() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn idle_connection_gets_ping_grace_then_is_reaped() {
    let idle = Duration::from_millis(100);
    let (server, wire, addr) = idle_fixture(481, idle, 1024);
    let mut stream = raw_connect(addr);
    assert_eq!(wire.connections(), 1);

    // Sitting idle draws a PING probe at the idle boundary; answering it
    // proves liveness and buys a full fresh budget.
    let header = wire::read_header(&mut stream).unwrap();
    assert_eq!(header.frame_type, FT_PING);
    wire::write_pong(&mut stream, header.model_key).unwrap();

    // Going silent after the next probe exhausts the grace: the server
    // answers a typed IDLE_TIMEOUT error and closes.
    let header = wire::read_header(&mut stream).unwrap();
    assert_eq!(header.frame_type, FT_PING, "a live-but-idle peer is probed again");
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::IDLE_TIMEOUT));
    assert_eof(&mut stream);
    wait_until(Duration::from_secs(5), "idle connection reaped", || wire.connections() == 0);

    wire.shutdown();
    server.shutdown();
}

#[test]
fn slow_loris_mid_header_is_reaped_without_ping_grace() {
    let idle = Duration::from_millis(100);
    let (server, wire, addr) = idle_fixture(491, idle, 1024);
    let mut stream = raw_connect(addr);

    // Five header bytes, then silence: the peer owes bytes, so no PING —
    // straight to a typed reap once the budget runs out.
    stream.write_all(&MAGIC_PREFIX[..5]).unwrap();
    let err = read_error_frame(&mut stream);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::IDLE_TIMEOUT));
    assert_eof(&mut stream);
    wait_until(Duration::from_secs(5), "stalled connection reaped", || wire.connections() == 0);

    // A byte-at-a-time dribbler is caught by the same total budget even
    // though each byte resets the per-read timeout.
    let mut stream = raw_connect(addr);
    let header = Header::new(FT_QUERY).encode();
    let start = std::time::Instant::now();
    let mut reaped_at = None;
    for (i, byte) in header.iter().enumerate().take(HEADER_LEN - 1) {
        std::thread::sleep(idle / 2);
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            reaped_at = Some(i);
            break;
        }
    }
    if reaped_at.is_none() {
        // The writes may all have landed in socket buffers before the
        // server closed; the read side still must see the typed reap.
        let err = read_error_frame(&mut stream);
        assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::IDLE_TIMEOUT));
    }
    assert!(
        start.elapsed() >= idle,
        "a dribbler must survive at least one full idle period before the reap"
    );
    wait_until(Duration::from_secs(5), "dribbling connection reaped", || wire.connections() == 0);

    wire.shutdown();
    server.shutdown();
}

const MAGIC_PREFIX: [u8; HEADER_LEN] = {
    let mut buf = [0u8; HEADER_LEN];
    let m = hd_serve::net::MAGIC.to_le_bytes();
    buf[0] = m[0];
    buf[1] = m[1];
    buf[2] = m[2];
    buf[3] = m[3];
    buf
};

#[test]
fn max_connections_gate_answers_a_typed_error_and_recovers() {
    let (server, wire, addr) = idle_fixture(501, Duration::from_secs(60), 2);
    let a = raw_connect(addr);
    let _b = raw_connect(addr);
    assert_eq!(wire.connections(), 2);

    // The third connect is rejected with a typed frame before any
    // handshake, on the accept thread.
    let mut rejected = TcpStream::connect(addr).unwrap();
    let err = read_error_frame(&mut rejected);
    assert_eq!((err.id, err.code), (CONNECTION_ERROR_ID, code::CONNECTION_LIMIT));
    assert_eof(&mut rejected);

    // Freeing a slot lets the next connect through (the gate prunes
    // finished readers on every accept).
    drop(a);
    wait_until(Duration::from_secs(5), "freed slot accepted a new connection", || {
        WireClient::connect_tcp(addr).is_ok()
    });

    wire.shutdown();
    server.shutdown();
}

#[test]
fn drain_flushes_in_flight_answers_then_says_goaway() {
    // A slow model keeps answers in flight long enough for drain to
    // overlap them deterministically.
    let slow = SlowModel { inner: sharded_fixture(511), delay: Duration::from_millis(300) };
    let server = Arc::new(
        Server::start(
            Arc::new(slow) as Arc<dyn Searchable>,
            ServeConfig { max_batch: 8, max_delay: Duration::from_millis(1), ..Default::default() },
        )
        .unwrap(),
    );
    let queries = random_queries(4, 512);
    let in_process: Vec<Vec<Prediction>> = queries
        .iter()
        .map(|q| server.submit_topk(q.as_view(), 1).unwrap().wait().unwrap())
        .collect();

    let wire = Arc::new(WireServer::start(Arc::clone(&server), WireConfig::default()).unwrap());
    let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
    let mut client = WireClient::connect_tcp(addr).unwrap();
    client.send_queries(&queries, 1).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the frame reach admission

    let drainer = {
        let wire = Arc::clone(&wire);
        std::thread::spawn(move || wire.drain(Duration::from_secs(30)))
    };
    wait_until(Duration::from_secs(5), "drain flag raised", || wire.is_draining());

    // A connect during the drain window is answered GOAWAY (nothing was
    // ever accepted on it) and closed, still on the accept thread.
    let mut late = TcpStream::connect(addr).unwrap();
    let header = wire::read_header(&mut late).unwrap();
    assert_eq!(header.frame_type, FT_GOAWAY);
    assert_eq!(header.model_key, GOAWAY_NONE);
    assert_eof(&mut late);

    // Every accepted answer flushes before the close; the GOAWAY carries
    // the last accepted id.
    let mut responses = Vec::new();
    let mut goaway = None;
    while responses.len() < queries.len() || goaway.is_none() {
        match client.recv().unwrap() {
            WireEvent::Response { id, hits } => responses.push((id, hits)),
            WireEvent::GoAway { last_accepted } => goaway = Some(last_accepted),
            other => panic!("unexpected event during drain: {other:?}"),
        }
    }
    assert_eq!(goaway, Some(3), "GOAWAY names the last accepted id");
    responses.sort_by_key(|(id, _)| *id);
    for (i, (id, hits)) in responses.iter().enumerate() {
        assert_eq!(*id, i as u64);
        assert_eq!(hits, &in_process[i], "drained answers are bit-identical");
    }
    assert!(drainer.join().unwrap(), "every accepted answer flushed before the deadline");
    assert_eq!(wire.connections(), 0);

    // Idempotent: draining an already-drained front-end is a no-op true.
    assert!(wire.drain(Duration::from_millis(1)));
    server.shutdown();
}

#[test]
fn config_rejects_zero_idle_timeout_and_max_connections() {
    let sharded = sharded_fixture(521);
    let server =
        Arc::new(Server::start(sharded as Arc<dyn Searchable>, ServeConfig::default()).unwrap());
    for config in [
        WireConfig { idle_timeout: Some(Duration::ZERO), ..Default::default() },
        WireConfig { max_connections: 0, ..Default::default() },
    ] {
        assert!(
            matches!(
                WireServer::start(Arc::clone(&server), config),
                Err(hd_serve::ServeError::InvalidConfig { .. })
            ),
            "config {config:?} must be rejected"
        );
    }
    // None disables reaping and is valid.
    let wire = WireServer::start(
        Arc::clone(&server),
        WireConfig { idle_timeout: None, ..Default::default() },
    );
    assert!(wire.is_ok());
    server.shutdown();
}
