//! Chaos-proxy end-to-end suite for the wire front-end.
//!
//! An in-process TCP proxy sits between a [`ResilientClient`] and the
//! [`WireServer`] and misbehaves on a deterministic seeded schedule:
//! connections die mid-handshake, mid-frame, and mid-response; writes
//! are chopped into hostile little chunks; payloads are truncated at
//! arbitrary byte offsets before the socket is reset. The suite proves
//! the acceptance criterion of the resilience work: under seeded proxy
//! faults plus a concurrent server drain/restart, the client completes a
//! fixed workload with **zero lost and zero duplicated answers**,
//! bit-identical to an in-process run.
//!
//! Timing-sensitive stall injection (real sleeps interacting with
//! `idle_timeout` and `request_timeout`) is gated behind
//! `HD_WIRE_CHAOS_TIMING=1` so the default suite stays deterministic on
//! a 1-vCPU CI runner.

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, QueryBatch, SearchMemory};
use hd_serve::net::{
    ResilientClient, ResilientConfig, ResilientError, Target, WireConfig, WireServer,
};
use hd_serve::{Prediction, Searchable, ServeConfig, Server, ShardedSearcher, Winner};
use rand::Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const DIM: usize = 128;
const ROWS: usize = 61;

// ---------------------------------------------------------------------
// Deterministic fault schedule
// ---------------------------------------------------------------------

/// SplitMix64 — the schedule must be reproducible from (seed, conn idx)
/// alone, with no dependence on wall-clock or thread interleaving.
fn splitmix(mut x: u64) -> impl FnMut() -> u64 {
    move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// What one proxied connection does to the bytes crossing it.
#[derive(Debug, Clone)]
struct FaultPlan {
    /// Total bytes (both directions combined) forwarded before the
    /// connection is truncated and reset. `i64::MAX` = survives.
    budget: i64,
    /// Forwarding chunk size; 1–7 bytes exercises partial writes and
    /// header/payload split points.
    chunk: usize,
    /// Optional mid-stream stall (timing-gated tests only).
    stall: Option<(u64, Duration)>,
}

impl FaultPlan {
    /// The schedule guarantees progress: every third connection is
    /// clean, so a client that retries with backoff always completes.
    /// The other two thirds die at seeded offsets — mid-handshake,
    /// mid-frame, and mid-response — or forward in hostile tiny chunks.
    fn for_conn(seed: u64, idx: u64, stalls: bool) -> FaultPlan {
        let mut rng = splitmix(seed ^ idx.wrapping_mul(0xA076_1D64_78BD_642F));
        if idx % 3 == 2 {
            return FaultPlan { budget: i64::MAX, chunk: 4096, stall: None };
        }
        if stalls && idx.is_multiple_of(3) {
            // Freeze mid-frame, past both ends' timeouts, then resume
            // into what is by then a dead connection.
            return FaultPlan {
                budget: i64::MAX,
                chunk: 4096,
                stall: Some((90, Duration::from_millis(400))),
            };
        }
        let roll = rng() % 4;
        let (budget, chunk) = match roll {
            // Dies around the handshake (HELLO + HELLO_ACK ≈ 64 bytes).
            0 => (40 + (rng() % 200) as i64, 4096),
            // Dies mid-frame early in the workload.
            1 => (300 + (rng() % 1200) as i64, 1 + (rng() % 512) as usize),
            // Dies deep in the response stream.
            2 => (1500 + (rng() % 8000) as i64, 4096),
            // Survives, but forwards byte-by-byte-ish.
            _ => (i64::MAX, 1 + (rng() % 7) as usize),
        };
        let stall = (stalls && roll == 2).then(|| (500 + rng() % 500, Duration::from_millis(400)));
        FaultPlan { budget, chunk, stall }
    }
}

// ---------------------------------------------------------------------
// The chaos proxy
// ---------------------------------------------------------------------

/// An in-process TCP proxy with a swappable upstream (so a "server
/// restart" is: drain old server, start new one, swap the address) that
/// applies a [`FaultPlan`] to every accepted connection.
struct ChaosProxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accepted: Arc<AtomicU64>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    fn start(upstream: SocketAddr, seed: u64, stalls: bool) -> ChaosProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let upstream = Arc::new(Mutex::new(upstream));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accepted = Arc::new(AtomicU64::new(0));
        let accept = {
            let upstream = Arc::clone(&upstream);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                for inbound in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let Ok(client) = inbound else { continue };
                    let idx = accepted.fetch_add(1, Ordering::Relaxed);
                    let plan = FaultPlan::for_conn(seed, idx, stalls);
                    let target = *upstream.lock().unwrap();
                    // A dead upstream (mid-restart) is itself a fault the
                    // client must absorb: hang up immediately.
                    let Ok(server) = TcpStream::connect(target) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    {
                        let mut registry = conns.lock().unwrap();
                        registry.push(client.try_clone().unwrap());
                        registry.push(server.try_clone().unwrap());
                    }
                    let budget = Arc::new(AtomicI64::new(plan.budget));
                    let (c2, s2) = (client.try_clone().unwrap(), server.try_clone().unwrap());
                    let (b1, p1) = (Arc::clone(&budget), plan.clone());
                    std::thread::spawn(move || pump(client, server, &b1, &p1));
                    std::thread::spawn(move || pump(s2, c2, &budget, &plan));
                }
            })
        };
        ChaosProxy { addr, upstream, stop, conns, accepted, accept: Some(accept) }
    }

    /// Points new connections at a different upstream (server restart).
    fn swap_upstream(&self, to: SocketAddr) {
        *self.upstream.lock().unwrap() = to;
    }

    fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr); // wake the accept loop
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One forwarding direction. The byte budget is shared with the sibling
/// pump; crossing it truncates the in-flight chunk at an arbitrary byte
/// offset and resets both sockets (a mid-frame cut, not a clean close).
fn pump(mut from: TcpStream, mut to: TcpStream, budget: &AtomicI64, plan: &FaultPlan) {
    let mut buf = vec![0u8; plan.chunk.max(1)];
    let mut forwarded = 0u64;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let before = budget.fetch_sub(n as i64, Ordering::AcqRel);
        let allowed = before.clamp(0, n as i64) as usize;
        if let Some((at, dur)) = plan.stall {
            if forwarded < at && forwarded + allowed as u64 >= at {
                std::thread::sleep(dur);
            }
        }
        if allowed > 0 && to.write_all(&buf[..allowed]).is_err() {
            break;
        }
        forwarded += allowed as u64;
        if allowed < n {
            break; // budget exhausted: truncate and reset
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

fn random_rows(rows: usize, dim: usize, seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..rows)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect()
}

fn sharded_fixture(seed: u64) -> Arc<ShardedSearcher> {
    let rows = random_rows(ROWS, DIM, seed);
    let classes: Vec<usize> = (0..rows.len()).map(|r| r % 5).collect();
    let memory = SearchMemory::from_rows(&rows).unwrap();
    Arc::new(ShardedSearcher::new(memory, classes, 4).unwrap())
}

/// Wraps a model with a fixed per-flush latency so drains and restarts
/// reliably overlap in-flight work.
struct SlowModel {
    inner: Arc<dyn Searchable>,
    delay: Duration,
}

impl Searchable for SlowModel {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> hd_serve::Result<Vec<Winner>> {
        std::thread::sleep(self.delay);
        self.inner.search_winners(batch)
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> hd_serve::Result<Vec<Vec<Winner>>> {
        std::thread::sleep(self.delay);
        self.inner.search_topk(batch, k)
    }
}

fn start_server(model: Arc<dyn Searchable>, max_delay: Duration) -> Arc<Server> {
    Arc::new(
        Server::start(model, ServeConfig { max_batch: 8, max_delay, ..Default::default() })
            .unwrap(),
    )
}

/// In-process ground truth, computed before any proxy exists.
fn ground_truth(server: &Server, queries: &[BitVector], k: usize) -> Vec<Vec<Prediction>> {
    queries.iter().map(|q| server.submit_topk(q.as_view(), k).unwrap().wait().unwrap()).collect()
}

fn chaos_client_config() -> ResilientConfig {
    ResilientConfig {
        connect_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(5),
        max_attempts: 64,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(50),
        retry_seed: 0x5EED_CAFE,
        max_batch: 7,
        allow_generation_change: false,
    }
}

// ---------------------------------------------------------------------
// The chaos e2e suite
// ---------------------------------------------------------------------

#[test]
fn seeded_proxy_faults_lose_and_duplicate_nothing() {
    let server = start_server(sharded_fixture(601), Duration::from_micros(200));
    let queries = random_rows(48, DIM, 602);
    let want = ground_truth(&server, &queries, 3);

    let wire = WireServer::start(Arc::clone(&server), WireConfig::default()).unwrap();
    let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
    let mut proxy = ChaosProxy::start(addr, 0xC0FF_EE00, false);

    let mut client =
        ResilientClient::new(Target::Tcp(proxy.addr.to_string()), chaos_client_config());
    let got = client.search(&queries, 3).unwrap();
    assert_eq!(got.len(), queries.len(), "zero lost answers");
    assert_eq!(got, want, "answers are bit-identical to the in-process run");
    assert!(
        client.reconnects() >= 2,
        "the seeded schedule must actually kill connections (saw {})",
        client.reconnects()
    );

    // A second pass over the same client (fresh ledger, surviving or
    // fresh connection) delivers the identical slate again — the reads
    // really are idempotent.
    let again = client.search(&queries, 3).unwrap();
    assert_eq!(again, want);

    proxy.stop();
    wire.shutdown();
    server.shutdown();
}

#[test]
fn drain_and_restart_under_proxy_faults_lose_and_duplicate_nothing() {
    let sharded = sharded_fixture(611);
    let slow: Arc<dyn Searchable> =
        Arc::new(SlowModel { inner: sharded, delay: Duration::from_millis(20) });
    let server = start_server(slow, Duration::from_millis(1));
    let queries = random_rows(24, DIM, 612);
    let want = ground_truth(&server, &queries, 1);

    let wire_a = Arc::new(WireServer::start(Arc::clone(&server), WireConfig::default()).unwrap());
    let addr_a = wire_a.listen_tcp("127.0.0.1:0").unwrap();
    let mut proxy = ChaosProxy::start(addr_a, 0xD1CE_0001, false);

    // Mid-workload: drain server A (flushes every accepted answer, says
    // GOAWAY), bring up server B over the same inner server, and swap
    // the proxy's upstream — a rolling restart as the client sees one.
    let restarter = {
        let wire_a = Arc::clone(&wire_a);
        let server = Arc::clone(&server);
        let upstream = ChaosSwapHandle { upstream: Arc::clone(&proxy.upstream) };
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let flushed = wire_a.drain(Duration::from_secs(20));
            let wire_b = WireServer::start(server, WireConfig::default()).unwrap();
            let addr_b = wire_b.listen_tcp("127.0.0.1:0").unwrap();
            upstream.swap(addr_b);
            (flushed, wire_b)
        })
    };

    let mut client =
        ResilientClient::new(Target::Tcp(proxy.addr.to_string()), chaos_client_config());
    let got = client.search(&queries, 1).unwrap();
    assert_eq!(got, want, "zero lost, zero duplicated, bit-identical across the restart");

    let (flushed, wire_b) = restarter.join().unwrap();
    assert!(flushed, "drain flushed every accepted in-flight answer");
    assert!(proxy.accepted() >= 2, "the restart must have forced at least one reconnect");

    proxy.stop();
    wire_b.shutdown();
    server.shutdown();
}

/// Hands the proxy's upstream slot to the restarter thread without
/// moving the proxy itself.
struct ChaosSwapHandle {
    upstream: Arc<Mutex<SocketAddr>>,
}

impl ChaosSwapHandle {
    fn swap(&self, to: SocketAddr) {
        *self.upstream.lock().unwrap() = to;
    }
}

#[test]
fn generation_change_across_restart_is_surfaced_not_mixed() {
    let model: Arc<dyn Searchable> = sharded_fixture(621);
    let server_a = start_server(Arc::clone(&model), Duration::from_micros(200));
    let generation_a = server_a.registry().snapshot().id();

    // Server B serves the same rows under a bumped generation — what a
    // redeploy with a republished model looks like.
    let server_b = start_server(Arc::clone(&model), Duration::from_micros(200));
    server_b.publish(Arc::clone(&model)).unwrap();
    let generation_b = server_b.registry().snapshot().id();
    assert_ne!(generation_a, generation_b);

    let wire_a = WireServer::start(Arc::clone(&server_a), WireConfig::default()).unwrap();
    let addr_a = wire_a.listen_tcp("127.0.0.1:0").unwrap();
    let wire_b = WireServer::start(Arc::clone(&server_b), WireConfig::default()).unwrap();
    let addr_b = wire_b.listen_tcp("127.0.0.1:0").unwrap();
    let proxy = ChaosProxy::start(addr_a, 0xFEED_0002, false);

    let queries = random_rows(16, DIM, 622);
    let strict_config = ResilientConfig { max_batch: 4, ..chaos_client_config() };
    let mut strict = ResilientClient::new(Target::Tcp(proxy.addr.to_string()), strict_config);
    let lenient_config =
        ResilientConfig { allow_generation_change: true, max_batch: 4, ..chaos_client_config() };
    let mut lenient = ResilientClient::new(Target::Tcp(proxy.addr.to_string()), lenient_config);

    // Both clients pin generation A with a completed workload.
    let first = strict.search(&queries, 1).unwrap();
    assert!(first.iter().all(|s| s.iter().all(|p| p.generation == generation_a)));
    lenient.search(&queries, 1).unwrap();
    assert_eq!(strict.generation(), Some(generation_a));
    assert_eq!(lenient.generation(), Some(generation_a));

    // Rolling restart: drain A (its connections get GOAWAY and close),
    // then point the proxy at B.
    assert!(wire_a.drain(Duration::from_secs(20)));
    proxy.swap_upstream(addr_b);

    // The strict client's reconnect lands on a different generation and
    // must refuse to mix it in silently.
    match strict.search(&queries, 1) {
        Err(ResilientError::GenerationChanged { pinned, current }) => {
            assert_eq!(pinned, generation_a);
            assert_eq!(current, generation_b);
        }
        Ok(_) => panic!("a generation change across the restart must not complete silently"),
        Err(other) => panic!("expected GenerationChanged, got {other}"),
    }

    // Opting in accepts the new generation; every delivered answer is
    // visibly stamped with it.
    let got = lenient.search(&queries, 1).unwrap();
    assert_eq!(got.len(), queries.len());
    assert!(got.iter().all(|s| s.iter().all(|p| p.generation == generation_b)));
    assert_eq!(lenient.generation(), Some(generation_b));

    wire_b.shutdown();
    server_b.shutdown();
    server_a.shutdown();
}

/// Real-sleep stall injection: the proxy freezes mid-response past the
/// client's `request_timeout` and the server's `idle_timeout`; both ends
/// abandon the stalled connection and the retry still completes the
/// workload exactly. Timing-sensitive, so gated behind
/// `HD_WIRE_CHAOS_TIMING=1` (see CI docs).
#[test]
fn stalls_trip_timeouts_and_retries_still_complete() {
    if std::env::var("HD_WIRE_CHAOS_TIMING").as_deref() != Ok("1") {
        eprintln!("skipping: set HD_WIRE_CHAOS_TIMING=1 to run stall-injection chaos");
        return;
    }
    let server = start_server(sharded_fixture(631), Duration::from_micros(200));
    let queries = random_rows(32, DIM, 632);
    let want = ground_truth(&server, &queries, 1);

    let config =
        WireConfig { idle_timeout: Some(Duration::from_millis(100)), ..Default::default() };
    let wire = WireServer::start(Arc::clone(&server), config).unwrap();
    let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
    let mut proxy = ChaosProxy::start(addr, 0x57A1_1001, true);

    let client_config =
        ResilientConfig { request_timeout: Duration::from_millis(150), ..chaos_client_config() };
    let mut client = ResilientClient::new(Target::Tcp(proxy.addr.to_string()), client_config);
    let got = client.search(&queries, 1).unwrap();
    assert_eq!(got, want, "stalled-and-retried answers stay exact");
    assert!(
        client.reconnects() >= 2,
        "the stall must actually trip the request timeout (saw {})",
        client.reconnects()
    );

    proxy.stop();
    wire.shutdown();
    server.shutdown();
}
