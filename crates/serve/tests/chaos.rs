//! Chaos harness: drives the three fault-tolerance layers together and
//! pins the serving-layer invariants under injected failure —
//!
//! * no query is ever lost or blocked forever: every submission resolves
//!   as an answer, a `Timeout`, or an `Overloaded` shed;
//! * a degraded answer is **flagged**, never silently wrong: worker
//!   death shrinks the row space and the server marks the predictions;
//! * a fault-injected model republished through the registry is fully
//!   healed by the scrubber, restoring bit-identical predictions.

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, QueryBatch, SearchMemory};
use hd_serve::{Prediction, Searchable, ServeConfig, ServeError, Server, ShardedSearcher, Winner};
use imc_sim::{
    AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy, ScrubConfig, Scrubber,
};
use rand::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn random_rows(rows: usize, dim: usize, seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..rows)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect()
}

fn random_queries(n: usize, dim: usize, seed: u64) -> Vec<BitVector> {
    random_rows(n, dim, seed)
}

/// A 4-shard worker-backed searcher plus the raw row set it serves.
fn sharded_fixture(seed: u64) -> (Arc<ShardedSearcher>, Vec<BitVector>, Vec<usize>) {
    let rows = random_rows(61, 128, seed);
    let classes: Vec<usize> = (0..rows.len()).map(|r| r % 5).collect();
    let memory = SearchMemory::from_rows(&rows).unwrap();
    let sharded = ShardedSearcher::new(memory, classes.clone(), 4).unwrap();
    assert!(sharded.has_workers() && sharded.num_shards() >= 3);
    (Arc::new(sharded), rows, classes)
}

/// Wraps a model with a fixed per-flush latency so deadline and
/// admission-control paths can be driven deterministically.
struct SlowModel {
    inner: Arc<dyn Searchable>,
    delay: Duration,
}

impl Searchable for SlowModel {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> hd_serve::Result<Vec<Winner>> {
        std::thread::sleep(self.delay);
        self.inner.search_winners(batch)
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> hd_serve::Result<Vec<Vec<Winner>>> {
        std::thread::sleep(self.delay);
        self.inner.search_topk(batch, k)
    }
}

#[test]
fn worker_panic_respawn_keeps_served_answers_exact() {
    let (sharded, rows, classes) = sharded_fixture(301);
    let memory = SearchMemory::from_rows(&rows).unwrap();
    let server = Server::start(
        Arc::clone(&sharded) as Arc<dyn Searchable>,
        ServeConfig { max_batch: 1, max_delay: Duration::from_millis(5), ..Default::default() },
    )
    .unwrap();
    let queries = random_queries(12, 128, 302);
    // One panic: absorbed by the respawn, nothing degrades.
    sharded.inject_shard_panics(1, 1).unwrap();
    for q in &queries {
        let pred = server.classify(q.as_view()).unwrap();
        let (row, score) = memory
            .winners_batch(&QueryBatch::from_vectors(std::slice::from_ref(q)).unwrap())
            .unwrap()[0];
        assert_eq!((pred.row, pred.class, pred.score), (row, classes[row], score));
        assert!(!pred.degraded, "a respawned worker serves full answers");
    }
    assert!(sharded.missing_shards().is_empty());
    assert_eq!(server.stats().degraded_queries, 0);
    server.shutdown();
}

#[test]
fn degraded_shard_answers_survivors_and_flags_predictions() {
    let (sharded, rows, classes) = sharded_fixture(311);
    let num_shards = sharded.num_shards();
    let server = Server::start(
        Arc::clone(&sharded) as Arc<dyn Searchable>,
        ServeConfig { max_batch: 1, max_delay: Duration::from_millis(5), ..Default::default() },
    )
    .unwrap();
    // Kill shard 0 past its respawn budget.
    sharded.inject_shard_panics(0, 100).unwrap();
    let memory = SearchMemory::from_rows(&rows).unwrap();
    let parts = memory.split_rows(num_shards).unwrap();
    let lost = parts[1].0; // shard 0 owns rows [0, lost)
    let survivors = SearchMemory::from_rows(&rows[lost..]).unwrap();
    let queries = random_queries(12, 128, 312);
    for q in &queries {
        let pred = server.classify(q.as_view()).unwrap();
        let (local_row, score) = survivors
            .winners_batch(&QueryBatch::from_vectors(std::slice::from_ref(q)).unwrap())
            .unwrap()[0];
        let row = lost + local_row;
        assert_eq!(
            (pred.row, pred.class, pred.score),
            (row, classes[row], score),
            "degraded answers are exact over the surviving rows"
        );
        assert!(pred.degraded, "answers over a shrunken row space must be flagged");
    }
    assert_eq!(sharded.missing_shards(), vec![0]);
    let stats = server.stats();
    assert_eq!(stats.degraded_queries, queries.len() as u64);
    server.shutdown();
}

#[test]
fn deadline_timeout_leaves_query_answered_and_server_alive() {
    let (sharded, _, _) = sharded_fixture(321);
    let slow = SlowModel { inner: sharded, delay: Duration::from_millis(80) };
    let server = Server::start(
        Arc::new(slow) as Arc<dyn Searchable>,
        ServeConfig { max_batch: 64, max_delay: Duration::from_millis(2), ..Default::default() },
    )
    .unwrap();
    let query = random_queries(1, 128, 322).pop().unwrap();
    // The deadline flusher picks the query up after ~2 ms but the model
    // needs 80 ms; a 10 ms waiter must give up with Timeout.
    let pending = server.submit_with_deadline(query.as_view(), Duration::from_millis(10)).unwrap();
    assert_eq!(pending.wait(), Err(ServeError::Timeout));
    // The query itself is not lost: the flush still answers it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().queries < 1 {
        assert!(Instant::now() < deadline, "flush never answered the timed-out query");
        std::thread::sleep(Duration::from_millis(5));
    }
    // And the server keeps serving patient submitters.
    let pred = server.classify(query.as_view()).unwrap();
    assert!(pred.score > 0 || pred.row < 61);
    server.shutdown();
}

#[test]
fn overload_sheds_at_admission_but_accepted_queries_all_resolve() {
    let (sharded, _, _) = sharded_fixture(331);
    let slow = SlowModel { inner: sharded, delay: Duration::from_millis(10) };
    let server = Server::start(
        Arc::new(slow) as Arc<dyn Searchable>,
        ServeConfig { max_batch: 4, max_delay: Duration::from_millis(1), max_in_flight: 4 },
    )
    .unwrap();
    let queries = random_queries(48, 128, 332);
    let mut answered = 0u64;
    let mut shed = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in queries.chunks(6) {
            let server = &server;
            handles.push(scope.spawn(move || {
                let mut local = (0u64, 0u64);
                for q in chunk {
                    match server.submit(q.as_view()) {
                        Ok(pending) => {
                            // Admitted queries must always resolve.
                            pending.wait().unwrap();
                            local.0 += 1;
                        }
                        Err(ServeError::Overloaded) => local.1 += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                local
            }));
        }
        for h in handles {
            let (a, s) = h.join().unwrap();
            answered += a;
            shed += s;
        }
    });
    assert_eq!(answered + shed, queries.len() as u64);
    assert!(shed > 0, "48 rushed queries against a 4-slot server must shed some");
    let stats = server.stats();
    assert_eq!(stats.queries, answered, "answered exactly the admitted queries");
    assert_eq!(stats.shed, shed);
    assert_eq!(server.in_flight(), 0, "in-flight drains back to zero");
    server.shutdown();
}

#[test]
fn scrub_and_republish_restore_bit_identical_predictions() {
    // Golden mapped AM, served directly.
    let mut rng = seeded(341);
    let centroids: Vec<(usize, BitVector)> = (0..8)
        .map(|v| (v % 3, BitVector::from_bools(&(0..256).map(|_| rng.gen()).collect::<Vec<_>>())))
        .collect();
    let am = hdc::BinaryAm::from_centroids(3, centroids).unwrap();
    let golden =
        AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Partitioned { partitions: 2 })
            .unwrap();
    let server = Server::start(
        Arc::new(golden.clone()) as Arc<dyn Searchable>,
        ServeConfig { max_batch: 1, max_delay: Duration::from_millis(5), ..Default::default() },
    )
    .unwrap();
    let queries = random_queries(10, 256, 342);
    let baseline: Vec<Prediction> =
        queries.iter().map(|q| server.classify(q.as_view()).unwrap()).collect();

    // Fault the array and hot-swap the degraded model in.
    let mut deployed = FaultyAmMapping::program(&golden, FaultModel::bit_flip(0.05), 343).unwrap();
    let corrupted = deployed.effective_flipped(&golden).unwrap();
    assert!(corrupted > 0, "5% BER must corrupt something");
    let gen_faulty = server.publish(Arc::new(deployed.clone()) as Arc<dyn Searchable>).unwrap();

    // Scrub online in bounded ticks until the pass completes, then
    // republish the healed model.
    let scrubber = Scrubber::new(&golden, ScrubConfig { cells_per_tick: 1024 }, 344).unwrap();
    let mut healed = 0;
    loop {
        let report = scrubber.tick(&mut deployed).unwrap();
        healed += report.cells_healed;
        if report.completed_pass {
            break;
        }
    }
    assert_eq!(healed, corrupted, "the scrubber heals exactly the corrupted cells");
    assert_eq!(deployed.effective_flipped(&golden).unwrap(), 0);
    let gen_healed = server.publish(Arc::new(deployed) as Arc<dyn Searchable>).unwrap();
    assert!(gen_healed > gen_faulty);

    for (q, before) in queries.iter().zip(&baseline) {
        let after = server.classify(q.as_view()).unwrap();
        assert_eq!(
            (after.row, after.class, after.score),
            (before.row, before.class, before.score),
            "healed model answers bit-identically to the golden baseline"
        );
        assert_eq!(after.generation, gen_healed);
        assert!(!after.degraded);
    }
    server.shutdown();
}

#[test]
fn combined_chaos_every_submission_resolves() {
    let (sharded, _, _) = sharded_fixture(351);
    let server = Server::start(
        Arc::clone(&sharded) as Arc<dyn Searchable>,
        ServeConfig { max_batch: 8, max_delay: Duration::from_millis(1), max_in_flight: 64 },
    )
    .unwrap();
    let queries = random_queries(40, 128, 352);
    let mut resolved = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, chunk) in queries.chunks(5).enumerate() {
            let server = &server;
            let sharded = &sharded;
            handles.push(scope.spawn(move || {
                let mut local = 0u64;
                for (i, q) in chunk.iter().enumerate() {
                    // Interleave chaos with traffic: one absorbable
                    // panic, then one shard killed for good.
                    if t == 0 && i == 1 {
                        sharded.inject_shard_panics(1, 1).unwrap();
                    }
                    if t == 3 && i == 2 {
                        sharded.inject_shard_panics(2, 100).unwrap();
                    }
                    let outcome = if i % 3 == 0 {
                        server
                            .submit_with_deadline(q.as_view(), Duration::from_millis(250))
                            .and_then(|p| p.wait())
                    } else if i % 3 == 1 {
                        server.submit_topk(q.as_view(), 3).and_then(|p| p.wait()).map(|mut v| {
                            assert!(!v.is_empty());
                            v.remove(0)
                        })
                    } else {
                        server.submit(q.as_view()).and_then(|p| p.wait())
                    };
                    match outcome {
                        Ok(_) | Err(ServeError::Timeout) | Err(ServeError::Overloaded) => {
                            local += 1;
                        }
                        Err(e) => panic!("query neither answered nor cleanly shed: {e}"),
                    }
                }
                local
            }));
        }
        for h in handles {
            resolved += h.join().unwrap();
        }
    });
    assert_eq!(resolved, queries.len() as u64, "every submission resolves — none hang or vanish");
    // The killed shard is flagged, and post-chaos traffic still answers
    // (degraded, but exact over the survivors).
    assert_eq!(sharded.missing_shards(), vec![2]);
    let pred = server.classify(queries[0].as_view()).unwrap();
    assert!(pred.degraded);
    server.shutdown();
    let stats = server.stats();
    assert!(stats.queries > 0);
    assert!(stats.degraded_queries > 0);
}
