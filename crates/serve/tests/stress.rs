//! Concurrency stress suite for the micro-batcher (the loom-style
//! guarantees, exercised with real threads):
//!
//! 1. concurrent submitters never lose a query — every submission is
//!    answered, exactly once, with the same winner the unserved model
//!    produces;
//! 2. the deadline flush always fires — partial batches that can never
//!    fill are still answered, round after round;
//! 3. a snapshot swap during flushes never mixes model generations — a
//!    response's `(generation, class)` pair is always consistent with one
//!    published model.

use hd_linalg::rng::seeded;
use hd_linalg::{BitVector, CascadePlan};
use hd_serve::{CascadeSearcher, Pending, Searchable, ServeConfig, Server, ShardedSearcher};
use hdc::BinaryAm;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn random_queries(n: usize, dim: usize, seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect()
}

fn random_am(vectors: usize, dim: usize, seed: u64) -> BinaryAm {
    let centroids =
        random_queries(vectors, dim, seed).into_iter().enumerate().map(|(v, b)| (v % 7, b));
    BinaryAm::from_centroids(7, centroids.collect()).unwrap()
}

/// Submitters on many threads, pipelining windows of single-query
/// submissions: every query is answered and matches the direct search.
/// Shared by the per-configuration stress tests below.
fn run_lost_queries_stress(shards: usize, config: ServeConfig, expect_coalesce: bool) {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 400;
    const WINDOW: usize = 50;
    let dim = 128;
    let am = Arc::new(random_am(64, dim, 1));
    let sharded = ShardedSearcher::from_am(&am, shards).unwrap();
    let server = Arc::new(Server::start(Arc::new(sharded) as Arc<dyn Searchable>, config).unwrap());
    let answered: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = Arc::clone(&server);
                let am = Arc::clone(&am);
                scope.spawn(move || {
                    let queries = random_queries(PER_THREAD, dim, 100 + t as u64);
                    let mut answered = 0usize;
                    for window in queries.chunks(WINDOW) {
                        let pendings: Vec<Pending> =
                            window.iter().map(|q| server.submit(q.as_view()).unwrap()).collect();
                        for (q, p) in window.iter().zip(pendings) {
                            let got = p.wait().unwrap();
                            let want = am.search(q).unwrap();
                            assert_eq!(
                                (got.row, got.class, got.score),
                                (want.row, want.class, want.score),
                                "thread {t} got a wrong answer"
                            );
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(answered.iter().sum::<usize>(), THREADS * PER_THREAD);
    let stats = server.stats();
    assert_eq!(stats.queries, (THREADS * PER_THREAD) as u64, "every submission was accepted");
    assert!(stats.batches > 0);
    if expect_coalesce {
        assert!(
            stats.largest_batch > 1,
            "concurrent submissions should coalesce (largest batch {})",
            stats.largest_batch
        );
    }
}

#[test]
fn concurrent_submitters_never_lose_queries() {
    run_lost_queries_stress(
        2,
        ServeConfig { max_batch: 64, max_delay: Duration::from_micros(200), ..Default::default() },
        true,
    );
}

/// With `max_batch` unreachable, ONLY the single deadline-flusher thread
/// ever answers — the flat-combining inline path never triggers, so this
/// pins the flusher's liveness under sustained multi-thread load.
#[test]
fn flusher_only_submitters_never_lose_queries() {
    run_lost_queries_stress(
        2,
        ServeConfig {
            max_batch: usize::MAX,
            max_delay: Duration::from_micros(200),
            ..Default::default()
        },
        true,
    );
}

/// Four worker-backed shards under the same load: the supervised fan-out
/// and strict merge hold up with more workers than submitter windows.
#[test]
fn multi_shard_submitters_never_lose_queries() {
    run_lost_queries_stress(
        4,
        ServeConfig { max_batch: 64, max_delay: Duration::from_micros(200), ..Default::default() },
        true,
    );
}

/// The cascade adapter under concurrent submitters: every query is
/// answered exactly once and matches the direct exact search bit for bit
/// — the cascade prunes work, never answers.
#[test]
fn cascade_served_submitters_never_lose_queries() {
    const THREADS: usize = 6;
    const PER_THREAD: usize = 300;
    const WINDOW: usize = 50;
    let dim = 256;
    let am = Arc::new(random_am(64, dim, 7));
    let plan = CascadePlan::prefix(dim, 64).unwrap();
    let sharded = ShardedSearcher::from_am_cascade(&am, 2, plan).unwrap();
    assert!(sharded.cascade_plan().is_some());
    let server = Arc::new(
        Server::start(
            Arc::new(sharded) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let answered: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = Arc::clone(&server);
                let am = Arc::clone(&am);
                scope.spawn(move || {
                    let queries = random_queries(PER_THREAD, dim, 700 + t as u64);
                    let mut answered = 0usize;
                    for window in queries.chunks(WINDOW) {
                        let pendings: Vec<Pending> =
                            window.iter().map(|q| server.submit(q.as_view()).unwrap()).collect();
                        for (q, p) in window.iter().zip(pendings) {
                            let got = p.wait().unwrap();
                            let want = am.search(q).unwrap();
                            assert_eq!(
                                (got.row, got.class, got.score),
                                (want.row, want.class, want.score),
                                "thread {t}: cascade-served answer diverged from exact"
                            );
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(answered.iter().sum::<usize>(), THREADS * PER_THREAD);
    let stats = server.stats();
    assert_eq!(stats.queries, (THREADS * PER_THREAD) as u64, "no lost queries");
}

/// Sharded top-k under concurrent mixed-k submitters: every slate
/// matches the unsharded fused sweep bit for bit — same rows, same
/// order. The catalog stores every centroid twice, in shard-distant
/// duplicate pairs, so nearly every query's k-best list crosses a shard
/// boundary on a tie and exercises the merge's global low-row order.
#[test]
fn sharded_topk_agrees_with_unsharded_under_concurrent_mixed_k() {
    const THREADS: usize = 6;
    const PER_THREAD: usize = 200;
    const WINDOW: usize = 40;
    const ROWS: usize = 60;
    let dim = 128;
    // Rows r and r + 30 are identical: with 4 shards over 60 rows the
    // pair always lands in different shards and ties on every query.
    let half = random_queries(ROWS / 2, dim, 41);
    let rows: Vec<BitVector> = half.iter().chain(half.iter()).cloned().collect();
    let classes: Vec<usize> = (0..ROWS).map(|r| r % 7).collect();
    let memory = hd_linalg::SearchMemory::from_rows(&rows).unwrap();
    let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), 4).unwrap();
    assert!(sharded.num_shards() >= 2);
    let server = Arc::new(
        Server::start(
            Arc::new(sharded) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let ks = [1usize, 3, 8, ROWS + 5];
    let answered: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let server = Arc::clone(&server);
                let memory = memory.clone();
                let classes = classes.clone();
                scope.spawn(move || {
                    let queries = random_queries(PER_THREAD, dim, 4100 + t as u64);
                    let mut answered = 0usize;
                    for window in queries.chunks(WINDOW) {
                        let pendings: Vec<_> = window
                            .iter()
                            .enumerate()
                            .map(|(i, q)| {
                                let k = ks[(t + i) % ks.len()];
                                (k, server.submit_topk(q.as_view(), k).unwrap())
                            })
                            .collect();
                        for (q, (k, p)) in window.iter().zip(pendings) {
                            let slate = p.wait().unwrap();
                            let batch =
                                hd_linalg::QueryBatch::from_vectors(std::slice::from_ref(q))
                                    .unwrap();
                            let want = memory.topk_batch(&batch, k).unwrap();
                            let got: Vec<(usize, u32)> =
                                slate.iter().map(|pr| (pr.row, pr.score)).collect();
                            assert_eq!(got, want.hits(0), "thread {t}, k {k}");
                            for pr in &slate {
                                assert_eq!(pr.class, classes[pr.row]);
                            }
                            // Shard-distant duplicates: a tied pair must
                            // order by global row index.
                            for pair in slate.windows(2) {
                                if pair[0].score == pair[1].score {
                                    assert!(pair[0].row < pair[1].row, "thread {t}, k {k}");
                                }
                            }
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(answered.iter().sum::<usize>(), THREADS * PER_THREAD);
    assert_eq!(server.stats().queries, (THREADS * PER_THREAD) as u64, "no lost queries");
}

/// With a batch size nothing ever fills, only the deadline flusher can
/// answer — it must fire every round, including immediately after a
/// previous flush.
#[test]
fn deadline_flush_always_fires() {
    let dim = 64;
    let am = Arc::new(random_am(16, dim, 2));
    let server = Server::start(
        Arc::clone(&am) as Arc<dyn Searchable>,
        ServeConfig {
            max_batch: usize::MAX,
            max_delay: Duration::from_micros(300),
            ..Default::default()
        },
    )
    .unwrap();
    let queries = random_queries(60, dim, 3);
    for (round, window) in queries.chunks(3).enumerate() {
        let pendings: Vec<Pending> =
            window.iter().map(|q| server.submit(q.as_view()).unwrap()).collect();
        for (q, p) in window.iter().zip(pendings) {
            // wait() returning at all IS the property: nothing but the
            // deadline can flush these.
            assert_eq!(p.wait().unwrap().class, am.classify(q).unwrap(), "round {round}");
        }
    }
    let stats = server.stats();
    assert_eq!(stats.full_flushes, 0);
    assert!(stats.deadline_flushes >= 20, "expected one flush per round, saw {stats:?}");
    assert_eq!(stats.queries, 60);
}

/// Hot snapshot swaps under sustained load: every response's
/// `(generation, class)` pair must match a published model — a batch that
/// mixed generations would hand some query a class from the wrong model.
/// Model generations are distinguishable by construction: generation `g`
/// labels every centroid with class `g % CLASS_MODELS`.
#[test]
fn snapshot_swap_never_mixes_generations() {
    const CLASS_MODELS: usize = 3;
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 600;
    const WINDOW: usize = 40;
    let dim = 64;
    // All models share the same rows, so scores/rows are
    // generation-independent; only the class labels identify the model.
    let rows = random_queries(32, dim, 4);
    let model_for = |class: usize| -> Arc<dyn Searchable> {
        Arc::new(
            BinaryAm::from_centroids(
                CLASS_MODELS,
                rows.iter().map(|r| (class, r.clone())).collect(),
            )
            .unwrap(),
        )
    };

    let server = Arc::new(
        Server::start(
            model_for(1 % CLASS_MODELS),
            ServeConfig {
                max_batch: 32,
                max_delay: Duration::from_micros(150),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    // generation id -> class every centroid of that generation carries.
    let published: Arc<Mutex<HashMap<u64, usize>>> =
        Arc::new(Mutex::new(HashMap::from([(1, 1 % CLASS_MODELS)])));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Publisher: swap models as fast as the lock allows.
        let publisher = {
            let server = Arc::clone(&server);
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut swaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let class = (swaps as usize + 2) % CLASS_MODELS;
                    // Record the mapping BEFORE publishing so no response
                    // can observe an unknown generation.
                    let expected_id = {
                        let mut map = published.lock().unwrap();
                        let id = map.keys().max().unwrap() + 1;
                        map.insert(id, class);
                        id
                    };
                    let id = server.publish(model_for(class)).unwrap();
                    assert_eq!(id, expected_id, "publishes are serialized by this one thread");
                    swaps += 1;
                    std::thread::yield_now();
                }
                swaps
            })
        };

        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = Arc::clone(&server);
                let published = Arc::clone(&published);
                scope.spawn(move || {
                    let queries = random_queries(PER_THREAD, dim, 200 + t as u64);
                    for window in queries.chunks(WINDOW) {
                        let pendings: Vec<Pending> =
                            window.iter().map(|q| server.submit(q.as_view()).unwrap()).collect();
                        for p in pendings {
                            let got = p.wait().unwrap();
                            let expected_class =
                                *published.lock().unwrap().get(&got.generation).unwrap_or_else(
                                    || panic!("unknown generation {}", got.generation),
                                );
                            assert_eq!(
                                got.class, expected_class,
                                "generation {} answered with another generation's class",
                                got.generation
                            );
                        }
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let swaps = publisher.join().unwrap();
        assert!(swaps > 0, "publisher never got a swap in");
    });

    let stats = server.stats();
    assert_eq!(
        stats.queries,
        (SUBMITTERS * PER_THREAD) as u64,
        "zero failed or lost queries under swap load"
    );
}

/// Shard-vs-unsharded cascade agreement under concurrent republish: the
/// publisher alternates between a sharded cascade, an unsharded cascade,
/// and the plain exact model — all over the same rows, distinguishable
/// only by class labels. Every response must (a) carry a `(generation,
/// class)` pair consistent with one published model and (b) report the
/// same winning row and score as the direct exact search, so sharded and
/// unsharded cascades demonstrably agree while generations churn.
#[test]
fn cascade_swap_agrees_with_unsharded_and_never_mixes_generations() {
    const CLASS_MODELS: usize = 3;
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 400;
    const WINDOW: usize = 40;
    let dim = 128;
    let rows = random_queries(48, dim, 8);
    let plan = CascadePlan::prefix(dim, 32).unwrap();
    let reference = random_am(48, dim, 8); // same seed => same rows
    let model_for = |class: usize, variant: usize| -> Arc<dyn Searchable> {
        let am = hdc::BinaryAm::from_centroids(
            CLASS_MODELS,
            rows.iter().map(|r| (class, r.clone())).collect(),
        )
        .unwrap();
        match variant % 3 {
            0 => Arc::new(ShardedSearcher::from_am_cascade(&am, 3, plan.clone()).unwrap()),
            1 => Arc::new(CascadeSearcher::from_am(&am, plan.clone()).unwrap()),
            _ => Arc::new(am),
        }
    };

    let server = Arc::new(
        Server::start(
            model_for(1 % CLASS_MODELS, 0),
            ServeConfig {
                max_batch: 32,
                max_delay: Duration::from_micros(150),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let published: Arc<Mutex<HashMap<u64, usize>>> =
        Arc::new(Mutex::new(HashMap::from([(1, 1 % CLASS_MODELS)])));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let publisher = {
            let server = Arc::clone(&server);
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut swaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let class = (swaps as usize + 2) % CLASS_MODELS;
                    {
                        let mut map = published.lock().unwrap();
                        let id = map.keys().max().unwrap() + 1;
                        map.insert(id, class);
                    }
                    server.publish(model_for(class, swaps as usize)).unwrap();
                    swaps += 1;
                    std::thread::yield_now();
                }
                swaps
            })
        };

        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = Arc::clone(&server);
                let published = Arc::clone(&published);
                let reference = &reference;
                scope.spawn(move || {
                    let queries = random_queries(PER_THREAD, dim, 800 + t as u64);
                    for window in queries.chunks(WINDOW) {
                        let pendings: Vec<Pending> =
                            window.iter().map(|q| server.submit(q.as_view()).unwrap()).collect();
                        for (q, p) in window.iter().zip(pendings) {
                            let got = p.wait().unwrap();
                            // (a) generation consistency.
                            let expected_class =
                                *published.lock().unwrap().get(&got.generation).unwrap_or_else(
                                    || panic!("unknown generation {}", got.generation),
                                );
                            assert_eq!(got.class, expected_class, "mixed generations");
                            // (b) winner agreement: rows are shared by
                            // every published variant, so the winning
                            // row/score must equal the exact search no
                            // matter which cascade variant answered.
                            let want = reference.search(q).unwrap();
                            assert_eq!(
                                (got.row, got.score),
                                (want.row, want.score),
                                "cascade variant diverged from the exact winner"
                            );
                        }
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let swaps = publisher.join().unwrap();
        assert!(swaps > 0, "publisher never got a swap in");
    });

    let stats = server.stats();
    assert_eq!(stats.queries, (SUBMITTERS * PER_THREAD) as u64, "no lost queries under swap load");
}
