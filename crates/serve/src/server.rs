//! The micro-batching associative-search server.
//!
//! Independent single-query submissions are coalesced into SIMD-sized
//! [`QueryBatch`]es under a latency budget and answered in one sweep —
//! the amortization that makes the batched popcount kernels engage even
//! when no caller owns a whole batch.
//!
//! # Flush discipline (flat combining)
//!
//! * **Full flush** — the submitter whose query fills the batch to
//!   [`ServeConfig::max_batch`] takes the whole pending batch out of the
//!   queue and executes it *inline* on its own thread. No hand-off, no
//!   wake-up latency: on the hot path the batcher costs one short mutex
//!   section per query plus the amortized sweep.
//! * **Deadline flush** — a background flusher thread watches the oldest
//!   pending query and flushes whatever has accumulated once it has
//!   waited [`ServeConfig::max_delay`], bounding tail latency when
//!   traffic is too thin to fill batches.
//!
//! Every flush answers its entire batch from **one** model snapshot
//! ([`crate::ModelRegistry`]), so hot swaps never mix generations within
//! a batch, and a submission is *never lost*: it is answered by a full
//! flush, a deadline flush, or the drain that runs at shutdown (after
//! which new submissions fail with [`ServeError::Shutdown`]).

use crate::error::{Result, ServeError};
use crate::registry::ModelRegistry;
use crate::searchable::Searchable;
use hd_linalg::{BitView, QueryBatch, QueryBatchBuilder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batcher tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush as soon as this many queries are pending. Batches of 32+
    /// engage the on-the-fly SIMD packing threshold in `hd_linalg`;
    /// pre-packed [`crate::ShardedSearcher`] memories amortize at any
    /// size, with diminishing returns past a few hundred.
    pub max_batch: usize,
    /// Flush the pending batch once its oldest query has waited this
    /// long — the per-query latency budget under thin traffic.
    pub max_delay: Duration,
    /// Admission limit: queries accepted but not yet answered by a
    /// flush. At the limit new submissions are shed with
    /// [`ServeError::Overloaded`] instead of queuing unboundedly behind
    /// a slow model. `0` (the default) disables shedding.
    pub max_in_flight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 256, max_delay: Duration::from_micros(200), max_in_flight: 0 }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero `max_batch` or a
    /// positive `max_in_flight` smaller than `max_batch` (every batch
    /// must be admittable in full, or full flushes could never trigger).
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig { reason: "max_batch must be positive".into() });
        }
        if self.max_in_flight != 0 && self.max_in_flight < self.max_batch {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "max_in_flight ({}) must be 0 or >= max_batch ({})",
                    self.max_in_flight, self.max_batch
                ),
            });
        }
        Ok(())
    }
}

/// The answer to one served query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Winning row in the served memory.
    pub row: usize,
    /// Class owning the winning row.
    pub class: usize,
    /// Dot-similarity score of the winning row.
    pub score: u32,
    /// Model generation that answered the query (see
    /// [`crate::ModelRegistry`]).
    pub generation: u64,
    /// Whether the answering model was serving in degraded mode (one or
    /// more shards permanently failed — see
    /// [`crate::Searchable::missing_shards`]). A degraded answer is the
    /// exact best over the *surviving* rows, flagged so callers can
    /// retry elsewhere or accept reduced coverage, never silently wrong.
    pub degraded: bool,
}

/// What one flush produced for one query: the argmax winner, or the
/// k-best slate of the whole cycle (every waiter truncates the shared
/// slate to its own `k` — top-k lists are prefix-monotone in `k`).
#[derive(Debug, Clone)]
enum Answer {
    Winner(Prediction),
    TopK(Vec<Prediction>),
}

/// Shared completion state of one batch cycle: every query queued into
/// the same flush shares this single allocation (amortizing what a
/// per-query oneshot would spend on malloc, mutex, and condvar), and the
/// answered results are published once through an [`OnceLock`] so
/// pipelined waiters read them lock-free.
struct BatchState {
    /// One entry per queued query, in submission order. Written exactly
    /// once, by the flush that answers the batch.
    results: std::sync::OnceLock<Vec<Result<Answer>>>,
    /// Whether any waiter parked on `cv` before the results landed.
    parked: Mutex<bool>,
    cv: Condvar,
}

impl BatchState {
    fn new() -> Arc<Self> {
        Arc::new(BatchState {
            results: std::sync::OnceLock::new(),
            parked: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    /// Publishes the batch's results and wakes any parked waiters.
    fn fill(&self, results: Vec<Result<Answer>>) {
        self.results.set(results).expect("each batch is flushed exactly once");
        // Synchronize with parkers: a waiter either sees the results on
        // its lock-free check, or sets `parked` under the lock and then
        // re-checks — so taking the lock here guarantees the notify
        // reaches anyone who parked before it.
        let parked = *self.parked.lock().unwrap_or_else(PoisonError::into_inner);
        if parked {
            self.cv.notify_all();
        }
    }
}

/// A submitted query's handle: redeem it with [`Pending::wait`].
///
/// Submitters that pipeline (submit a window of queries, then collect)
/// usually find the result already published by the time they wait, so
/// the handle costs no locking or parking at all on the hot path.
#[must_use = "a Pending that is never waited on discards its prediction"]
pub struct Pending {
    batch: Arc<BatchState>,
    index: usize,
    /// Absolute give-up point, set by the `_with_deadline` submission
    /// entry points; `None` waits indefinitely.
    deadline: Option<Instant>,
}

impl Pending {
    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.batch.results.get().is_some()
    }

    /// Blocks until the query is answered — or, for handles from
    /// [`Server::submit_with_deadline`], until the deadline expires.
    ///
    /// # Errors
    ///
    /// Returns whatever the flush produced: [`ServeError::Model`] for
    /// model-side failures, [`ServeError::Shutdown`] if the server shut
    /// down without answering, [`ServeError::Timeout`] when this
    /// handle's deadline expired first (the query itself is still
    /// answered server-side; only this waiter gave up).
    pub fn wait(self) -> Result<Prediction> {
        // A plain submission sharing a cycle with top-k submissions is
        // answered from the cycle's shared slate; its winner is the
        // slate's top-1 entry (identical tie-break). A foreign model
        // returning an empty slate is a typed error, never an index
        // panic in the waiter.
        wait_for(&self.batch, self.index, self.deadline).and_then(|answer| match answer {
            Answer::Winner(p) => Ok(p),
            Answer::TopK(slate) => slate.first().copied().ok_or_else(|| ServeError::Model {
                reason: "model returned an empty top-k slate".into(),
            }),
        })
    }
}

/// Blocks until `batch`'s results land, then clones entry `index`. With
/// a deadline, gives up with [`ServeError::Timeout`] once it passes —
/// the batch state stays alive (the flush still fills it), only this
/// waiter stops waiting.
fn wait_for(batch: &BatchState, index: usize, deadline: Option<Instant>) -> Result<Answer> {
    if let Some(results) = batch.results.get() {
        return results[index].clone();
    }
    let mut parked = batch.parked.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        // Re-check under the lock: fill() takes it after publishing,
        // so a result published before we parked is visible here.
        if let Some(results) = batch.results.get() {
            return results[index].clone();
        }
        *parked = true;
        match deadline {
            None => parked = batch.cv.wait(parked).unwrap_or_else(PoisonError::into_inner),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return Err(ServeError::Timeout);
                }
                parked = batch
                    .cv
                    .wait_timeout(parked, d - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
    }
}

/// A submitted top-k query's handle: redeem it with
/// [`PendingTopK::wait`].
#[must_use = "a PendingTopK that is never waited on discards its predictions"]
pub struct PendingTopK {
    batch: Arc<BatchState>,
    index: usize,
    /// The k this submission asked for; the flush answers the whole
    /// cycle at the largest pending k and the wait truncates back.
    k: usize,
    /// Absolute give-up point; `None` waits indefinitely.
    deadline: Option<Instant>,
}

impl PendingTopK {
    /// Whether the result is already available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.batch.results.get().is_some()
    }

    /// Blocks until the query is answered, returning its `min(k, rows)`
    /// best rows sorted by score descending then row ascending.
    ///
    /// # Errors
    ///
    /// As [`Pending::wait`], including [`ServeError::Timeout`] for
    /// deadline submissions.
    pub fn wait(self) -> Result<Vec<Prediction>> {
        wait_for(&self.batch, self.index, self.deadline).map(|answer| match answer {
            // A k == 1 submission can land in a winners-only cycle.
            Answer::Winner(p) => vec![p],
            Answer::TopK(mut slate) => {
                slate.truncate(self.k);
                slate
            }
        })
    }
}

/// Point-in-time serving counters (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Queries answered by flushes (accepted queries still pending in the
    /// current batch cycle are not counted yet).
    pub queries: u64,
    /// Batches flushed (full + deadline + shutdown drain).
    pub batches: u64,
    /// Flushes triggered by a full batch.
    pub full_flushes: u64,
    /// Flushes triggered by the latency deadline (or shutdown drain).
    pub deadline_flushes: u64,
    /// Largest batch flushed so far.
    pub largest_batch: u64,
    /// Queries shed at admission because the server was at
    /// [`ServeConfig::max_in_flight`].
    pub shed: u64,
    /// Queries answered while the model reported missing shards (their
    /// predictions carry [`Prediction::degraded`]).
    pub degraded_queries: u64,
}

#[derive(Default)]
struct StatCounters {
    queries: AtomicU64,
    batches: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    largest_batch: AtomicU64,
    shed: AtomicU64,
    degraded_queries: AtomicU64,
}

struct Queue {
    builder: QueryBatchBuilder,
    /// Completion state shared by every query of the current cycle.
    state: Arc<BatchState>,
    /// Largest k requested by the cycle's pending queries (1 = winners
    /// only). The flush answers everyone at this k.
    max_k: usize,
    /// When the oldest pending query arrived; `None` while empty.
    opened_at: Option<Instant>,
    shutdown: bool,
}

impl Queue {
    /// Moves the pending batch out (caller flushes it outside the lock)
    /// and opens a fresh cycle.
    fn take_work(&mut self) -> (QueryBatch, Arc<BatchState>, usize) {
        let batch = self.builder.take_batch().expect("take_work on a non-empty queue");
        self.opened_at = None;
        let max_k = std::mem::replace(&mut self.max_k, 1);
        (batch, std::mem::replace(&mut self.state, BatchState::new()), max_k)
    }
}

enum FlushKind {
    Full,
    Deadline,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Wakes the deadline flusher when the queue goes non-empty or the
    /// server shuts down.
    deadline_cv: Condvar,
    /// Whether the flusher is deep-parked (indefinite wait). Submitters
    /// only pay the condvar notify when this is set; while traffic keeps
    /// batches full the flusher *lingers* on timed waits instead, so the
    /// hot path never wakes it. Written only under the queue lock.
    flusher_parked: AtomicBool,
    registry: ModelRegistry,
    config: ServeConfig,
    stats: StatCounters,
    /// Queries accepted but not yet answered by a flush — the admission
    /// gauge [`ServeConfig::max_in_flight`] sheds against. Incremented
    /// under the queue lock at admission; decremented after each flush
    /// publishes its results. Only maintained while admission control is
    /// on (`max_in_flight != 0`): with it off the counter steers nothing,
    /// and the per-query atomic increment sits inside the contended queue
    /// critical section — measurable on the serve-throughput benches.
    in_flight: AtomicU64,
}

impl Shared {
    fn flush(&self, batch: QueryBatch, state: Arc<BatchState>, max_k: usize, kind: FlushKind) {
        let snapshot = self.registry.snapshot();
        let queries = batch.len();
        self.stats.queries.fetch_add(queries as u64, Ordering::Relaxed);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.largest_batch.fetch_max(queries as u64, Ordering::Relaxed);
        match kind {
            FlushKind::Full => self.stats.full_flushes.fetch_add(1, Ordering::Relaxed),
            FlushKind::Deadline => self.stats.deadline_flushes.fetch_add(1, Ordering::Relaxed),
        };
        let generation = snapshot.id();
        let predict = move |w: &crate::searchable::Winner| Prediction {
            row: w.row,
            class: w.class,
            score: w.score,
            generation,
            // Filled in after the sweep from the post-search shard
            // health sample (see below).
            degraded: false,
        };
        // A panicking model must not unwind past the batch state: the
        // batch was already taken out of the queue, so an unfilled state
        // would strand its waiters forever — and a panic on the flusher
        // thread would additionally kill deadline flushing and the
        // shutdown drain. Contain it and answer the batch with an error.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let batch = Arc::new(batch);
            if max_k == 1 {
                snapshot.model().search_winners(batch).map(|winners| {
                    winners.iter().map(|w| Answer::Winner(predict(w))).collect::<Vec<_>>()
                })
            } else {
                snapshot.model().search_topk(batch, max_k).map(|slates| {
                    slates
                        .into_iter()
                        .map(|slate| Answer::TopK(slate.iter().map(&predict).collect()))
                        .collect::<Vec<_>>()
                })
            }
        }))
        .unwrap_or_else(|payload| {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(ServeError::Model { reason: format!("model panicked during flush: {what}") })
        });
        let results: Vec<Result<Answer>> = match result {
            Ok(answers) if answers.len() == queries => {
                // Sample shard health *after* the sweep: degradation is
                // monotone within a generation, so a shard that died
                // mid-search (making this sweep answer from the
                // surviving rows only) is visible here. The converse
                // race — a shard dying right after a complete sweep —
                // only over-flags, never under-flags.
                let mut answers = answers;
                if !snapshot.model().missing_shards().is_empty() {
                    self.stats.degraded_queries.fetch_add(queries as u64, Ordering::Relaxed);
                    for answer in &mut answers {
                        match answer {
                            Answer::Winner(p) => p.degraded = true,
                            Answer::TopK(slate) => {
                                slate.iter_mut().for_each(|p| p.degraded = true);
                            }
                        }
                    }
                }
                answers.into_iter().map(Ok).collect()
            }
            Ok(answers) => {
                let err = ServeError::Model {
                    reason: format!(
                        "model returned {} answers for {queries} queries",
                        answers.len()
                    ),
                };
                vec![Err(err); queries]
            }
            Err(e) => vec![Err(e); queries],
        };
        state.fill(results);
        // Release the admission slots only after the results are
        // published: a freed slot means a new submission can take the
        // answered query's place in the next cycle.
        if self.config.max_in_flight != 0 {
            self.in_flight.fetch_sub(queries as u64, Ordering::Relaxed);
        }
    }
}

/// The sharded micro-batching associative-search server.
///
/// # Example
///
/// ```
/// use hd_linalg::BitVector;
/// use hd_serve::{ServeConfig, Server};
/// use hdc::BinaryAm;
/// use std::sync::Arc;
///
/// let am = BinaryAm::from_centroids(2, vec![
///     (0, BitVector::from_bools(&[true, true, false, false])),
///     (1, BitVector::from_bools(&[false, false, true, true])),
/// ]).unwrap();
/// let server = Server::start(Arc::new(am), ServeConfig {
///     max_batch: 8,
///     max_delay: std::time::Duration::from_micros(50),
///     ..Default::default()
/// }).unwrap();
/// let query = BitVector::from_bools(&[true, true, true, false]);
/// let prediction = server.classify(query.as_view()).unwrap();
/// assert_eq!(prediction.class, 0);
/// assert_eq!(prediction.generation, 1);
/// ```
pub struct Server {
    shared: Arc<Shared>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("dim", &self.dim())
            .field("config", &self.shared.config)
            .field("generation", &self.generation())
            .finish()
    }
}

impl Server {
    /// Starts a server over `model` (generation 1) and spawns the
    /// deadline flusher.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid `config` or
    /// if the flusher thread cannot be spawned.
    pub fn start(model: Arc<dyn Searchable>, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let dim = model.dim();
        // Pre-size for the configured batch, but don't let a huge
        // (deadline-only) max_batch pre-reserve unbounded memory.
        let reserve = config.max_batch.min(4096);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                builder: QueryBatchBuilder::with_capacity(dim, reserve),
                state: BatchState::new(),
                max_k: 1,
                opened_at: None,
                shutdown: false,
            }),
            deadline_cv: Condvar::new(),
            flusher_parked: AtomicBool::new(false),
            registry: ModelRegistry::new(model),
            config,
            stats: StatCounters::default(),
            in_flight: AtomicU64::new(0),
        });
        let flusher_shared = Arc::clone(&shared);
        let flusher = std::thread::Builder::new()
            .name("hd-serve-flusher".into())
            .spawn(move || run_flusher(&flusher_shared))
            .map_err(|e| ServeError::InvalidConfig {
                reason: format!("failed to spawn flusher: {e}"),
            })?;
        Ok(Server { shared, flusher: Mutex::new(Some(flusher)) })
    }

    /// Dimensionality queries must match.
    pub fn dim(&self) -> usize {
        self.shared.registry.dim()
    }

    /// The registry's current model generation.
    pub fn generation(&self) -> u64 {
        self.shared.registry.generation()
    }

    /// The model registry (for snapshots and direct inspection).
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// Atomically swaps in a new model generation; in-flight batches
    /// finish on their old snapshot. See [`ModelRegistry::publish`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DimensionMismatch`] if the new model's
    /// dimensionality differs.
    pub fn publish(&self, model: Arc<dyn Searchable>) -> Result<u64> {
        self.shared.registry.publish(model)
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        ServerStats {
            queries: s.queries.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            full_flushes: s.full_flushes.load(Ordering::Relaxed),
            deadline_flushes: s.deadline_flushes.load(Ordering::Relaxed),
            largest_batch: s.largest_batch.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            degraded_queries: s.degraded_queries.load(Ordering::Relaxed),
        }
    }

    /// Queries accepted but not yet answered by a flush (the gauge
    /// [`ServeConfig::max_in_flight`] sheds against). Always 0 when
    /// admission control is off (`max_in_flight == 0`): the gauge is
    /// only maintained while something sheds against it.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Submits one query, returning a [`Pending`] handle. If this query
    /// fills the batch, the submitting thread flushes it inline before
    /// returning (flat combining); otherwise the deadline flusher will.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DimensionMismatch`] for a wrong-width query
    /// and [`ServeError::Shutdown`] after shutdown.
    pub fn submit(&self, query: BitView<'_>) -> Result<Pending> {
        self.submit_inner(query, None)
    }

    /// As [`Server::submit`], but the returned handle's
    /// [`Pending::wait`] gives up with [`ServeError::Timeout`] once
    /// `timeout` has elapsed (measured from submission). The query is
    /// still flushed and answered server-side — a timed-out waiter never
    /// strands or corrupts its batch — so use this to bound caller
    /// latency against slow models, not to cancel work.
    ///
    /// # Errors
    ///
    /// As [`Server::submit`].
    pub fn submit_with_deadline(&self, query: BitView<'_>, timeout: Duration) -> Result<Pending> {
        self.submit_inner(query, Some(Instant::now() + timeout))
    }

    fn submit_inner(&self, query: BitView<'_>, deadline: Option<Instant>) -> Result<Pending> {
        let (index, state, work) = self.enqueue(query, 1)?;
        let pending = Pending { batch: state, index, deadline };
        if let Some((batch, state, max_k)) = work {
            self.shared.flush(batch, state, max_k, FlushKind::Full);
        }
        Ok(pending)
    }

    /// Submits one top-k query, returning a [`PendingTopK`] handle whose
    /// [`PendingTopK::wait`] yields the query's `min(k, rows)` best rows
    /// (score descending, then row ascending). Top-k submissions share
    /// batch cycles with plain [`Server::submit`] traffic: the flush
    /// answers the whole cycle at the largest pending k in one fused
    /// sweep, and every handle truncates back to its own k.
    ///
    /// # Errors
    ///
    /// As [`Server::submit`], plus [`ServeError::InvalidConfig`] when
    /// `k == 0`.
    pub fn submit_topk(&self, query: BitView<'_>, k: usize) -> Result<PendingTopK> {
        self.submit_topk_inner(query, k, None)
    }

    /// As [`Server::submit_topk`] with a [`Pending::wait`]-side deadline
    /// (see [`Server::submit_with_deadline`] for the semantics).
    ///
    /// # Errors
    ///
    /// As [`Server::submit_topk`].
    pub fn submit_topk_with_deadline(
        &self,
        query: BitView<'_>,
        k: usize,
        timeout: Duration,
    ) -> Result<PendingTopK> {
        self.submit_topk_inner(query, k, Some(Instant::now() + timeout))
    }

    fn submit_topk_inner(
        &self,
        query: BitView<'_>,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<PendingTopK> {
        crate::searchable::check_topk(k)?;
        let (index, state, work) = self.enqueue(query, k)?;
        let pending = PendingTopK { batch: state, index, k, deadline };
        if let Some((batch, state, max_k)) = work {
            self.shared.flush(batch, state, max_k, FlushKind::Full);
        }
        Ok(pending)
    }

    /// Submits a whole frame of already-packed queries in one queue
    /// transaction — the wire front-end's ingest path (see
    /// [`crate::net`]). `words` must hold one or more
    /// `dim().div_ceil(64)`-word rows laid out exactly as a
    /// [`QueryBatch`] stores them; they land in the pending batch via
    /// [`QueryBatchBuilder::push_packed_words`] as one word copy, with
    /// no per-bit repacking and a single lock acquisition for the whole
    /// frame. The frame is admitted or shed atomically against
    /// [`ServeConfig::max_in_flight`], and every query is answered at
    /// `k` (`k == 1` yields one-entry slates; handles truncate like
    /// [`Server::submit_topk`]). A frame that fills the batch is flushed
    /// inline by the submitting thread, exactly like [`Server::submit`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::MalformedPayload`] when `words` does not
    /// form whole queries, [`ServeError::InvalidConfig`] when `k == 0`,
    /// [`ServeError::Overloaded`] when admitting the frame would exceed
    /// the in-flight limit (nothing is enqueued), and
    /// [`ServeError::Shutdown`] after shutdown.
    pub fn submit_packed(&self, words: &[u64], k: usize) -> Result<Vec<PendingTopK>> {
        crate::searchable::check_topk(k)?;
        let (start, count, state, work) = self.enqueue_packed(words, k)?;
        let pendings = (start..start + count)
            .map(|index| PendingTopK { batch: Arc::clone(&state), index, k, deadline: None })
            .collect();
        if let Some((batch, state, max_k)) = work {
            self.shared.flush(batch, state, max_k, FlushKind::Full);
        }
        Ok(pendings)
    }

    /// Queues a frame of packed queries under one lock acquisition,
    /// returning the first query's index in the cycle, the frame's query
    /// count, the cycle's completion state, and — when the frame filled
    /// the batch — the work the caller must flush inline.
    #[allow(clippy::type_complexity)]
    fn enqueue_packed(
        &self,
        words: &[u64],
        k: usize,
    ) -> Result<(usize, usize, Arc<BatchState>, Option<(QueryBatch, Arc<BatchState>, usize)>)> {
        let words_per_query = self.dim().div_ceil(64);
        if words.is_empty() || !words.len().is_multiple_of(words_per_query) {
            return Err(ServeError::MalformedPayload {
                reason: format!(
                    "payload of {} words is not a positive multiple of the {words_per_query}-word \
                     query width (D = {})",
                    words.len(),
                    self.dim()
                ),
            });
        }
        let count = words.len() / words_per_query;
        let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.shutdown {
            return Err(ServeError::Shutdown);
        }
        let limit = self.shared.config.max_in_flight;
        if limit != 0 {
            if self.shared.in_flight.load(Ordering::Relaxed) + count as u64 > limit as u64 {
                self.shared.stats.shed.fetch_add(count as u64, Ordering::Relaxed);
                return Err(ServeError::Overloaded);
            }
            // Matches the single-query rule (`in_flight + 1 > limit`
            // sheds): a frame is admitted only whole, so the gauge never
            // exceeds the limit.
            self.shared.in_flight.fetch_add(count as u64, Ordering::Relaxed);
        }
        let start = q.builder.len();
        if let Err(e) = q.builder.push_packed_words(words) {
            // Shape was validated above, so this is unreachable — but a
            // client-fed path never panics on principle. Undo the
            // admission reservation before surfacing the typed error.
            if limit != 0 {
                self.shared.in_flight.fetch_sub(count as u64, Ordering::Relaxed);
            }
            return Err(ServeError::MalformedPayload { reason: e.to_string() });
        }
        q.max_k = q.max_k.max(k);
        if start == 0 {
            q.opened_at = Some(Instant::now());
            if self.shared.flusher_parked.load(Ordering::Relaxed) {
                self.shared.deadline_cv.notify_one();
            }
        }
        let state = Arc::clone(&q.state);
        let work = (q.builder.len() >= self.shared.config.max_batch).then(|| q.take_work());
        Ok((start, count, state, work))
    }

    /// Queues one query with its requested k, returning its index in the
    /// cycle, the cycle's completion state, and — when this query filled
    /// the batch — the work the caller must flush inline.
    #[allow(clippy::type_complexity)]
    fn enqueue(
        &self,
        query: BitView<'_>,
        k: usize,
    ) -> Result<(usize, Arc<BatchState>, Option<(QueryBatch, Arc<BatchState>, usize)>)> {
        if query.len() != self.dim() {
            return Err(ServeError::DimensionMismatch { expected: self.dim(), found: query.len() });
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.shutdown {
            return Err(ServeError::Shutdown);
        }
        let limit = self.shared.config.max_in_flight;
        if limit != 0 {
            if self.shared.in_flight.load(Ordering::Relaxed) >= limit as u64 {
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded);
            }
            // Under the queue lock, so admission never over-admits a
            // cycle (flushes decrement outside the lock, which can only
            // free slots late — shedding slightly conservatively, never
            // unboundedly).
            self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        }
        q.builder.push(query).expect("dimension checked above");
        q.max_k = q.max_k.max(k);
        let index = q.builder.len() - 1;
        if index == 0 {
            q.opened_at = Some(Instant::now());
            // Only a deep-parked flusher needs a wake-up; a lingering
            // one will notice the queue on its next timed check.
            if self.shared.flusher_parked.load(Ordering::Relaxed) {
                self.shared.deadline_cv.notify_one();
            }
        }
        let state = Arc::clone(&q.state);
        let work = (q.builder.len() >= self.shared.config.max_batch).then(|| q.take_work());
        Ok((index, state, work))
    }

    /// Submit-and-wait convenience: the single-call blocking entry point.
    /// Under thin traffic this waits up to [`ServeConfig::max_delay`] for
    /// the deadline flush — that is the latency budget buying batch
    /// amortization; latency-critical single callers should lower it (or
    /// pipeline via [`Server::submit`]).
    ///
    /// # Errors
    ///
    /// As [`Server::submit`] and [`Pending::wait`].
    pub fn classify(&self, query: BitView<'_>) -> Result<Prediction> {
        self.submit(query)?.wait()
    }

    /// Submit-and-wait with a latency bound: gives up with
    /// [`ServeError::Timeout`] once `timeout` elapses. The query is
    /// still answered server-side (counted in [`Server::stats`]); only
    /// this caller stops waiting.
    ///
    /// # Errors
    ///
    /// As [`Server::submit_with_deadline`] and [`Pending::wait`].
    pub fn classify_with_deadline(
        &self,
        query: BitView<'_>,
        timeout: Duration,
    ) -> Result<Prediction> {
        self.submit_with_deadline(query, timeout)?.wait()
    }

    /// Submit-and-wait for a top-k query: the single-call blocking entry
    /// point of [`Server::submit_topk`], with the same latency budget as
    /// [`Server::classify`].
    ///
    /// # Errors
    ///
    /// As [`Server::submit_topk`] and [`PendingTopK::wait`].
    pub fn classify_topk(&self, query: BitView<'_>, k: usize) -> Result<Vec<Prediction>> {
        self.submit_topk(query, k)?.wait()
    }

    /// Shuts the server down: pending queries are drained and answered,
    /// subsequent submissions fail with [`ServeError::Shutdown`].
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if q.shutdown {
                return;
            }
            q.shutdown = true;
        }
        self.shared.deadline_cv.notify_all();
        let handle = self.flusher.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Empty timed checks the flusher makes before deep-parking. While full
/// flushes keep traffic flowing, the queue looks empty at every check and
/// the flusher stays in this cheap linger loop — submitters never pay a
/// condvar notify.
const LINGER_TICKS: u32 = 32;

/// Deadline-flusher loop: tracks the oldest pending query and flushes
/// once it has waited `max_delay`. While traffic flows it lingers on
/// timed waits (see [`LINGER_TICKS`]); after enough consecutive empty
/// checks it deep-parks until a submitter notifies it, so an idle server
/// costs no wake-ups at all. A query that arrives during a linger sleep
/// is flushed within `2 × max_delay` in the worst case. On shutdown the
/// loop drains whatever is still queued (no query is lost) and exits.
fn run_flusher(shared: &Shared) {
    let max_delay = shared.config.max_delay;
    let mut empty_checks = 0u32;
    let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if q.shutdown {
            if !q.builder.is_empty() {
                let (batch, state, max_k) = q.take_work();
                drop(q);
                shared.flush(batch, state, max_k, FlushKind::Deadline);
            }
            return;
        }
        match q.opened_at {
            None if empty_checks >= LINGER_TICKS => {
                // Written under the queue lock; a submitter that misses
                // the flag (checks before we set it) has not pushed yet
                // and its push happens after we release the lock in
                // wait(), so no wake-up is ever lost.
                shared.flusher_parked.store(true, Ordering::Relaxed);
                q = shared.deadline_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                shared.flusher_parked.store(false, Ordering::Relaxed);
                empty_checks = 0;
            }
            None => {
                empty_checks += 1;
                q = shared
                    .deadline_cv
                    .wait_timeout(q, max_delay)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            Some(opened) => {
                empty_checks = 0;
                let elapsed = opened.elapsed();
                if elapsed >= max_delay {
                    let (batch, state, max_k) = q.take_work();
                    drop(q);
                    shared.flush(batch, state, max_k, FlushKind::Deadline);
                    q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
                } else {
                    q = shared
                        .deadline_cv
                        .wait_timeout(q, max_delay - elapsed)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::seeded;
    use hd_linalg::{BitVector, SearchMemory};
    use rand::Rng;

    fn random_am(vectors: usize, dim: usize, seed: u64) -> Arc<hdc::BinaryAm> {
        let mut rng = seeded(seed);
        let centroids: Vec<(usize, BitVector)> = (0..vectors)
            .map(|v| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                (v % 5, BitVector::from_bools(&bits))
            })
            .collect();
        Arc::new(hdc::BinaryAm::from_centroids(5, centroids).unwrap())
    }

    fn random_queries(n: usize, dim: usize, seed: u64) -> Vec<BitVector> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn served_predictions_match_direct_search() {
        let am = random_am(40, 128, 1);
        let server = Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 16,
                max_delay: Duration::from_micros(100),
                ..Default::default()
            },
        )
        .unwrap();
        let queries = random_queries(50, 128, 2);
        let pendings: Vec<Pending> =
            queries.iter().map(|q| server.submit(q.as_view()).unwrap()).collect();
        for (q, p) in queries.iter().zip(pendings) {
            let got = p.wait().unwrap();
            let want = am.search(q).unwrap();
            assert_eq!((got.row, got.class, got.score), (want.row, want.class, want.score));
            assert_eq!(got.generation, 1);
        }
        let stats = server.stats();
        assert_eq!(stats.queries, 50);
        // 50 queries at max_batch 16: up to three full flushes plus a
        // deadline flush for the remainder. Exact counts depend on
        // scheduling (a preempted submitter lets the deadline flusher
        // steal a partial batch), so assert bounds, not equality.
        assert!(stats.full_flushes <= 3, "{stats:?}");
        assert!(stats.deadline_flushes >= 1, "{stats:?}");
        assert!(stats.largest_batch <= 16, "{stats:?}");
        assert!(stats.batches >= 4, "{stats:?}");
    }

    #[test]
    fn mixed_k_submissions_share_one_cycle_and_truncate_back() {
        let am = random_am(40, 128, 11);
        let server = Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(2),
                ..Default::default()
            },
        )
        .unwrap();
        let queries = random_queries(12, 128, 12);
        // One pipelined window mixing plain argmax submissions with
        // top-k asks of different depths (including k > rows, which
        // clamps): the flush answers the cycle at the largest pending k
        // and every handle truncates back to its own.
        let ks = [1usize, 3, 7, 45];
        let mut plain = Vec::new();
        let mut ranked = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            if i % 2 == 0 {
                plain.push((i, server.submit(q.as_view()).unwrap()));
            } else {
                let k = ks[(i / 2) % ks.len()];
                ranked.push((i, k, server.submit_topk(q.as_view(), k).unwrap()));
            }
        }
        let batch = hd_linalg::QueryBatch::from_vectors(&queries).unwrap();
        let reference = am.search_topk(&batch, 45).unwrap();
        for (i, p) in plain {
            let got = p.wait().unwrap();
            let want = &reference[i][0];
            assert_eq!((got.row, got.class, got.score), (want.row, want.class, want.score));
        }
        for (i, k, p) in ranked {
            let slate = p.wait().unwrap();
            assert_eq!(slate.len(), k.min(am.num_centroids()), "query {i} k {k}");
            for (got, want) in slate.iter().zip(&reference[i]) {
                assert_eq!(
                    (got.row, got.class, got.score),
                    (want.row, want.class, want.score),
                    "query {i} k {k}"
                );
                assert_eq!(got.generation, 1);
            }
        }
        assert!(server.submit_topk(queries[0].as_view(), 0).is_err());
        // The blocking convenience returns the same slate.
        let slate = server.classify_topk(queries[0].as_view(), 3).unwrap();
        let want: Vec<(usize, usize, u32)> =
            reference[0][..3].iter().map(|h| (h.row, h.class, h.score)).collect();
        let got: Vec<(usize, usize, u32)> =
            slate.iter().map(|p| (p.row, p.class, p.score)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn deadline_flush_answers_partial_batches() {
        let am = random_am(16, 64, 3);
        let server = Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 1024,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        )
        .unwrap();
        let q = random_queries(1, 64, 4).remove(0);
        // A single query can never fill the batch; only the deadline can
        // answer it.
        let got = server.classify(q.as_view()).unwrap();
        assert_eq!(got.class, am.classify(&q).unwrap());
        assert_eq!(server.stats().deadline_flushes, 1);
        assert_eq!(server.stats().full_flushes, 0);
    }

    #[test]
    fn publish_swaps_generation_for_later_flushes() {
        let dim = 64;
        let am_a = random_am(24, dim, 5);
        let am_b = random_am(24, dim, 6);
        let server = Server::start(
            Arc::clone(&am_a) as Arc<dyn Searchable>,
            ServeConfig { max_batch: 4, max_delay: Duration::from_millis(5), ..Default::default() },
        )
        .unwrap();
        let q = random_queries(1, dim, 7).remove(0);
        let before = server.classify(q.as_view()).unwrap();
        assert_eq!(before.generation, 1);
        assert_eq!(server.publish(Arc::clone(&am_b) as Arc<dyn Searchable>).unwrap(), 2);
        let after = server.classify(q.as_view()).unwrap();
        assert_eq!(after.generation, 2);
        let want = am_b.search(&q).unwrap();
        assert_eq!((after.row, after.score), (want.row, want.score));
    }

    #[test]
    fn rejects_bad_dimensions_and_post_shutdown_submissions() {
        let am = random_am(8, 64, 8);
        let server =
            Server::start(Arc::clone(&am) as Arc<dyn Searchable>, ServeConfig::default()).unwrap();
        assert!(matches!(
            server.submit(BitVector::zeros(65).as_view()),
            Err(ServeError::DimensionMismatch { expected: 64, found: 65 })
        ));
        server.shutdown();
        assert!(matches!(server.submit(BitVector::zeros(64).as_view()), Err(ServeError::Shutdown)));
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let am = random_am(8, 64, 9);
        let server = Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            // Deadline far away: only the shutdown drain can answer.
            ServeConfig {
                max_batch: 1024,
                max_delay: Duration::from_secs(600),
                ..Default::default()
            },
        )
        .unwrap();
        let queries = random_queries(5, 64, 10);
        let pendings: Vec<Pending> =
            queries.iter().map(|q| server.submit(q.as_view()).unwrap()).collect();
        server.shutdown();
        for (q, p) in queries.iter().zip(pendings) {
            assert_eq!(p.wait().unwrap().class, am.classify(q).unwrap());
        }
    }

    #[test]
    fn panicking_model_answers_with_error_and_keeps_flusher_alive() {
        struct PanickyModel;
        impl crate::Searchable for PanickyModel {
            fn dim(&self) -> usize {
                64
            }
            fn rows(&self) -> usize {
                1
            }
            fn search_winners(
                &self,
                _batch: Arc<hd_linalg::QueryBatch>,
            ) -> Result<Vec<crate::Winner>> {
                panic!("synthetic model failure");
            }
        }
        let server = Server::start(
            Arc::new(PanickyModel),
            // Large max_batch: both flushes go through the deadline
            // flusher, so a contained panic is also proven not to kill
            // that thread.
            ServeConfig {
                max_batch: 1024,
                max_delay: Duration::from_micros(200),
                ..Default::default()
            },
        )
        .unwrap();
        let q = random_queries(1, 64, 20).remove(0);
        match server.classify(q.as_view()) {
            Err(ServeError::Model { reason }) => {
                assert!(reason.contains("panicked"), "unexpected reason: {reason}")
            }
            other => panic!("expected a Model error, got {other:?}"),
        }
        // The flusher survived: after swapping in a healthy model, the
        // deadline path answers normally.
        let am = random_am(8, 64, 21);
        server.publish(Arc::clone(&am) as Arc<dyn Searchable>).unwrap();
        assert_eq!(server.classify(q.as_view()).unwrap().class, am.classify(&q).unwrap());
    }

    #[test]
    fn zero_max_batch_rejected() {
        let am = random_am(8, 64, 11);
        assert!(Server::start(
            am as Arc<dyn Searchable>,
            ServeConfig { max_batch: 0, max_delay: Duration::from_micros(1), ..Default::default() }
        )
        .is_err());
    }

    /// Regression: a foreign model returning empty top-k slates used to
    /// panic a plain waiter on `slate[0]`; it must surface as a typed
    /// [`ServeError::Model`] instead.
    #[test]
    fn empty_slate_from_foreign_model_is_a_typed_error_not_a_panic() {
        struct EmptySlateModel;
        impl crate::Searchable for EmptySlateModel {
            fn dim(&self) -> usize {
                64
            }
            fn rows(&self) -> usize {
                4
            }
            fn search_winners(
                &self,
                batch: Arc<hd_linalg::QueryBatch>,
            ) -> Result<Vec<crate::Winner>> {
                Ok(vec![crate::Winner { row: 0, class: 0, score: 0 }; batch.len()])
            }
            fn search_topk(
                &self,
                batch: Arc<hd_linalg::QueryBatch>,
                _k: usize,
            ) -> Result<Vec<Vec<crate::Winner>>> {
                Ok(vec![Vec::new(); batch.len()])
            }
        }
        let server = Server::start(
            Arc::new(EmptySlateModel),
            ServeConfig { max_batch: 2, max_delay: Duration::from_millis(5), ..Default::default() },
        )
        .unwrap();
        let queries = random_queries(2, 64, 30);
        // A plain submission sharing a cycle with a top-k one is
        // answered from the (empty) shared slate.
        let plain = server.submit(queries[0].as_view()).unwrap();
        let ranked = server.submit_topk(queries[1].as_view(), 3).unwrap();
        match plain.wait() {
            Err(ServeError::Model { reason }) => {
                assert!(reason.contains("empty"), "unexpected reason: {reason}")
            }
            other => panic!("expected a Model error, got {other:?}"),
        }
        // The top-k waiter legitimately sees the empty slate.
        assert_eq!(ranked.wait().unwrap(), Vec::new());
    }

    #[test]
    fn submit_packed_matches_per_query_submission() {
        let dim = 130; // dirty-tail width
        let am = random_am(40, dim, 31);
        let server = Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(100),
                ..Default::default()
            },
        )
        .unwrap();
        let queries = random_queries(20, dim, 32);
        let mut words: Vec<u64> = Vec::new();
        for q in &queries {
            words.extend_from_slice(q.as_words());
        }
        // One oversized frame (> max_batch) plus a small one: the first
        // flushes inline, the rest ride the deadline flusher.
        let wpq = dim.div_ceil(64);
        let mut pendings = server.submit_packed(&words[..16 * wpq], 1).unwrap();
        pendings.extend(server.submit_packed(&words[16 * wpq..], 3).unwrap());
        assert_eq!(pendings.len(), queries.len());
        let batch = hd_linalg::QueryBatch::from_vectors(&queries).unwrap();
        let reference = am.search_topk(&batch, 3).unwrap();
        for (i, p) in pendings.into_iter().enumerate() {
            let slate = p.wait().unwrap();
            let want_len = if i < 16 { 1 } else { 3 };
            assert_eq!(slate.len(), want_len, "query {i}");
            for (got, want) in slate.iter().zip(&reference[i]) {
                assert_eq!(
                    (got.row, got.class, got.score),
                    (want.row, want.class, want.score),
                    "query {i}"
                );
            }
        }
    }

    #[test]
    fn submit_packed_rejects_malformed_payloads_and_sheds_whole_frames() {
        let dim = 64;
        let am = random_am(8, dim, 33);
        let server = Server::start(
            Arc::clone(&am) as Arc<dyn Searchable>,
            ServeConfig { max_batch: 4, max_delay: Duration::from_secs(600), max_in_flight: 4 },
        )
        .unwrap();
        assert!(matches!(server.submit_packed(&[], 1), Err(ServeError::MalformedPayload { .. })));
        assert!(matches!(
            server.submit_packed(&[0u64; 2], 0),
            Err(ServeError::InvalidConfig { .. })
        ));
        // A misaligned payload needs a multi-word width: 100 bits = 2
        // words/query, 3 words is one-and-a-half queries.
        let wide =
            Server::start(random_am(8, 100, 34) as Arc<dyn Searchable>, ServeConfig::default())
                .unwrap();
        assert!(matches!(
            wide.submit_packed(&[0u64; 3], 1),
            Err(ServeError::MalformedPayload { .. })
        ));
        // Admission: a 3-query frame fits the 4-slot gauge; a second
        // 3-query frame would exceed it and is shed whole (nothing
        // partially enqueued — the retry succeeds after capacity frees).
        let held = server.submit_packed(&[1u64, 2, 3], 1).unwrap();
        assert_eq!(server.in_flight(), 3);
        assert!(matches!(server.submit_packed(&[4u64, 5, 6], 1), Err(ServeError::Overloaded)));
        assert_eq!(server.in_flight(), 3);
        assert_eq!(server.stats().shed, 3);
        // One more single query fits exactly at the limit, fills the
        // 4-slot batch, and flushes inline — freeing every slot.
        let single = server.submit(BitVector::zeros(dim).as_view()).unwrap();
        assert_eq!(server.in_flight(), 0);
        for p in held {
            p.wait().unwrap();
        }
        single.wait().unwrap();
    }

    #[test]
    fn serves_raw_search_memory_with_row_as_class() {
        let memory = SearchMemory::from_rows(&random_queries(12, 64, 12)).unwrap();
        let server = Server::start(
            Arc::new(memory.clone()) as Arc<dyn Searchable>,
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_micros(50),
                ..Default::default()
            },
        )
        .unwrap();
        let q = random_queries(1, 64, 13).remove(0);
        let got = server.classify(q.as_view()).unwrap();
        assert_eq!(got.row, got.class);
        let direct = memory
            .winners_batch(&QueryBatch::from_vectors(std::slice::from_ref(&q)).unwrap())
            .unwrap()[0];
        assert_eq!((got.row, got.score), direct);
    }
}
