//! Row-sharded associative search across pinned worker threads.
//!
//! A [`ShardedSearcher`] splits a [`SearchMemory`]'s class-row space into
//! `N` contiguous, [`hd_linalg::BLOCK_LANES`]-aligned row ranges (via
//! [`SearchMemory::split_rows`]); each shard owns its rows **and its own
//! pre-packed blocked mirror**, and — when more than one shard exists —
//! is pinned to a dedicated worker thread that lives for the searcher's
//! lifetime. A flush sends the shared `Arc<QueryBatch>` to every worker,
//! collects per-shard winners, and merges them in ascending-shard order
//! with a strict `>` comparison, which reproduces the global
//! highest-score / lowest-row tie-break exactly (the property the SIMD
//! equivalence suite pins for the underlying kernels).
//!
//! [`ShardedSearcher::with_cascade`] runs a [`CascadePlan`] inside every
//! shard instead of the exact sweep: shards prune independently against
//! their own rows, and because each shard's cascade winners are
//! bit-identical to its exact winners, the strict merge is untouched and
//! the sharded cascade equals the unsharded search exactly.

use crate::error::{Result, ServeError};
use crate::searchable::{check_topk, Searchable, Winner};
use hd_linalg::{BoundCascade, CascadePlan, QueryBatch, SearchMemory};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What one flush asks each shard to compute.
#[derive(Clone, Copy)]
enum ShardTask {
    /// The argmax winner per query.
    Winners,
    /// The `min(k, shard rows)` best rows per query.
    TopK(usize),
}

/// A shard's answer, matching the dispatched [`ShardTask`] variant.
enum ShardAnswer {
    Winners(Vec<(usize, u32)>),
    TopK(Vec<Vec<(usize, u32)>>),
}

/// What a worker posts back per job: its shard index plus the shard-local
/// answer (or the kernel-level failure).
type ShardReply = (usize, hd_linalg::Result<ShardAnswer>);

/// One dispatched unit of shard work: the shared batch, the task, and
/// the reply channel the worker posts a [`ShardReply`] to.
struct Job {
    batch: Arc<QueryBatch>,
    task: ShardTask,
    reply: SyncSender<ShardReply>,
}

struct Shard {
    /// Global row index of this shard's first row.
    offset: usize,
    memory: Arc<SearchMemory>,
    /// The cascade plan bound to this shard's rows (prefix sub-memory
    /// and row-suffix table derived once at construction); `None` runs
    /// the exact winners sweep.
    cascade: Option<Arc<BoundCascade>>,
    /// Job channel of the pinned worker; `None` when the searcher runs
    /// shards inline (single shard, or worker spawn disabled).
    jobs: Option<Mutex<Sender<Job>>>,
}

/// Shard-local answer: the exact winners / fused top-k sweep, or the
/// bound cascade equivalents when a plan is installed. Both paths
/// produce bit-identical results; only the activation cost differs, and
/// neither re-packs anything.
fn shard_answer(
    memory: &SearchMemory,
    batch: &QueryBatch,
    cascade: Option<&BoundCascade>,
    task: ShardTask,
) -> hd_linalg::Result<ShardAnswer> {
    match (task, cascade) {
        (ShardTask::Winners, Some(bound)) => {
            bound.search(batch).map(|r| ShardAnswer::Winners(r.into_winners()))
        }
        (ShardTask::Winners, None) => memory.winners_batch(batch).map(ShardAnswer::Winners),
        (ShardTask::TopK(k), Some(bound)) => {
            bound.search_topk(batch, k).map(|r| ShardAnswer::TopK(r.into_topk().into_vecs()))
        }
        (ShardTask::TopK(k), None) => {
            memory.topk_batch(batch, k).map(|t| ShardAnswer::TopK(t.into_vecs()))
        }
    }
}

/// A sharded, worker-backed [`Searchable`] over a row-partitioned
/// associative memory.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitMatrix, BitVector, QueryBatch, SearchMemory};
/// use hd_serve::{Searchable, ShardedSearcher};
/// use std::sync::Arc;
///
/// let rows: Vec<BitVector> =
///     (0..32).map(|r| BitVector::from_bools(&[r % 3 == 0, true, r % 2 == 0])).collect();
/// let memory = SearchMemory::from_rows(&rows).unwrap();
/// let classes = (0..32).map(|r| r % 4).collect();
/// let sharded = ShardedSearcher::new(memory.clone(), classes, 2).unwrap();
/// let batch = Arc::new(QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 3])]).unwrap());
/// let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
/// assert_eq!(winners[0].row, memory.winners_batch(&batch).unwrap()[0].0);
/// ```
pub struct ShardedSearcher {
    dim: usize,
    rows: usize,
    /// Global row → class label.
    classes: Arc<Vec<usize>>,
    /// Stage plan each shard runs (`None` = exact winners sweep).
    plan: Option<Arc<CascadePlan>>,
    shards: Vec<Shard>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedSearcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSearcher")
            .field("dim", &self.dim)
            .field("rows", &self.rows)
            .field("shards", &self.shards.len())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ShardedSearcher {
    /// Splits `memory` into (at most) `num_shards` row shards, spawning
    /// one pinned worker thread per shard when more than one results.
    /// `num_shards == 0` selects [`std::thread::available_parallelism`].
    ///
    /// `classes[r]` is the class label of global row `r`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `classes` disagrees with
    /// the memory's row count or the memory is empty.
    pub fn new(memory: SearchMemory, classes: Vec<usize>, num_shards: usize) -> Result<Self> {
        Self::build(memory, classes, num_shards, None)
    }

    /// Like [`ShardedSearcher::new`] but every shard answers its rows
    /// through the progressive-precision cascade under `plan`. Shards
    /// prune independently; merged winners are bit-identical to the
    /// exact sharded (and unsharded) search.
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::new`], plus [`ServeError::InvalidConfig`]
    /// when the plan's dimensionality differs from the memory's.
    pub fn with_cascade(
        memory: SearchMemory,
        classes: Vec<usize>,
        num_shards: usize,
        plan: CascadePlan,
    ) -> Result<Self> {
        if plan.dim() != memory.cols() {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "cascade plan covers {} dimensions but the memory has {}",
                    plan.dim(),
                    memory.cols()
                ),
            });
        }
        Self::build(memory, classes, num_shards, Some(Arc::new(plan)))
    }

    fn build(
        memory: SearchMemory,
        classes: Vec<usize>,
        num_shards: usize,
        plan: Option<Arc<CascadePlan>>,
    ) -> Result<Self> {
        if classes.len() != memory.rows() {
            return Err(ServeError::InvalidConfig {
                reason: format!("{} class labels for {} rows", classes.len(), memory.rows()),
            });
        }
        let num_shards = if num_shards == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            num_shards
        };
        let dim = memory.cols();
        let rows = memory.rows();
        let parts = memory
            .split_rows(num_shards)
            .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?;
        let spawn_workers = parts.len() > 1;
        let mut shards = Vec::with_capacity(parts.len());
        let mut workers = Vec::new();
        for (idx, (offset, part)) in parts.into_iter().enumerate() {
            let memory = Arc::new(part);
            // Bind the plan to this shard's rows once; workers and the
            // inline path reuse the derived prefix/suffix artifacts for
            // every flush.
            let cascade = match &plan {
                Some(plan) => Some(Arc::new(
                    BoundCascade::new(Arc::clone(&memory), plan.as_ref().clone())
                        .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?,
                )),
                None => None,
            };
            let jobs = if spawn_workers {
                let (tx, rx): (Sender<Job>, Receiver<Job>) = mpsc::channel();
                let worker_memory = Arc::clone(&memory);
                let worker_cascade = cascade.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("hd-serve-shard-{idx}"))
                    .spawn(move || {
                        // The worker owns its shard for its whole life:
                        // the blocked mirror stays hot and no re-packing
                        // ever happens on the search path.
                        while let Ok(job) = rx.recv() {
                            let answer = shard_answer(
                                &worker_memory,
                                &job.batch,
                                worker_cascade.as_deref(),
                                job.task,
                            );
                            // A dropped reply receiver means the dispatch
                            // errored out early; keep serving later jobs.
                            let _ = job.reply.send((idx, answer));
                        }
                    })
                    .map_err(|e| ServeError::InvalidConfig {
                        reason: format!("failed to spawn shard worker: {e}"),
                    })?;
                workers.push(handle);
                Some(Mutex::new(tx))
            } else {
                None
            };
            shards.push(Shard { offset, memory, cascade, jobs });
        }
        Ok(ShardedSearcher { dim, rows, classes: Arc::new(classes), plan, shards, workers })
    }

    /// Builds a sharded searcher over a [`hdc::BinaryAm`]'s centroid rows
    /// and class labels.
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::new`].
    pub fn from_am(am: &hdc::BinaryAm, num_shards: usize) -> Result<Self> {
        ShardedSearcher::new(am.search_memory().clone(), am.class_labels().to_vec(), num_shards)
    }

    /// Like [`ShardedSearcher::with_cascade`] but the stage plan is
    /// auto-tuned from a sample of real queries before sharding
    /// ([`CascadePlan::tuned`] on the whole memory): every shard then
    /// runs the same tuned plan against its own rows, so the merged
    /// winners stay bit-identical to the unsharded search under any plan
    /// the tuner picks.
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::with_cascade`], plus
    /// [`ServeError::InvalidConfig`] when tuning rejects the sample
    /// (empty, or off-dimension).
    pub fn with_cascade_tuned(
        memory: SearchMemory,
        classes: Vec<usize>,
        num_shards: usize,
        sample: &QueryBatch,
    ) -> Result<Self> {
        let plan = CascadePlan::tuned(&memory, sample)
            .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?;
        Self::with_cascade(memory, classes, num_shards, plan)
    }

    /// Builds a cascade-mode sharded searcher over a [`hdc::BinaryAm`].
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::with_cascade`].
    pub fn from_am_cascade(
        am: &hdc::BinaryAm,
        num_shards: usize,
        plan: CascadePlan,
    ) -> Result<Self> {
        ShardedSearcher::with_cascade(
            am.search_memory().clone(),
            am.class_labels().to_vec(),
            num_shards,
            plan,
        )
    }

    /// [`ShardedSearcher::with_cascade_tuned`] over a [`hdc::BinaryAm`].
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::with_cascade_tuned`].
    pub fn from_am_cascade_tuned(
        am: &hdc::BinaryAm,
        num_shards: usize,
        sample: &QueryBatch,
    ) -> Result<Self> {
        ShardedSearcher::with_cascade_tuned(
            am.search_memory().clone(),
            am.class_labels().to_vec(),
            num_shards,
            sample,
        )
    }

    /// The cascade plan shards run, when one is installed.
    pub fn cascade_plan(&self) -> Option<&CascadePlan> {
        self.plan.as_deref()
    }

    /// Number of row shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether shards execute on pinned worker threads (vs. inline).
    pub fn has_workers(&self) -> bool {
        !self.workers.is_empty()
    }

    /// Runs `task` on every shard — inline when no workers exist, else
    /// fanned out to the pinned workers — and collects the answers in
    /// shard order.
    fn per_shard_answers(
        &self,
        batch: &Arc<QueryBatch>,
        task: ShardTask,
    ) -> Result<Vec<ShardAnswer>> {
        let mut per_shard: Vec<Option<ShardAnswer>> =
            (0..self.shards.len()).map(|_| None).collect();
        if self.workers.is_empty() {
            for (slot, shard) in per_shard.iter_mut().zip(&self.shards) {
                *slot = Some(
                    shard_answer(&shard.memory, batch, shard.cascade.as_deref(), task)
                        .map_err(|e| ServeError::Model { reason: e.to_string() })?,
                );
            }
        } else {
            let (reply_tx, reply_rx) = mpsc::sync_channel(self.shards.len());
            for shard in &self.shards {
                let job = Job { batch: Arc::clone(batch), task, reply: reply_tx.clone() };
                shard
                    .jobs
                    .as_ref()
                    .expect("worker-backed searcher has a job channel per shard")
                    .lock()
                    .expect("shard sender lock poisoned")
                    .send(job)
                    .map_err(|_| ServeError::Model { reason: "shard worker exited".into() })?;
            }
            drop(reply_tx);
            for _ in 0..self.shards.len() {
                let (idx, answer) = reply_rx
                    .recv()
                    .map_err(|_| ServeError::Model { reason: "shard worker exited".into() })?;
                per_shard[idx] =
                    Some(answer.map_err(|e| ServeError::Model { reason: e.to_string() })?);
            }
        }
        Ok(per_shard.into_iter().map(|a| a.expect("every shard replied")).collect())
    }

    /// Merges per-shard winners (ordered by ascending shard) into global
    /// winners. Strict `>` keeps the earliest (lowest-offset) shard on
    /// ties, and each shard's local winner already carries its own
    /// lowest-row tie-break, so the merged winner is exactly the
    /// unsharded one.
    fn merge(&self, per_shard: Vec<Vec<(usize, u32)>>, queries: usize) -> Vec<Winner> {
        (0..queries)
            .map(|q| {
                let mut best = (0usize, 0u32);
                let mut first = true;
                for (shard, winners) in self.shards.iter().zip(&per_shard) {
                    let (local_row, score) = winners[q];
                    if first || score > best.1 {
                        best = (shard.offset + local_row, score);
                        first = false;
                    }
                }
                Winner { row: best.0, class: self.classes[best.0], score: best.1 }
            })
            .collect()
    }

    /// Merges per-shard k-best lists (ordered by ascending shard) into
    /// the global k-best. Equal scores insert after their peers and
    /// shards contribute in ascending-offset order (each shard list
    /// already score-descending / local-row-ascending), so the merged
    /// slate carries the global highest-score / lowest-row tie-break
    /// exactly — bit-identical to the unsharded top-k.
    fn merge_topk(
        &self,
        per_shard: Vec<Vec<Vec<(usize, u32)>>>,
        queries: usize,
        k: usize,
    ) -> Vec<Vec<Winner>> {
        let k = k.min(self.rows);
        (0..queries)
            .map(|q| {
                let mut slots: Vec<(usize, u32)> = Vec::with_capacity(k);
                for (shard, lists) in self.shards.iter().zip(&per_shard) {
                    for &(local_row, score) in &lists[q] {
                        if slots.len() == k {
                            if score <= slots[k - 1].1 {
                                // Shard lists are score-descending:
                                // nothing later here can make the slate.
                                break;
                            }
                            slots.pop();
                        }
                        let pos = slots.partition_point(|&(_, s)| s >= score);
                        slots.insert(pos, (shard.offset + local_row, score));
                    }
                }
                slots
                    .into_iter()
                    .map(|(row, score)| Winner { row, class: self.classes[row], score })
                    .collect()
            })
            .collect()
    }
}

impl Searchable for ShardedSearcher {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        if batch.dim() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, found: batch.dim() });
        }
        let queries = batch.len();
        let per_shard: Vec<Vec<(usize, u32)>> = self
            .per_shard_answers(&batch, ShardTask::Winners)?
            .into_iter()
            .map(|a| match a {
                ShardAnswer::Winners(w) => w,
                ShardAnswer::TopK(_) => unreachable!("winners task answered with top-k"),
            })
            .collect();
        Ok(self.merge(per_shard, queries))
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        if batch.dim() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, found: batch.dim() });
        }
        let queries = batch.len();
        let per_shard: Vec<Vec<Vec<(usize, u32)>>> = self
            .per_shard_answers(&batch, ShardTask::TopK(k))?
            .into_iter()
            .map(|a| match a {
                ShardAnswer::TopK(lists) => lists,
                ShardAnswer::Winners(_) => unreachable!("top-k task answered with winners"),
            })
            .collect();
        Ok(self.merge_topk(per_shard, queries, k))
    }
}

impl Drop for ShardedSearcher {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        for shard in &mut self.shards {
            shard.jobs = None;
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::seeded;
    use hd_linalg::BitVector;
    use rand::Rng;

    fn random_memory(rows: usize, dim: usize, seed: u64) -> (SearchMemory, Vec<usize>) {
        let mut rng = seeded(seed);
        let vectors: Vec<BitVector> = (0..rows)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let classes = (0..rows).map(|r| r % 7).collect();
        (SearchMemory::from_rows(&vectors).unwrap(), classes)
    }

    fn random_batch(n: usize, dim: usize, seed: u64) -> Arc<QueryBatch> {
        let mut rng = seeded(seed);
        let queries: Vec<BitVector> = (0..n)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        Arc::new(QueryBatch::from_vectors(&queries).unwrap())
    }

    #[test]
    fn sharded_matches_unsharded_for_every_shard_count() {
        let (memory, classes) = random_memory(53, 96, 1);
        let batch = random_batch(17, 96, 2);
        let reference = memory.winners_batch(&batch).unwrap();
        for shards in [1usize, 2, 3, 4, 9] {
            let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), shards).unwrap();
            assert_eq!(sharded.has_workers(), sharded.num_shards() > 1, "{shards}");
            let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
            for (q, w) in winners.iter().enumerate() {
                assert_eq!((w.row, w.score), reference[q], "shards {shards}, query {q}");
                assert_eq!(w.class, classes[w.row]);
            }
        }
    }

    #[test]
    fn tie_break_prefers_lowest_row_across_shard_boundary() {
        // Rows 0 and 16 are identical; they land in different shards and
        // tie on every query — the merged winner must be row 0.
        let mut rows: Vec<BitVector> =
            (0..24).map(|_| BitVector::from_bools(&[false; 64])).collect();
        let hot = BitVector::from_bools(&[true; 64]);
        rows[0] = hot.clone();
        rows[16] = hot.clone();
        let memory = SearchMemory::from_rows(&rows).unwrap();
        let sharded = ShardedSearcher::new(memory, (0..24).collect(), 3).unwrap();
        assert!(sharded.num_shards() >= 2);
        let batch = Arc::new(QueryBatch::from_vectors(&[hot]).unwrap());
        let w = sharded.search_winners(batch).unwrap();
        assert_eq!((w[0].row, w[0].score), (0, 64));
    }

    #[test]
    fn sharded_topk_matches_unsharded_for_every_shard_count() {
        let (memory, classes) = random_memory(53, 96, 21);
        let batch = random_batch(17, 96, 22);
        for shards in [1usize, 2, 3, 4, 9] {
            let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), shards).unwrap();
            for k in [1usize, 3, 7, 53, 60] {
                let reference = memory.topk_batch(&batch, k).unwrap();
                let lists = sharded.search_topk(Arc::clone(&batch), k).unwrap();
                for (q, list) in lists.iter().enumerate() {
                    let got: Vec<(usize, u32)> = list.iter().map(|w| (w.row, w.score)).collect();
                    assert_eq!(got, reference.hits(q), "shards {shards}, k {k}, query {q}");
                    for w in list {
                        assert_eq!(w.class, classes[w.row]);
                    }
                }
            }
            assert!(sharded.search_topk(Arc::clone(&batch), 0).is_err());
        }
    }

    #[test]
    fn topk_merge_keeps_global_tie_break_across_shard_boundary() {
        // Rows 0 and 16 are identical and land in different shards; the
        // k-way merge must order the tie by global row index, not by
        // shard arrival order.
        let mut rows: Vec<BitVector> =
            (0..24).map(|_| BitVector::from_bools(&[false; 64])).collect();
        let hot = BitVector::from_bools(&[true; 64]);
        rows[0] = hot.clone();
        rows[16] = hot.clone();
        let memory = SearchMemory::from_rows(&rows).unwrap();
        let sharded = ShardedSearcher::new(memory, (0..24).collect(), 3).unwrap();
        assert!(sharded.num_shards() >= 2);
        let batch = Arc::new(QueryBatch::from_vectors(&[hot]).unwrap());
        let lists = sharded.search_topk(batch, 4).unwrap();
        let got: Vec<(usize, u32)> = lists[0].iter().map(|w| (w.row, w.score)).collect();
        // The two tied winners first (row order), then the zero rows by
        // row order.
        assert_eq!(got, vec![(0, 64), (16, 64), (1, 0), (2, 0)]);
    }

    #[test]
    fn cascade_sharded_topk_matches_unsharded() {
        let (memory, classes) = random_memory(53, 192, 25);
        let batch = random_batch(17, 192, 26);
        for shards in [1usize, 3] {
            for plan in [CascadePlan::exact(192), CascadePlan::prefix(192, 64).unwrap()] {
                let sharded = ShardedSearcher::with_cascade(
                    memory.clone(),
                    classes.clone(),
                    shards,
                    plan.clone(),
                )
                .unwrap();
                for k in [1usize, 5] {
                    let reference = memory.topk_batch(&batch, k).unwrap();
                    let lists = sharded.search_topk(Arc::clone(&batch), k).unwrap();
                    for (q, list) in lists.iter().enumerate() {
                        let got: Vec<(usize, u32)> =
                            list.iter().map(|w| (w.row, w.score)).collect();
                        assert_eq!(
                            got,
                            reference.hits(q),
                            "shards {shards}, plan {plan:?}, k {k}, query {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cascade_shards_match_exact_for_every_shard_count() {
        let (memory, classes) = random_memory(53, 192, 11);
        let batch = random_batch(17, 192, 12);
        let reference = memory.winners_batch(&batch).unwrap();
        for shards in [1usize, 2, 3, 7] {
            for plan in [
                CascadePlan::exact(192),
                CascadePlan::prefix(192, 64).unwrap(),
                CascadePlan::uniform(192, 5).unwrap(),
            ] {
                let sharded = ShardedSearcher::with_cascade(
                    memory.clone(),
                    classes.clone(),
                    shards,
                    plan.clone(),
                )
                .unwrap();
                assert_eq!(sharded.cascade_plan(), Some(&plan));
                let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
                for (q, w) in winners.iter().enumerate() {
                    assert_eq!(
                        (w.row, w.score),
                        reference[q],
                        "shards {shards}, plan {plan:?}, query {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn tuned_cascade_shards_match_exact() {
        let (memory, classes) = random_memory(53, 256, 14);
        let batch = random_batch(24, 256, 15);
        let reference = memory.winners_batch(&batch).unwrap();
        for shards in [1usize, 3] {
            let sharded = ShardedSearcher::with_cascade_tuned(
                memory.clone(),
                classes.clone(),
                shards,
                &batch,
            )
            .unwrap();
            assert!(sharded.cascade_plan().is_some(), "tuned plan is installed");
            let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
            for (q, w) in winners.iter().enumerate() {
                assert_eq!((w.row, w.score), reference[q], "shards {shards}, query {q}");
            }
        }
        let wrong = random_batch(2, 64, 16);
        assert!(ShardedSearcher::with_cascade_tuned(memory, classes, 2, &wrong).is_err());
    }

    #[test]
    fn cascade_plan_dimension_validated() {
        let (memory, classes) = random_memory(16, 64, 13);
        assert!(ShardedSearcher::with_cascade(
            memory.clone(),
            classes.clone(),
            2,
            CascadePlan::exact(65)
        )
        .is_err());
        let ok =
            ShardedSearcher::with_cascade(memory, classes, 2, CascadePlan::prefix(64, 16).unwrap())
                .unwrap();
        assert!(ok.cascade_plan().is_some());
    }

    #[test]
    fn shard_count_clamped_and_validated() {
        let (memory, classes) = random_memory(10, 64, 3);
        let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), 100).unwrap();
        assert!(sharded.num_shards() <= 2, "10 rows = 2 lane blocks at most");
        assert!(ShardedSearcher::new(memory, classes[..5].to_vec(), 2).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (memory, classes) = random_memory(16, 64, 4);
        let sharded = ShardedSearcher::new(memory, classes, 2).unwrap();
        let batch = random_batch(3, 65, 5);
        assert!(matches!(
            sharded.search_winners(batch),
            Err(ServeError::DimensionMismatch { expected: 64, found: 65 })
        ));
    }
}
