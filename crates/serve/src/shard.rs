//! Row-sharded associative search across pinned worker threads.
//!
//! A [`ShardedSearcher`] splits a [`SearchMemory`]'s class-row space into
//! `N` contiguous, [`hd_linalg::BLOCK_LANES`]-aligned row ranges (via
//! [`SearchMemory::split_rows`]); each shard owns its rows **and its own
//! pre-packed blocked mirror**, and — when more than one shard exists —
//! is pinned to a dedicated worker thread that lives for the searcher's
//! lifetime. A flush sends the shared `Arc<QueryBatch>` to every worker,
//! collects per-shard winners, and merges them in ascending-shard order
//! with a strict `>` comparison, which reproduces the global
//! highest-score / lowest-row tie-break exactly (the property the SIMD
//! equivalence suite pins for the underlying kernels).
//!
//! [`ShardedSearcher::with_cascade`] runs a [`CascadePlan`] inside every
//! shard instead of the exact sweep: shards prune independently against
//! their own rows, and because each shard's cascade winners are
//! bit-identical to its exact winners, the strict merge is untouched and
//! the sharded cascade equals the unsharded search exactly.
//!
//! # Worker supervision
//!
//! A panicking shard worker must not poison the searcher. Each worker
//! wraps its sweep in `catch_unwind`, posts the panic back, and exits;
//! the dispatcher then **respawns the worker once** (the blocked mirror
//! is immutable, so a fresh thread over the same `Arc`ed shard is safe)
//! and retries the failed shards in a new collection round. A worker
//! that dies again is **degraded**: its shard drops out permanently,
//! searches answer exactly over the surviving rows, and the loss is
//! reported through [`ShardedSearcher::missing_shards`] so the serving
//! layer can flag the answers (see `Prediction::degraded`) instead of
//! failing them. Deterministic kernel errors (e.g. a bad `k`) still fail
//! the whole request — only worker *death* degrades.

use crate::error::{Result, ServeError};
use crate::searchable::{check_topk, Searchable, Winner};
use hd_linalg::{BoundCascade, CascadePlan, QueryBatch, SearchMemory};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// What one flush asks each shard to compute.
#[derive(Clone, Copy)]
enum ShardTask {
    /// The argmax winner per query.
    Winners,
    /// The `min(k, shard rows)` best rows per query.
    TopK(usize),
}

/// A shard's answer, matching the dispatched [`ShardTask`] variant.
enum ShardAnswer {
    Winners(Vec<(usize, u32)>),
    TopK(Vec<Vec<(usize, u32)>>),
}

/// One shard's per-query `(local_row, score)` winners in the merge
/// input, `None` when the shard has degraded out.
type ShardWinners = Option<Vec<(usize, u32)>>;

/// One shard's per-query score-descending k-best lists in the merge
/// input, `None` when the shard has degraded out.
type ShardTopKLists = Option<Vec<Vec<(usize, u32)>>>;

/// What a worker computed for one job: the shard-local answer (or the
/// deterministic kernel failure), or the panic that killed the worker.
enum ShardOutcome {
    Answer(hd_linalg::Result<ShardAnswer>),
    Panicked(String),
}

/// What a worker posts back per job: its shard index plus the outcome.
type ShardReply = (usize, ShardOutcome);

/// One dispatched unit of shard work: the shared batch, the task, and
/// the reply channel the worker posts a [`ShardReply`] to.
struct Job {
    batch: Arc<QueryBatch>,
    task: ShardTask,
    reply: SyncSender<ShardReply>,
}

/// Supervision state of one shard's worker, guarded by a mutex so
/// concurrent flushes agree on who pays for a respawn.
struct ShardSupervisor {
    /// Job channel of the live worker; `None` once the shard degrades.
    jobs: Option<Sender<Job>>,
    /// Bumped on every respawn. Lets a flush tell "my worker died" apart
    /// from "another flush already replaced it", so one death never
    /// consumes the respawn budget twice.
    generation: u64,
    /// Remaining respawns before the shard degrades permanently.
    respawns_left: u32,
}

struct Shard {
    /// Global row index of this shard's first row.
    offset: usize,
    memory: Arc<SearchMemory>,
    /// The cascade plan bound to this shard's rows (prefix sub-memory
    /// and row-suffix table derived once at construction); `None` runs
    /// the exact winners sweep.
    cascade: Option<Arc<BoundCascade>>,
    /// Worker supervision state; `None` when the searcher runs shards
    /// inline (single shard, or worker spawn disabled).
    supervisor: Option<Mutex<ShardSupervisor>>,
    /// Chaos failpoint: every pending count makes the worker panic on
    /// its next job (see [`ShardedSearcher::inject_shard_panics`]).
    chaos_panics: Arc<AtomicUsize>,
}

/// Renders a `catch_unwind` payload for the panic reply.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Spawns the pinned worker thread for shard `idx`. The worker answers
/// jobs until its channel closes — or until a job panics, in which case
/// it posts the panic back and exits so the supervisor can respawn it.
fn spawn_worker(
    idx: usize,
    memory: Arc<SearchMemory>,
    cascade: Option<Arc<BoundCascade>>,
    chaos: Arc<AtomicUsize>,
) -> Result<(Sender<Job>, JoinHandle<()>)> {
    let (tx, rx) = mpsc::channel::<Job>();
    let handle = std::thread::Builder::new()
        .name(format!("hd-serve-shard-{idx}"))
        .spawn(move || {
            // The worker owns its shard for its whole life: the blocked
            // mirror stays hot and no re-packing ever happens on the
            // search path.
            while let Ok(job) = rx.recv() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if chaos
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_ok()
                    {
                        panic!("injected chaos panic");
                    }
                    shard_answer(&memory, &job.batch, cascade.as_deref(), job.task)
                }));
                match outcome {
                    Ok(answer) => {
                        // A dropped reply receiver means the dispatch
                        // errored out early; keep serving later jobs.
                        let _ = job.reply.send((idx, ShardOutcome::Answer(answer)));
                    }
                    Err(payload) => {
                        let _ =
                            job.reply.send((idx, ShardOutcome::Panicked(panic_message(payload))));
                        // A panicked sweep leaves no trustworthy state;
                        // die and let the supervisor respawn the shard
                        // from its immutable Arc'ed mirror.
                        break;
                    }
                }
            }
        })
        .map_err(|e| ServeError::InvalidConfig {
            reason: format!("failed to spawn shard worker: {e}"),
        })?;
    Ok((tx, handle))
}

/// Shard-local answer: the exact winners / fused top-k sweep, or the
/// bound cascade equivalents when a plan is installed. Both paths
/// produce bit-identical results; only the activation cost differs, and
/// neither re-packs anything.
fn shard_answer(
    memory: &SearchMemory,
    batch: &QueryBatch,
    cascade: Option<&BoundCascade>,
    task: ShardTask,
) -> hd_linalg::Result<ShardAnswer> {
    match (task, cascade) {
        (ShardTask::Winners, Some(bound)) => {
            bound.search(batch).map(|r| ShardAnswer::Winners(r.into_winners()))
        }
        (ShardTask::Winners, None) => memory.winners_batch(batch).map(ShardAnswer::Winners),
        (ShardTask::TopK(k), Some(bound)) => {
            bound.search_topk(batch, k).map(|r| ShardAnswer::TopK(r.into_topk().into_vecs()))
        }
        (ShardTask::TopK(k), None) => {
            memory.topk_batch(batch, k).map(|t| ShardAnswer::TopK(t.into_vecs()))
        }
    }
}

/// Rejects a shard answer whose length disagrees with the batch — the
/// invariant the merge paths index on (`winners[q]` / `lists[q]`). The
/// search kernels uphold it by construction; converting a violation into
/// a typed error here means a buggy kernel degrades one request instead
/// of panicking the calling thread (which, on a direct
/// [`ShardedSearcher`] user outside [`crate::Server`]'s catch_unwind,
/// would unwind into the caller).
fn check_answer_len(answer: &ShardAnswer, queries: usize, shard: usize) -> Result<()> {
    let got = match answer {
        ShardAnswer::Winners(w) => w.len(),
        ShardAnswer::TopK(lists) => lists.len(),
    };
    if got != queries {
        return Err(ServeError::Model {
            reason: format!("shard {shard} answered {got} queries for a {queries}-query batch"),
        });
    }
    Ok(())
}

/// A sharded, worker-backed [`Searchable`] over a row-partitioned
/// associative memory.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitMatrix, BitVector, QueryBatch, SearchMemory};
/// use hd_serve::{Searchable, ShardedSearcher};
/// use std::sync::Arc;
///
/// let rows: Vec<BitVector> =
///     (0..32).map(|r| BitVector::from_bools(&[r % 3 == 0, true, r % 2 == 0])).collect();
/// let memory = SearchMemory::from_rows(&rows).unwrap();
/// let classes = (0..32).map(|r| r % 4).collect();
/// let sharded = ShardedSearcher::new(memory.clone(), classes, 2).unwrap();
/// let batch = Arc::new(QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 3])]).unwrap());
/// let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
/// assert_eq!(winners[0].row, memory.winners_batch(&batch).unwrap()[0].0);
/// ```
pub struct ShardedSearcher {
    dim: usize,
    rows: usize,
    /// Global row → class label.
    classes: Arc<Vec<usize>>,
    /// Stage plan each shard runs (`None` = exact winners sweep).
    plan: Option<Arc<CascadePlan>>,
    shards: Vec<Shard>,
    /// Join handles of every worker ever spawned (respawns append from
    /// `&self`, hence the mutex); drained and joined on drop.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardedSearcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner).len();
        f.debug_struct("ShardedSearcher")
            .field("dim", &self.dim)
            .field("rows", &self.rows)
            .field("shards", &self.shards.len())
            .field("workers", &workers)
            .field("missing_shards", &self.missing_shards())
            .finish()
    }
}

impl ShardedSearcher {
    /// Splits `memory` into (at most) `num_shards` row shards, spawning
    /// one pinned worker thread per shard when more than one results.
    /// `num_shards == 0` selects [`std::thread::available_parallelism`].
    ///
    /// `classes[r]` is the class label of global row `r`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `classes` disagrees with
    /// the memory's row count or the memory is empty.
    pub fn new(memory: SearchMemory, classes: Vec<usize>, num_shards: usize) -> Result<Self> {
        Self::build(memory, classes, num_shards, None)
    }

    /// Like [`ShardedSearcher::new`] but every shard answers its rows
    /// through the progressive-precision cascade under `plan`. Shards
    /// prune independently; merged winners are bit-identical to the
    /// exact sharded (and unsharded) search.
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::new`], plus [`ServeError::InvalidConfig`]
    /// when the plan's dimensionality differs from the memory's.
    pub fn with_cascade(
        memory: SearchMemory,
        classes: Vec<usize>,
        num_shards: usize,
        plan: CascadePlan,
    ) -> Result<Self> {
        if plan.dim() != memory.cols() {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "cascade plan covers {} dimensions but the memory has {}",
                    plan.dim(),
                    memory.cols()
                ),
            });
        }
        Self::build(memory, classes, num_shards, Some(Arc::new(plan)))
    }

    fn build(
        memory: SearchMemory,
        classes: Vec<usize>,
        num_shards: usize,
        plan: Option<Arc<CascadePlan>>,
    ) -> Result<Self> {
        if classes.len() != memory.rows() {
            return Err(ServeError::InvalidConfig {
                reason: format!("{} class labels for {} rows", classes.len(), memory.rows()),
            });
        }
        let num_shards = if num_shards == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            num_shards
        };
        let dim = memory.cols();
        let rows = memory.rows();
        let parts = memory
            .split_rows(num_shards)
            .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?;
        let spawn_workers = parts.len() > 1;
        let mut shards = Vec::with_capacity(parts.len());
        let mut workers = Vec::new();
        for (idx, (offset, part)) in parts.into_iter().enumerate() {
            let memory = Arc::new(part);
            // Bind the plan to this shard's rows once; workers and the
            // inline path reuse the derived prefix/suffix artifacts for
            // every flush.
            let cascade = match &plan {
                Some(plan) => Some(Arc::new(
                    BoundCascade::new(Arc::clone(&memory), plan.as_ref().clone())
                        .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?,
                )),
                None => None,
            };
            let chaos_panics = Arc::new(AtomicUsize::new(0));
            let supervisor = if spawn_workers {
                let (tx, handle) = spawn_worker(
                    idx,
                    Arc::clone(&memory),
                    cascade.clone(),
                    Arc::clone(&chaos_panics),
                )?;
                workers.push(handle);
                Some(Mutex::new(ShardSupervisor {
                    jobs: Some(tx),
                    generation: 0,
                    respawns_left: 1,
                }))
            } else {
                None
            };
            shards.push(Shard { offset, memory, cascade, supervisor, chaos_panics });
        }
        Ok(ShardedSearcher {
            dim,
            rows,
            classes: Arc::new(classes),
            plan,
            shards,
            workers: Mutex::new(workers),
        })
    }

    /// Builds a sharded searcher over a [`hdc::BinaryAm`]'s centroid rows
    /// and class labels.
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::new`].
    pub fn from_am(am: &hdc::BinaryAm, num_shards: usize) -> Result<Self> {
        ShardedSearcher::new(am.search_memory().clone(), am.class_labels().to_vec(), num_shards)
    }

    /// Like [`ShardedSearcher::with_cascade`] but the stage plan is
    /// auto-tuned from a sample of real queries before sharding
    /// ([`CascadePlan::tuned`] on the whole memory): every shard then
    /// runs the same tuned plan against its own rows, so the merged
    /// winners stay bit-identical to the unsharded search under any plan
    /// the tuner picks.
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::with_cascade`], plus
    /// [`ServeError::InvalidConfig`] when tuning rejects the sample
    /// (empty, or off-dimension).
    pub fn with_cascade_tuned(
        memory: SearchMemory,
        classes: Vec<usize>,
        num_shards: usize,
        sample: &QueryBatch,
    ) -> Result<Self> {
        let plan = CascadePlan::tuned(&memory, sample)
            .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?;
        Self::with_cascade(memory, classes, num_shards, plan)
    }

    /// Builds a cascade-mode sharded searcher over a [`hdc::BinaryAm`].
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::with_cascade`].
    pub fn from_am_cascade(
        am: &hdc::BinaryAm,
        num_shards: usize,
        plan: CascadePlan,
    ) -> Result<Self> {
        ShardedSearcher::with_cascade(
            am.search_memory().clone(),
            am.class_labels().to_vec(),
            num_shards,
            plan,
        )
    }

    /// [`ShardedSearcher::with_cascade_tuned`] over a [`hdc::BinaryAm`].
    ///
    /// # Errors
    ///
    /// As [`ShardedSearcher::with_cascade_tuned`].
    pub fn from_am_cascade_tuned(
        am: &hdc::BinaryAm,
        num_shards: usize,
        sample: &QueryBatch,
    ) -> Result<Self> {
        ShardedSearcher::with_cascade_tuned(
            am.search_memory().clone(),
            am.class_labels().to_vec(),
            num_shards,
            sample,
        )
    }

    /// The cascade plan shards run, when one is installed.
    pub fn cascade_plan(&self) -> Option<&CascadePlan> {
        self.plan.as_deref()
    }

    /// Number of row shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether shards execute on pinned worker threads (vs. inline).
    pub fn has_workers(&self) -> bool {
        self.shards.iter().any(|s| s.supervisor.is_some())
    }

    /// Shards whose workers died and exhausted their respawn budget, in
    /// ascending order. Searches keep answering **exactly over the
    /// surviving rows**; a non-empty result means answers no longer
    /// cover the full row space, which the serving layer surfaces as
    /// `Prediction::degraded` instead of failing the queries.
    pub fn missing_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.supervisor.as_ref().is_some_and(|m| {
                    m.lock().unwrap_or_else(PoisonError::into_inner).jobs.is_none()
                })
            })
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Whether any shard has degraded out of the row space. See
    /// [`ShardedSearcher::missing_shards`].
    pub fn degraded(&self) -> bool {
        !self.missing_shards().is_empty()
    }

    /// Chaos failpoint: makes `shard`'s worker panic on its next `count`
    /// jobs. Each injected panic kills the worker exactly as a real
    /// fault would; the supervisor's respawn-once-then-degrade path
    /// takes over from there. Intended for tests and chaos harnesses.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `shard` is out of
    /// range or the searcher runs inline (no workers to kill).
    pub fn inject_shard_panics(&self, shard: usize, count: usize) -> Result<()> {
        if !self.has_workers() {
            return Err(ServeError::InvalidConfig {
                reason: "cannot inject worker panics into an inline searcher".into(),
            });
        }
        let Some(target) = self.shards.get(shard) else {
            return Err(ServeError::InvalidConfig {
                reason: format!("shard {shard} out of range ({} shards)", self.shards.len()),
            });
        };
        target.chaos_panics.store(count, Ordering::Relaxed);
        Ok(())
    }

    /// Sends one `task` job for shard `idx` to its worker, respawning on
    /// a dead channel. Returns the worker generation the job landed on,
    /// or `None` when the shard is (or just became) degraded.
    fn dispatch(
        &self,
        idx: usize,
        batch: &Arc<QueryBatch>,
        task: ShardTask,
        reply: &SyncSender<ShardReply>,
    ) -> Option<u64> {
        let shard = &self.shards[idx];
        let sup = shard.supervisor.as_ref().expect("worker-backed searcher supervises shards");
        let mut sup = sup.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let sender = sup.jobs.as_ref()?;
            let job = Job { batch: Arc::clone(batch), task, reply: reply.clone() };
            if sender.send(job).is_ok() {
                return Some(sup.generation);
            }
            // The worker hung up between flushes; pay for a respawn here
            // and retry the send on the fresh worker.
            sup.jobs = None;
            if !self.respawn_locked(idx, &mut sup) {
                return None;
            }
        }
    }

    /// Respawns `idx`'s worker if budget remains. The caller holds the
    /// supervisor lock with `jobs` already cleared.
    fn respawn_locked(&self, idx: usize, sup: &mut ShardSupervisor) -> bool {
        if sup.respawns_left == 0 {
            return false;
        }
        sup.respawns_left -= 1;
        let shard = &self.shards[idx];
        match spawn_worker(
            idx,
            Arc::clone(&shard.memory),
            shard.cascade.clone(),
            Arc::clone(&shard.chaos_panics),
        ) {
            Ok((tx, handle)) => {
                sup.jobs = Some(tx);
                sup.generation += 1;
                self.workers.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
                true
            }
            Err(_) => false,
        }
    }

    /// Handles a worker death observed at `failed_generation`: when
    /// another flush already replaced the worker the replacement is
    /// reused for free, otherwise the respawn budget is spent. Returns
    /// whether `idx` has a live worker to retry on.
    fn revive(&self, idx: usize, failed_generation: u64) -> bool {
        let shard = &self.shards[idx];
        let sup = shard.supervisor.as_ref().expect("worker-backed searcher supervises shards");
        let mut sup = sup.lock().unwrap_or_else(PoisonError::into_inner);
        if sup.generation > failed_generation {
            return sup.jobs.is_some();
        }
        sup.jobs = None;
        self.respawn_locked(idx, &mut sup)
    }

    /// Runs `task` on every shard — inline when no workers exist, else
    /// fanned out to the pinned workers under death-and-respawn
    /// supervision — and collects the answers in shard order. A degraded
    /// shard yields `None`; the merge then answers exactly over the
    /// surviving rows.
    ///
    /// Collection is round-based: every round opens a **fresh** reply
    /// channel, dispatches the still-unanswered shards, drops its own
    /// sender, and drains until every job's sender clone is gone —
    /// either the worker replied, or it died and dropped the queued job
    /// (so a dead worker can never block the round). Shards whose
    /// workers died are revived (or degraded) and retried next round.
    fn per_shard_answers(
        &self,
        batch: &Arc<QueryBatch>,
        task: ShardTask,
    ) -> Result<Vec<Option<ShardAnswer>>> {
        let mut per_shard: Vec<Option<ShardAnswer>> =
            (0..self.shards.len()).map(|_| None).collect();
        if !self.has_workers() {
            for (idx, (slot, shard)) in per_shard.iter_mut().zip(&self.shards).enumerate() {
                let answer = shard_answer(&shard.memory, batch, shard.cascade.as_deref(), task)
                    .map_err(|e| ServeError::Model { reason: e.to_string() })?;
                check_answer_len(&answer, batch.len(), idx)?;
                *slot = Some(answer);
            }
            return Ok(per_shard);
        }
        let mut dead = vec![false; self.shards.len()];
        let mut last_panic: Option<String> = None;
        let mut pending: Vec<usize> = (0..self.shards.len()).collect();
        while !pending.is_empty() {
            let (reply_tx, reply_rx) = mpsc::sync_channel(pending.len());
            let mut dispatched: Vec<(usize, u64)> = Vec::with_capacity(pending.len());
            for idx in pending.drain(..) {
                match self.dispatch(idx, batch, task, &reply_tx) {
                    Some(generation) => dispatched.push((idx, generation)),
                    None => dead[idx] = true,
                }
            }
            drop(reply_tx);
            for (idx, outcome) in reply_rx.iter() {
                match outcome {
                    ShardOutcome::Answer(answer) => {
                        let answer =
                            answer.map_err(|e| ServeError::Model { reason: e.to_string() })?;
                        check_answer_len(&answer, batch.len(), idx)?;
                        per_shard[idx] = Some(answer);
                    }
                    // The worker died; the retry below (keyed on the
                    // missing answer) revives or degrades the shard.
                    ShardOutcome::Panicked(msg) => last_panic = Some(msg),
                }
            }
            for (idx, generation) in dispatched {
                if per_shard[idx].is_none() && !dead[idx] {
                    if self.revive(idx, generation) {
                        pending.push(idx);
                    } else {
                        dead[idx] = true;
                    }
                }
            }
        }
        if per_shard.iter().all(Option::is_none) {
            let detail = last_panic.map_or(String::new(), |msg| format!(" (last panic: {msg})"));
            return Err(ServeError::Model {
                reason: format!("all shard workers degraded{detail}"),
            });
        }
        Ok(per_shard)
    }

    /// Merges per-shard winners (ordered by ascending shard) into global
    /// winners. Indexing `winners[q]` cannot panic: every present answer
    /// was length-checked against the batch by `check_answer_len`.
    /// Strict `>` keeps the earliest (lowest-offset) shard on
    /// ties, and each shard's local winner already carries its own
    /// lowest-row tie-break, so the merged winner is exactly the
    /// unsharded one. Degraded shards (`None`) simply don't compete:
    /// the winner is exact over the surviving rows.
    fn merge(&self, per_shard: Vec<ShardWinners>, queries: usize) -> Vec<Winner> {
        (0..queries)
            .map(|q| {
                let mut best = (0usize, 0u32);
                let mut first = true;
                for (shard, winners) in self.shards.iter().zip(&per_shard) {
                    let Some(winners) = winners else { continue };
                    let (local_row, score) = winners[q];
                    if first || score > best.1 {
                        best = (shard.offset + local_row, score);
                        first = false;
                    }
                }
                Winner { row: best.0, class: self.classes[best.0], score: best.1 }
            })
            .collect()
    }

    /// Merges per-shard k-best lists (ordered by ascending shard) into
    /// the global k-best. Equal scores insert after their peers and
    /// shards contribute in ascending-offset order (each shard list
    /// already score-descending / local-row-ascending), so the merged
    /// slate carries the global highest-score / lowest-row tie-break
    /// exactly — bit-identical to the unsharded top-k. Degraded shards
    /// (`None`) contribute nothing: the slate is exact over the
    /// surviving rows (and may come up short of `k`).
    fn merge_topk(
        &self,
        per_shard: Vec<ShardTopKLists>,
        queries: usize,
        k: usize,
    ) -> Vec<Vec<Winner>> {
        let k = k.min(self.rows);
        (0..queries)
            .map(|q| {
                let mut slots: Vec<(usize, u32)> = Vec::with_capacity(k);
                for (shard, lists) in self.shards.iter().zip(&per_shard) {
                    let Some(lists) = lists else { continue };
                    for &(local_row, score) in &lists[q] {
                        if slots.len() == k {
                            if score <= slots[k - 1].1 {
                                // Shard lists are score-descending:
                                // nothing later here can make the slate.
                                break;
                            }
                            slots.pop();
                        }
                        let pos = slots.partition_point(|&(_, s)| s >= score);
                        slots.insert(pos, (shard.offset + local_row, score));
                    }
                }
                slots
                    .into_iter()
                    .map(|(row, score)| Winner { row, class: self.classes[row], score })
                    .collect()
            })
            .collect()
    }
}

impl Searchable for ShardedSearcher {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        if batch.dim() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, found: batch.dim() });
        }
        let queries = batch.len();
        let per_shard: Vec<ShardWinners> = self
            .per_shard_answers(&batch, ShardTask::Winners)?
            .into_iter()
            .map(|a| {
                a.map(|a| match a {
                    ShardAnswer::Winners(w) => w,
                    ShardAnswer::TopK(_) => unreachable!("winners task answered with top-k"),
                })
            })
            .collect();
        Ok(self.merge(per_shard, queries))
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        if batch.dim() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, found: batch.dim() });
        }
        let queries = batch.len();
        let per_shard: Vec<ShardTopKLists> = self
            .per_shard_answers(&batch, ShardTask::TopK(k))?
            .into_iter()
            .map(|a| {
                a.map(|a| match a {
                    ShardAnswer::TopK(lists) => lists,
                    ShardAnswer::Winners(_) => unreachable!("top-k task answered with winners"),
                })
            })
            .collect();
        Ok(self.merge_topk(per_shard, queries, k))
    }

    fn missing_shards(&self) -> Vec<usize> {
        ShardedSearcher::missing_shards(self)
    }
}

impl Drop for ShardedSearcher {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        for shard in &mut self.shards {
            if let Some(sup) = &mut shard.supervisor {
                sup.get_mut().unwrap_or_else(PoisonError::into_inner).jobs = None;
            }
        }
        for handle in self.workers.get_mut().unwrap_or_else(PoisonError::into_inner).drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::seeded;
    use hd_linalg::BitVector;
    use rand::Rng;

    fn random_memory(rows: usize, dim: usize, seed: u64) -> (SearchMemory, Vec<usize>) {
        let mut rng = seeded(seed);
        let vectors: Vec<BitVector> = (0..rows)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let classes = (0..rows).map(|r| r % 7).collect();
        (SearchMemory::from_rows(&vectors).unwrap(), classes)
    }

    fn random_batch(n: usize, dim: usize, seed: u64) -> Arc<QueryBatch> {
        let mut rng = seeded(seed);
        let queries: Vec<BitVector> = (0..n)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        Arc::new(QueryBatch::from_vectors(&queries).unwrap())
    }

    #[test]
    fn sharded_matches_unsharded_for_every_shard_count() {
        let (memory, classes) = random_memory(53, 96, 1);
        let batch = random_batch(17, 96, 2);
        let reference = memory.winners_batch(&batch).unwrap();
        for shards in [1usize, 2, 3, 4, 9] {
            let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), shards).unwrap();
            assert_eq!(sharded.has_workers(), sharded.num_shards() > 1, "{shards}");
            let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
            for (q, w) in winners.iter().enumerate() {
                assert_eq!((w.row, w.score), reference[q], "shards {shards}, query {q}");
                assert_eq!(w.class, classes[w.row]);
            }
        }
    }

    #[test]
    fn tie_break_prefers_lowest_row_across_shard_boundary() {
        // Rows 0 and 16 are identical; they land in different shards and
        // tie on every query — the merged winner must be row 0.
        let mut rows: Vec<BitVector> =
            (0..24).map(|_| BitVector::from_bools(&[false; 64])).collect();
        let hot = BitVector::from_bools(&[true; 64]);
        rows[0] = hot.clone();
        rows[16] = hot.clone();
        let memory = SearchMemory::from_rows(&rows).unwrap();
        let sharded = ShardedSearcher::new(memory, (0..24).collect(), 3).unwrap();
        assert!(sharded.num_shards() >= 2);
        let batch = Arc::new(QueryBatch::from_vectors(&[hot]).unwrap());
        let w = sharded.search_winners(batch).unwrap();
        assert_eq!((w[0].row, w[0].score), (0, 64));
    }

    #[test]
    fn sharded_topk_matches_unsharded_for_every_shard_count() {
        let (memory, classes) = random_memory(53, 96, 21);
        let batch = random_batch(17, 96, 22);
        for shards in [1usize, 2, 3, 4, 9] {
            let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), shards).unwrap();
            for k in [1usize, 3, 7, 53, 60] {
                let reference = memory.topk_batch(&batch, k).unwrap();
                let lists = sharded.search_topk(Arc::clone(&batch), k).unwrap();
                for (q, list) in lists.iter().enumerate() {
                    let got: Vec<(usize, u32)> = list.iter().map(|w| (w.row, w.score)).collect();
                    assert_eq!(got, reference.hits(q), "shards {shards}, k {k}, query {q}");
                    for w in list {
                        assert_eq!(w.class, classes[w.row]);
                    }
                }
            }
            assert!(sharded.search_topk(Arc::clone(&batch), 0).is_err());
        }
    }

    #[test]
    fn topk_merge_keeps_global_tie_break_across_shard_boundary() {
        // Rows 0 and 16 are identical and land in different shards; the
        // k-way merge must order the tie by global row index, not by
        // shard arrival order.
        let mut rows: Vec<BitVector> =
            (0..24).map(|_| BitVector::from_bools(&[false; 64])).collect();
        let hot = BitVector::from_bools(&[true; 64]);
        rows[0] = hot.clone();
        rows[16] = hot.clone();
        let memory = SearchMemory::from_rows(&rows).unwrap();
        let sharded = ShardedSearcher::new(memory, (0..24).collect(), 3).unwrap();
        assert!(sharded.num_shards() >= 2);
        let batch = Arc::new(QueryBatch::from_vectors(&[hot]).unwrap());
        let lists = sharded.search_topk(batch, 4).unwrap();
        let got: Vec<(usize, u32)> = lists[0].iter().map(|w| (w.row, w.score)).collect();
        // The two tied winners first (row order), then the zero rows by
        // row order.
        assert_eq!(got, vec![(0, 64), (16, 64), (1, 0), (2, 0)]);
    }

    #[test]
    fn cascade_sharded_topk_matches_unsharded() {
        let (memory, classes) = random_memory(53, 192, 25);
        let batch = random_batch(17, 192, 26);
        for shards in [1usize, 3] {
            for plan in [CascadePlan::exact(192), CascadePlan::prefix(192, 64).unwrap()] {
                let sharded = ShardedSearcher::with_cascade(
                    memory.clone(),
                    classes.clone(),
                    shards,
                    plan.clone(),
                )
                .unwrap();
                for k in [1usize, 5] {
                    let reference = memory.topk_batch(&batch, k).unwrap();
                    let lists = sharded.search_topk(Arc::clone(&batch), k).unwrap();
                    for (q, list) in lists.iter().enumerate() {
                        let got: Vec<(usize, u32)> =
                            list.iter().map(|w| (w.row, w.score)).collect();
                        assert_eq!(
                            got,
                            reference.hits(q),
                            "shards {shards}, plan {plan:?}, k {k}, query {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cascade_shards_match_exact_for_every_shard_count() {
        let (memory, classes) = random_memory(53, 192, 11);
        let batch = random_batch(17, 192, 12);
        let reference = memory.winners_batch(&batch).unwrap();
        for shards in [1usize, 2, 3, 7] {
            for plan in [
                CascadePlan::exact(192),
                CascadePlan::prefix(192, 64).unwrap(),
                CascadePlan::uniform(192, 5).unwrap(),
            ] {
                let sharded = ShardedSearcher::with_cascade(
                    memory.clone(),
                    classes.clone(),
                    shards,
                    plan.clone(),
                )
                .unwrap();
                assert_eq!(sharded.cascade_plan(), Some(&plan));
                let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
                for (q, w) in winners.iter().enumerate() {
                    assert_eq!(
                        (w.row, w.score),
                        reference[q],
                        "shards {shards}, plan {plan:?}, query {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn tuned_cascade_shards_match_exact() {
        let (memory, classes) = random_memory(53, 256, 14);
        let batch = random_batch(24, 256, 15);
        let reference = memory.winners_batch(&batch).unwrap();
        for shards in [1usize, 3] {
            let sharded = ShardedSearcher::with_cascade_tuned(
                memory.clone(),
                classes.clone(),
                shards,
                &batch,
            )
            .unwrap();
            assert!(sharded.cascade_plan().is_some(), "tuned plan is installed");
            let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
            for (q, w) in winners.iter().enumerate() {
                assert_eq!((w.row, w.score), reference[q], "shards {shards}, query {q}");
            }
        }
        let wrong = random_batch(2, 64, 16);
        assert!(ShardedSearcher::with_cascade_tuned(memory, classes, 2, &wrong).is_err());
    }

    #[test]
    fn cascade_plan_dimension_validated() {
        let (memory, classes) = random_memory(16, 64, 13);
        assert!(ShardedSearcher::with_cascade(
            memory.clone(),
            classes.clone(),
            2,
            CascadePlan::exact(65)
        )
        .is_err());
        let ok =
            ShardedSearcher::with_cascade(memory, classes, 2, CascadePlan::prefix(64, 16).unwrap())
                .unwrap();
        assert!(ok.cascade_plan().is_some());
    }

    #[test]
    fn shard_count_clamped_and_validated() {
        let (memory, classes) = random_memory(10, 64, 3);
        let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), 100).unwrap();
        assert!(sharded.num_shards() <= 2, "10 rows = 2 lane blocks at most");
        assert!(ShardedSearcher::new(memory, classes[..5].to_vec(), 2).is_err());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (memory, classes) = random_memory(16, 64, 4);
        let sharded = ShardedSearcher::new(memory, classes, 2).unwrap();
        let batch = random_batch(3, 65, 5);
        assert!(matches!(
            sharded.search_winners(batch),
            Err(ServeError::DimensionMismatch { expected: 64, found: 65 })
        ));
    }

    #[test]
    fn injected_panic_respawns_worker_and_results_stay_exact() {
        let (memory, classes) = random_memory(53, 96, 31);
        let batch = random_batch(9, 96, 32);
        let reference = memory.winners_batch(&batch).unwrap();
        let sharded = ShardedSearcher::new(memory, classes, 3).unwrap();
        assert!(sharded.has_workers());
        sharded.inject_shard_panics(1, 1).unwrap();
        let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
        for (q, w) in winners.iter().enumerate() {
            assert_eq!((w.row, w.score), reference[q], "query {q}");
        }
        assert!(sharded.missing_shards().is_empty(), "one panic is absorbed by the respawn");
        assert!(!sharded.degraded());
        // The respawned worker keeps serving.
        let again = sharded.search_winners(batch).unwrap();
        for (q, w) in again.iter().enumerate() {
            assert_eq!((w.row, w.score), reference[q], "query {q} after respawn");
        }
    }

    #[test]
    fn repeated_panics_degrade_shard_and_answers_cover_survivors() {
        let mut rng = seeded(41);
        let dim = 96;
        let vectors: Vec<BitVector> = (0..53)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let memory = SearchMemory::from_rows(&vectors).unwrap();
        let classes: Vec<usize> = (0..53).map(|r| r % 7).collect();
        let batch = random_batch(9, dim, 42);
        let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), 3).unwrap();
        assert!(sharded.num_shards() >= 2);
        // More panics than the respawn budget: shard 0 dies for good.
        sharded.inject_shard_panics(0, 100).unwrap();
        let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
        assert_eq!(sharded.missing_shards(), vec![0]);
        assert!(sharded.degraded());
        // Degraded answers are exact over the surviving rows: rebuild the
        // reference without shard 0's rows.
        let parts = memory.split_rows(3).unwrap();
        let lost = parts[1].0; // shard 0 covers rows [0, parts[1].0)
        let survivors = SearchMemory::from_rows(&vectors[lost..]).unwrap();
        let reference = survivors.winners_batch(&batch).unwrap();
        for (q, w) in winners.iter().enumerate() {
            let (local_row, score) = reference[q];
            assert_eq!((w.row, w.score), (lost + local_row, score), "query {q}");
            assert_eq!(w.class, classes[w.row]);
        }
        // Top-k likewise skips the dead shard.
        let lists = sharded.search_topk(Arc::clone(&batch), 5).unwrap();
        let topk = survivors.topk_batch(&batch, 5).unwrap();
        for (q, list) in lists.iter().enumerate() {
            let got: Vec<(usize, u32)> = list.iter().map(|w| (w.row - lost, w.score)).collect();
            assert_eq!(got, topk.hits(q), "query {q}");
        }
        // Degradation is sticky; later searches stay degraded but exact.
        assert_eq!(sharded.missing_shards(), vec![0]);
    }

    #[test]
    fn all_shards_degraded_fails_instead_of_answering_empty() {
        let (memory, classes) = random_memory(53, 96, 51);
        let batch = random_batch(4, 96, 52);
        let sharded = ShardedSearcher::new(memory, classes, 3).unwrap();
        for shard in 0..sharded.num_shards() {
            sharded.inject_shard_panics(shard, 100).unwrap();
        }
        assert!(matches!(
            sharded.search_winners(Arc::clone(&batch)),
            Err(ServeError::Model { .. })
        ));
        assert_eq!(sharded.missing_shards().len(), sharded.num_shards());
    }

    #[test]
    fn chaos_injection_validated() {
        let (memory, classes) = random_memory(53, 96, 61);
        let sharded = ShardedSearcher::new(memory.clone(), classes.clone(), 3).unwrap();
        assert!(sharded.inject_shard_panics(99, 1).is_err(), "out of range");
        let inline = ShardedSearcher::new(memory, classes, 1).unwrap();
        assert!(!inline.has_workers());
        assert!(inline.inject_shard_panics(0, 1).is_err(), "inline has no workers");
        assert!(inline.missing_shards().is_empty());
    }

    #[test]
    fn degraded_shard_cascade_stays_exact_over_survivors() {
        let mut rng = seeded(71);
        let dim = 192;
        let vectors: Vec<BitVector> = (0..53)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let memory = SearchMemory::from_rows(&vectors).unwrap();
        let classes: Vec<usize> = (0..53).map(|r| r % 7).collect();
        let batch = random_batch(9, dim, 72);
        let plan = CascadePlan::prefix(dim, 64).unwrap();
        let sharded = ShardedSearcher::with_cascade(memory.clone(), classes, 3, plan).unwrap();
        sharded.inject_shard_panics(2, 100).unwrap();
        let winners = sharded.search_winners(Arc::clone(&batch)).unwrap();
        assert_eq!(sharded.missing_shards(), vec![2]);
        let parts = memory.split_rows(3).unwrap();
        let lost_offset = parts[2].0; // shard 2 covers the tail rows
        let survivors = SearchMemory::from_rows(&vectors[..lost_offset]).unwrap();
        let reference = survivors.winners_batch(&batch).unwrap();
        for (q, w) in winners.iter().enumerate() {
            assert_eq!((w.row, w.score), reference[q], "query {q}");
        }
    }
}
