//! Error types for the serving layer.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors surfaced to submitters and operators of a [`crate::Server`].
///
/// `Clone` on purpose: one model-side failure during a flush must be
/// delivered to every query of that batch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// A query's dimensionality does not match the served model's.
    DimensionMismatch {
        /// The model's hypervector dimensionality `D`.
        expected: usize,
        /// The submitted query's length.
        found: usize,
    },
    /// The server was shut down before (or while) the query was answered.
    Shutdown,
    /// The model rejected the batch during a flush; every query of the
    /// batch receives this error.
    Model {
        /// The model-side failure, stringified (the concrete error types
        /// differ per adapted crate).
        reason: String,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The submitter's deadline expired before the query's batch was
    /// flushed and answered. The query itself is **not** lost: the flush
    /// still computes and records its answer server-side; only this
    /// waiter gave up.
    Timeout,
    /// The server is at its configured in-flight limit
    /// ([`crate::ServeConfig::max_in_flight`]) and shed the query at
    /// admission. Nothing was enqueued; the submitter may retry later.
    Overloaded,
    /// A packed wire payload was rejected before enqueueing — its words
    /// do not form whole `D`-bit queries (see
    /// [`crate::Server::submit_packed`]). Nothing was enqueued; client
    /// input must surface as a typed error, never a panic.
    MalformedPayload {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DimensionMismatch { expected, found } => {
                write!(f, "query length {found} does not match model dimensionality {expected}")
            }
            ServeError::Shutdown => write!(f, "server shut down"),
            ServeError::Model { reason } => write!(f, "model error during flush: {reason}"),
            ServeError::InvalidConfig { reason } => write!(f, "invalid serve config: {reason}"),
            ServeError::Timeout => write!(f, "deadline expired before the batch was answered"),
            ServeError::Overloaded => {
                write!(f, "server at in-flight capacity; query shed at admission")
            }
            ServeError::MalformedPayload { reason } => {
                write!(f, "malformed packed payload: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ServeError::DimensionMismatch { expected: 128, found: 64 };
        assert!(e.to_string().contains("128"));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        assert!(ServeError::Model { reason: "x".into() }.to_string().contains('x'));
        assert!(ServeError::InvalidConfig { reason: "y".into() }.to_string().contains('y'));
        assert!(ServeError::Timeout.to_string().contains("deadline"));
        assert!(ServeError::Overloaded.to_string().contains("capacity"));
        assert!(ServeError::MalformedPayload { reason: "z".into() }.to_string().contains('z'));
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<ServeError>();
    }
}
