//! Hot model swap: an `Arc`-based generation registry.
//!
//! The registry holds the *current* model generation behind a short
//! read-locked `Arc` clone. A flush clones the `Arc` once and answers its
//! whole batch from that snapshot, so
//!
//! * [`ModelRegistry::publish`] never blocks in-flight searches (they own
//!   their snapshot; the old generation is freed when its last flush
//!   finishes), and
//! * one batch can never mix two model generations — the invariant the
//!   micro-batcher stress suite pins.
//!
//! This is the hook the `imc_sim` fault-injection path uses: program a
//! degraded [`imc_sim::FaultyAmMapping`] off-line (e.g. via
//! [`imc_sim::FaultyAmMapping::inject`]) and republish it mid-traffic.

use crate::error::{Result, ServeError};
use crate::searchable::Searchable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One published model generation.
pub struct Generation {
    id: u64,
    model: Arc<dyn Searchable>,
}

impl Generation {
    /// Monotonic generation id (the first published model is generation
    /// 1).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The generation's model.
    pub fn model(&self) -> &Arc<dyn Searchable> {
        &self.model
    }
}

impl std::fmt::Debug for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generation")
            .field("id", &self.id)
            .field("dim", &self.model.dim())
            .field("rows", &self.model.rows())
            .finish()
    }
}

/// Atomic-swap registry of the currently served model.
pub struct ModelRegistry {
    current: RwLock<Arc<Generation>>,
    next_id: AtomicU64,
    /// Dimensionality every published generation must keep (in-flight
    /// queries were validated against it at submit time).
    dim: usize,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("dim", &self.dim)
            .field("generation", &self.generation())
            .finish()
    }
}

impl ModelRegistry {
    /// Creates a registry serving `model` as generation 1.
    pub fn new(model: Arc<dyn Searchable>) -> Self {
        let dim = model.dim();
        ModelRegistry {
            current: RwLock::new(Arc::new(Generation { id: 1, model })),
            next_id: AtomicU64::new(2),
            dim,
        }
    }

    /// Dimensionality served by every generation of this registry.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The current generation's id.
    pub fn generation(&self) -> u64 {
        self.snapshot().id
    }

    /// Clones out the current generation — the per-flush snapshot.
    pub fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().expect("registry lock poisoned"))
    }

    /// Atomically swaps in a new model generation and returns its id.
    /// In-flight flushes keep answering from the snapshot they already
    /// hold; later flushes see the new model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DimensionMismatch`] if the new model's
    /// dimensionality differs from the registry's (queued queries were
    /// already validated against it).
    pub fn publish(&self, model: Arc<dyn Searchable>) -> Result<u64> {
        if model.dim() != self.dim {
            return Err(ServeError::DimensionMismatch { expected: self.dim, found: model.dim() });
        }
        // Allocate the id while holding the write lock so concurrent
        // publishes install strictly increasing generations (an id drawn
        // outside the lock could be installed after a newer one, leaving
        // an older model current).
        let mut current = self.current.write().expect("registry lock poisoned");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        *current = Arc::new(Generation { id, model });
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::{BitMatrix, SearchMemory};

    fn memory(rows: usize, dim: usize) -> Arc<dyn Searchable> {
        Arc::new(SearchMemory::new(BitMatrix::zeros(rows, dim)))
    }

    #[test]
    fn publish_bumps_generation_and_keeps_old_snapshots_alive() {
        let registry = ModelRegistry::new(memory(8, 64));
        assert_eq!(registry.generation(), 1);
        let old = registry.snapshot();
        let id = registry.publish(memory(16, 64)).unwrap();
        assert_eq!(id, 2);
        assert_eq!(registry.generation(), 2);
        // The pre-swap snapshot still answers from the old model.
        assert_eq!(old.model().rows(), 8);
        assert_eq!(registry.snapshot().model().rows(), 16);
    }

    #[test]
    fn publish_rejects_dimension_change() {
        let registry = ModelRegistry::new(memory(8, 64));
        assert!(matches!(
            registry.publish(memory(8, 128)),
            Err(ServeError::DimensionMismatch { expected: 64, found: 128 })
        ));
        assert_eq!(registry.generation(), 1, "failed publish must not swap");
    }
}
