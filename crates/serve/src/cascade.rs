//! Serving adapter for the progressive-precision cascade search.
//!
//! A [`CascadeSearcher`] wraps a [`SearchMemory`] (plus per-row class
//! labels) and answers every served batch through
//! [`SearchMemory::search_cascade`]: dimension prefixes are scored
//! first and centroids that provably cannot win are pruned before the
//! remaining dimensions are spent. Winners are bit-identical to the
//! exact adapters — the cascade is an execution strategy, not an
//! approximation — so it can be hot-swapped behind a
//! [`crate::ModelRegistry`] without any observable behavior change
//! beyond latency.
//!
//! For sharded serving, [`crate::ShardedSearcher::with_cascade`] runs
//! the same plan inside every shard worker: shards prune independently
//! (each against its own rows), and the strict ascending-shard merge is
//! untouched — per-shard cascade winners equal per-shard exact winners,
//! so the merged result equals the unsharded one.

use crate::error::{Result, ServeError};
use crate::searchable::{check_topk, Searchable, Winner};
use hd_linalg::{BoundCascade, CascadePlan, QueryBatch, SearchMemory};
use std::sync::Arc;

/// An unsharded [`Searchable`] that answers batches with the cascade.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitVector, CascadePlan, QueryBatch, SearchMemory};
/// use hd_serve::{CascadeSearcher, Searchable};
/// use std::sync::Arc;
///
/// let rows: Vec<BitVector> =
///     (0..16).map(|r| BitVector::from_bools(&[r % 2 == 0, true, r % 3 == 0, false])).collect();
/// let memory = SearchMemory::from_rows(&rows).unwrap();
/// let plan = CascadePlan::prefix(4, 2).unwrap();
/// let searcher = CascadeSearcher::new(memory.clone(), (0..16).collect(), plan).unwrap();
/// let batch = Arc::new(QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 4])]).unwrap());
/// let winners = searcher.search_winners(Arc::clone(&batch)).unwrap();
/// assert_eq!(winners[0].row, memory.winners_batch(&batch).unwrap()[0].0);
/// ```
#[derive(Debug, Clone)]
pub struct CascadeSearcher {
    /// The plan bound to the memory: stage-0 prefix sub-memory and
    /// row-suffix table derived once at construction, reused every
    /// flush — nothing is re-packed on the search path.
    bound: BoundCascade,
    classes: Vec<usize>,
}

impl CascadeSearcher {
    /// Wraps a memory, its per-row class labels, and the stage plan
    /// every served batch will run. The plan's derived artifacts
    /// (prefix sub-memory, row-suffix table) are built here, once.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `classes` disagrees
    /// with the memory's row count, the memory is empty, or the plan's
    /// dimensionality differs from the memory's.
    pub fn new(memory: SearchMemory, classes: Vec<usize>, plan: CascadePlan) -> Result<Self> {
        if classes.len() != memory.rows() {
            return Err(ServeError::InvalidConfig {
                reason: format!("{} class labels for {} rows", classes.len(), memory.rows()),
            });
        }
        let bound = BoundCascade::new(Arc::new(memory), plan)
            .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?;
        Ok(CascadeSearcher { bound, classes })
    }

    /// Builds a cascade searcher over a [`hdc::BinaryAm`]'s centroid
    /// rows and class labels.
    ///
    /// # Errors
    ///
    /// As [`CascadeSearcher::new`].
    pub fn from_am(am: &hdc::BinaryAm, plan: CascadePlan) -> Result<Self> {
        CascadeSearcher::new(am.search_memory().clone(), am.class_labels().to_vec(), plan)
    }

    /// Like [`CascadeSearcher::new`] but the stage plan is auto-tuned
    /// from a sample of real queries ([`CascadePlan::tuned`]) instead of
    /// hand-picked — point `sample` at representative traffic and the
    /// adapter serves whatever plan the memory's popcount profile
    /// supports (possibly the exact one-stage plan, which is correct for
    /// workloads the Hamming bound cannot prune). Candidate plans are
    /// priced with the once-per-host calibrated
    /// [`hd_linalg::CostModel`]; pin `HD_LINALG_CALIBRATION=fallback`
    /// when plans must be identical across hosts.
    ///
    /// # Errors
    ///
    /// As [`CascadeSearcher::new`], plus [`ServeError::InvalidConfig`]
    /// when tuning rejects the sample (empty, or off-dimension).
    pub fn tuned(memory: SearchMemory, classes: Vec<usize>, sample: &QueryBatch) -> Result<Self> {
        let plan = CascadePlan::tuned(&memory, sample)
            .map_err(|e| ServeError::InvalidConfig { reason: e.to_string() })?;
        CascadeSearcher::new(memory, classes, plan)
    }

    /// [`CascadeSearcher::tuned`] over a [`hdc::BinaryAm`]'s centroid
    /// rows and class labels.
    ///
    /// # Errors
    ///
    /// As [`CascadeSearcher::tuned`].
    pub fn from_am_tuned(am: &hdc::BinaryAm, sample: &QueryBatch) -> Result<Self> {
        CascadeSearcher::tuned(am.search_memory().clone(), am.class_labels().to_vec(), sample)
    }

    /// The stage plan every served batch runs.
    pub fn plan(&self) -> &CascadePlan {
        self.bound.plan()
    }
}

impl Searchable for CascadeSearcher {
    fn dim(&self) -> usize {
        self.bound.memory().cols()
    }

    fn rows(&self) -> usize {
        self.bound.memory().rows()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        if batch.dim() != self.bound.memory().cols() {
            return Err(ServeError::DimensionMismatch {
                expected: self.bound.memory().cols(),
                found: batch.dim(),
            });
        }
        let results =
            self.bound.search(&batch).map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(results
            .winners()
            .iter()
            .map(|&(row, score)| Winner { row, class: self.classes[row], score })
            .collect())
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        if batch.dim() != self.bound.memory().cols() {
            return Err(ServeError::DimensionMismatch {
                expected: self.bound.memory().cols(),
                found: batch.dim(),
            });
        }
        let results = self
            .bound
            .search_topk(&batch, k)
            .map_err(|e| ServeError::Model { reason: e.to_string() })?;
        let topk = results.into_topk();
        Ok((0..topk.len())
            .map(|q| {
                topk.hits(q)
                    .iter()
                    .map(|&(row, score)| Winner { row, class: self.classes[row], score })
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::seeded;
    use hd_linalg::BitVector;
    use rand::Rng;

    fn random_memory(rows: usize, dim: usize, seed: u64) -> (SearchMemory, Vec<usize>) {
        let mut rng = seeded(seed);
        let vectors: Vec<BitVector> = (0..rows)
            .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let classes = (0..rows).map(|r| r % 5).collect();
        (SearchMemory::from_rows(&vectors).unwrap(), classes)
    }

    #[test]
    fn cascade_adapter_matches_exact_adapter() {
        let (memory, classes) = random_memory(24, 128, 51);
        let mut rng = seeded(52);
        let queries: Vec<BitVector> = (0..13)
            .map(|_| BitVector::from_bools(&(0..128).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = Arc::new(QueryBatch::from_vectors(&queries).unwrap());
        let reference = memory.winners_batch(&batch).unwrap();
        for plan in [
            CascadePlan::exact(128),
            CascadePlan::prefix(128, 32).unwrap(),
            CascadePlan::uniform(128, 4).unwrap(),
        ] {
            let searcher = CascadeSearcher::new(memory.clone(), classes.clone(), plan).unwrap();
            let winners = searcher.search_winners(Arc::clone(&batch)).unwrap();
            for (q, w) in winners.iter().enumerate() {
                assert_eq!((w.row, w.score), reference[q]);
                assert_eq!(w.class, classes[w.row]);
            }
        }
    }

    #[test]
    fn cascade_adapter_topk_matches_fused_sweep() {
        let (memory, classes) = random_memory(24, 128, 61);
        let mut rng = seeded(62);
        let queries: Vec<BitVector> = (0..13)
            .map(|_| BitVector::from_bools(&(0..128).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = Arc::new(QueryBatch::from_vectors(&queries).unwrap());
        for plan in [
            CascadePlan::exact(128),
            CascadePlan::prefix(128, 32).unwrap(),
            CascadePlan::uniform(128, 4).unwrap(),
        ] {
            let searcher = CascadeSearcher::new(memory.clone(), classes.clone(), plan).unwrap();
            for k in [1usize, 4, 24, 30] {
                let reference = memory.topk_batch(&batch, k).unwrap();
                let lists = searcher.search_topk(Arc::clone(&batch), k).unwrap();
                for (q, list) in lists.iter().enumerate() {
                    let got: Vec<(usize, u32)> = list.iter().map(|w| (w.row, w.score)).collect();
                    assert_eq!(got, reference.hits(q), "k {k}, query {q}");
                    for w in list {
                        assert_eq!(w.class, classes[w.row]);
                    }
                }
            }
            let searcher = CascadeSearcher::new(
                memory.clone(),
                classes.clone(),
                CascadePlan::prefix(128, 32).unwrap(),
            )
            .unwrap();
            assert!(searcher.search_topk(Arc::clone(&batch), 0).is_err());
            let bad = Arc::new(QueryBatch::from_vectors(&[BitVector::zeros(63)]).unwrap());
            assert!(searcher.search_topk(bad, 2).is_err());
        }
    }

    #[test]
    fn tuned_adapter_matches_exact_adapter() {
        let (memory, classes) = random_memory(24, 512, 54);
        let mut rng = seeded(55);
        let queries: Vec<BitVector> = (0..20)
            .map(|_| BitVector::from_bools(&(0..512).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = Arc::new(QueryBatch::from_vectors(&queries).unwrap());
        let searcher = CascadeSearcher::tuned(memory.clone(), classes, &batch).unwrap();
        let reference = memory.winners_batch(&batch).unwrap();
        let winners = searcher.search_winners(Arc::clone(&batch)).unwrap();
        for (q, w) in winners.iter().enumerate() {
            assert_eq!((w.row, w.score), reference[q]);
        }
        // Empty / off-dimension samples are configuration errors.
        let empty = QueryBatch::from_matrix(hd_linalg::BitMatrix::zeros(0, 512));
        assert!(CascadeSearcher::tuned(memory.clone(), (0..24).map(|r| r % 5).collect(), &empty)
            .is_err());
        let wrong = QueryBatch::from_vectors(&[BitVector::zeros(64)]).unwrap();
        assert!(CascadeSearcher::tuned(memory, (0..24).map(|r| r % 5).collect(), &wrong).is_err());
    }

    #[test]
    fn config_validation() {
        let (memory, classes) = random_memory(8, 64, 53);
        assert!(CascadeSearcher::new(
            memory.clone(),
            classes[..4].to_vec(),
            CascadePlan::exact(64)
        )
        .is_err());
        assert!(
            CascadeSearcher::new(memory.clone(), classes.clone(), CascadePlan::exact(65)).is_err()
        );
        let ok =
            CascadeSearcher::new(memory, classes, CascadePlan::prefix(64, 16).unwrap()).unwrap();
        assert_eq!(ok.plan().stages(), 2);
        assert_eq!((Searchable::dim(&ok), Searchable::rows(&ok)), (64, 8));
        let bad = Arc::new(QueryBatch::from_vectors(&[BitVector::zeros(63)]).unwrap());
        assert!(matches!(
            ok.search_winners(bad),
            Err(ServeError::DimensionMismatch { expected: 64, found: 63 })
        ));
    }
}
