//! # hd-serve — sharded micro-batching associative-search service
//!
//! The batched popcount pipeline in `hd_linalg` answers queries at tens
//! of nanoseconds each — **when someone hands it a batch**. Production
//! traffic doesn't arrive as batches: it arrives as millions of
//! independent single-query requests. This crate is the serving layer
//! that closes that gap:
//!
//! * **Micro-batching** ([`Server`]) — concurrent single-query
//!   submissions are coalesced into SIMD-sized [`hd_linalg::QueryBatch`]es
//!   and flushed either when full ([`ServeConfig::max_batch`], executed
//!   inline by the filling submitter — flat combining) or when the oldest
//!   query has waited out the latency budget ([`ServeConfig::max_delay`],
//!   executed by a background deadline flusher). No submission is ever
//!   lost: full flush, deadline flush, or shutdown drain answers it.
//! * **Sharding** ([`ShardedSearcher`]) — a [`hd_linalg::SearchMemory`]'s
//!   class-row space splits into contiguous, block-aligned row shards,
//!   each pinned to a worker thread with its own pre-packed blocked
//!   mirror; per-shard winners merge under the workspace's exact
//!   highest-score / lowest-row tie-break.
//! * **Cascade serving** ([`CascadeSearcher`],
//!   [`ShardedSearcher::with_cascade`]) — batches are answered through
//!   the progressive-precision cascade of `hd_linalg`: dimension
//!   prefixes first, provably-losing centroids pruned, survivors
//!   finished. Winners stay bit-identical to the exact adapters; shards
//!   prune independently and the strict merge is unchanged.
//! * **Hot model swap** ([`ModelRegistry`]) — the served model lives
//!   behind an `Arc` snapshot; [`Server::publish`] swaps generations
//!   atomically while in-flight flushes finish on the snapshot they
//!   hold, so a batch never mixes generations. This is the hook the
//!   `imc_sim` fault-injection path uses to republish a degraded mapping
//!   (see [`imc_sim::FaultyAmMapping::inject`]).
//! * **Wire front-end** ([`net::WireServer`] / [`net::WireClient`]) — a
//!   std-only TCP / Unix-domain-socket protocol whose QUERY payload *is*
//!   the packed batch layout, so frames land in the pending batch as one
//!   word copy ([`Server::submit_packed`]); responses stream back
//!   per-flush with typed error frames for malformed input.
//!
//! Any associative memory in the workspace plugs in through the
//! [`Searchable`] trait: `hdc::BinaryAm`, `memhd::MemhdModel` (its
//! quantized AM), `imc_sim::AmMapping` / `FaultyAmMapping`, the four
//! baselines, raw `hd_linalg::SearchMemory`, or a [`ShardedSearcher`]
//! wrapping any of their row stores.
//!
//! # Example
//!
//! ```
//! use hd_linalg::BitVector;
//! use hd_serve::{ServeConfig, Server, ShardedSearcher};
//! use hdc::BinaryAm;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let am = BinaryAm::from_centroids(2, vec![
//!     (0, BitVector::from_bools(&[true, true, false, false])),
//!     (1, BitVector::from_bools(&[false, false, true, true])),
//! ])?;
//! // Shard the AM's rows (2 shards) and serve with a 100 µs budget.
//! let sharded = ShardedSearcher::from_am(&am, 2)?;
//! let server = Server::start(Arc::new(sharded), ServeConfig {
//!     max_batch: 64,
//!     max_delay: Duration::from_micros(100),
//!     ..Default::default()
//! })?;
//! let pred = server.classify(BitVector::from_bools(&[true, true, true, false]).as_view())?;
//! assert_eq!(pred.class, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cascade;
mod error;
pub mod net;
mod registry;
mod searchable;
mod server;
mod shard;

pub use cascade::CascadeSearcher;
pub use error::{Result, ServeError};
pub use registry::{Generation, ModelRegistry};
pub use searchable::{Searchable, Winner};
pub use server::{Pending, PendingTopK, Prediction, ServeConfig, Server, ServerStats};
pub use shard::ShardedSearcher;
