//! A small blocking client for the wire protocol.
//!
//! [`WireClient`] is deliberately thin: it handshakes to learn the
//! served model's shape, packs queries into QUERY frames (the packed
//! words of a [`BitVector`] *are* the payload — no per-bit translation),
//! and decodes whatever the server streams back. Sends and receives are
//! independent, so a caller can pipeline many frames before collecting
//! responses; responses arrive in submission order per connection.

use super::wire::{self, ErrorBody, WireError};
use super::{
    Stream, FLAG_DEGRADED, FLAG_LIVENESS, FT_ERROR, FT_GOAWAY, FT_HELLO_ACK, FT_PING, FT_PONG,
    FT_RESPONSE,
};
use crate::Prediction;
use hd_linalg::BitVector;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Default bound on [`WireClient::connect_tcp`]'s connect attempt and on
/// the HELLO_ACK wait of both transports — a hung or unroutable server
/// fails the constructor instead of blocking it forever.
pub(crate) const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// One frame received from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEvent {
    /// A query was answered. `hits` is the top-k slate, best first
    /// (length 1 for plain classification).
    Response {
        /// The query id assigned at send time.
        id: u64,
        /// The ranked hits, each carrying generation and degraded flag.
        hits: Vec<Prediction>,
    },
    /// The server rejected a query (or the connection) with a typed
    /// error frame.
    Error(ErrorBody),
    /// The server echoed a [`WireClient::send_ping`] probe.
    Pong {
        /// The nonce the probe carried.
        nonce: u64,
    },
    /// The server stops accepting queries on this connection (graceful
    /// drain or shutdown). Every query with an id at or below
    /// `last_accepted` will still be answered; everything after it was
    /// never accepted and must be retried on another connection.
    /// `last_accepted` is [`super::GOAWAY_NONE`] when nothing was
    /// accepted. May arrive more than once; repeats are harmless.
    GoAway {
        /// Id of the last accepted query on this connection.
        last_accepted: u64,
    },
}

/// A blocking wire-protocol client over TCP or a Unix-domain socket.
///
/// Ids are assigned sequentially per client, starting at 0; the id range
/// returned by the send methods matches the `id` fields of the
/// responses that come back.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
    dim: u32,
    rows: u32,
    generation: u64,
    liveness: bool,
    next_id: u64,
}

impl WireClient {
    /// Connects over TCP and performs the HELLO handshake, bounding both
    /// the connect attempt and the HELLO_ACK wait by a default 30 s
    /// timeout (use [`WireClient::connect_tcp_timeout`] to choose it) —
    /// a hung, unroutable, or accept-and-stall server fails the call
    /// instead of blocking it forever.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on connect/transport failure or timeout,
    /// [`WireError::Protocol`] if the peer is not a wire server,
    /// [`WireError::Remote`] if the server answered the handshake with
    /// an error frame (e.g. [`super::code::CONNECTION_LIMIT`]).
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> Result<Self, WireError> {
        Self::connect_tcp_timeout(addr, DEFAULT_CONNECT_TIMEOUT)
    }

    /// [`WireClient::connect_tcp`] with an explicit bound. Every
    /// resolved address is tried with [`TcpStream::connect_timeout`]
    /// before giving up; the HELLO_ACK wait runs under a read timeout of
    /// the same `timeout`.
    ///
    /// # Errors
    ///
    /// As [`WireClient::connect_tcp`].
    pub fn connect_tcp_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Self, WireError> {
        let mut last_err: Option<std::io::Error> = None;
        let mut stream = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some(stream) = stream else {
            return Err(WireError::Io(last_err.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to no socket addresses",
                )
            })));
        };
        let _ = stream.set_nodelay(true);
        Self::handshake(Stream::Tcp(stream), timeout)
    }

    /// Connects over a Unix-domain socket and performs the handshake.
    /// The UDS connect itself is local and immediate, but the HELLO_ACK
    /// wait is bounded like the TCP path's (default 30 s; see
    /// [`WireClient::connect_uds_timeout`]) so a hung server cannot
    /// block the constructor.
    ///
    /// # Errors
    ///
    /// As [`WireClient::connect_tcp`].
    #[cfg(unix)]
    pub fn connect_uds<P: AsRef<std::path::Path>>(path: P) -> Result<Self, WireError> {
        Self::connect_uds_timeout(path, DEFAULT_CONNECT_TIMEOUT)
    }

    /// [`WireClient::connect_uds`] with an explicit HELLO_ACK bound.
    ///
    /// # Errors
    ///
    /// As [`WireClient::connect_tcp`].
    #[cfg(unix)]
    pub fn connect_uds_timeout<P: AsRef<std::path::Path>>(
        path: P,
        timeout: Duration,
    ) -> Result<Self, WireError> {
        Self::handshake(Stream::Unix(UnixStream::connect(path)?), timeout)
    }

    fn handshake(stream: Stream, timeout: Duration) -> Result<Self, WireError> {
        // Bound the HELLO_ACK wait; recv() restores unbounded blocking
        // below unless the caller re-applies a deadline.
        let _ = stream.set_read_timeout(Some(timeout));
        let write_half = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut writer = BufWriter::new(write_half);
        wire::write_hello(&mut writer)?;
        writer.flush()?;
        let header = wire::read_header(&mut reader)?;
        match header.frame_type {
            FT_HELLO_ACK => {}
            FT_ERROR => return Err(wire::read_error_body(&mut reader)?.into_remote()),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected HELLO_ACK, got frame type {other}"
                )))
            }
        }
        let liveness = header.flags & FLAG_LIVENESS != 0;
        let dim = wire::read_u32(&mut reader)?;
        let rows = wire::read_u32(&mut reader)?;
        let generation = wire::read_u64(&mut reader)?;
        let _ = reader.get_ref().set_read_timeout(None);
        Ok(WireClient { reader, writer, dim, rows, generation, liveness, next_id: 0 })
    }

    /// The served model's hypervector dimensionality `D` (learned at
    /// handshake).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The served model's row count at handshake time.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The model generation at handshake time (responses carry the
    /// generation that actually answered them, which may be newer after
    /// a hot swap).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the server advertised PING/PONG/GOAWAY support
    /// ([`FLAG_LIVENESS`] on its HELLO_ACK). When `false` the peer
    /// predates the liveness frames and must not be pinged — it would
    /// close the connection on the unknown frame type.
    pub fn liveness(&self) -> bool {
        self.liveness
    }

    /// Applies (or clears, with `None`) a read deadline to subsequent
    /// [`WireClient::recv`] calls. A deadline that expires surfaces as
    /// [`WireError::Io`] with a timeout kind; the connection itself stays
    /// open, but a recv abandoned mid-frame leaves the stream
    /// desynchronized, so callers should treat a timed-out recv as
    /// connection-fatal (as [`super::ResilientClient`] does).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Packed `u64` words per query on this connection.
    pub fn words_per_query(&self) -> u32 {
        (self.dim as usize).div_ceil(64) as u32
    }

    /// Sends one QUERY frame asking for the top `k` hits of each query.
    /// Returns the id range assigned to the queries, in order.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] if any query's length differs from
    /// [`WireClient::dim`] (caught locally — the server would answer
    /// with an error frame anyway, but a mixed-length batch is a caller
    /// bug), [`WireError::Io`] on transport failure.
    pub fn send_queries(&mut self, queries: &[BitVector], k: u16) -> Result<Range<u64>, WireError> {
        for q in queries {
            if q.len() != self.dim as usize {
                return Err(WireError::Protocol(format!(
                    "query length {} does not match served dimensionality {}",
                    q.len(),
                    self.dim
                )));
            }
        }
        let wpq = self.words_per_query() as usize;
        let mut words = Vec::with_capacity(queries.len() * wpq);
        for q in queries {
            words.extend_from_slice(q.as_words());
        }
        self.send_packed_words(&words, k)
    }

    /// Sends one QUERY frame of already-packed words (`words.len()` must
    /// be a whole multiple of [`WireClient::words_per_query`]). The
    /// zero-copy path for callers that keep queries packed end to end.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on a ragged payload, [`WireError::Io`] on
    /// transport failure.
    pub fn send_packed_words(&mut self, words: &[u64], k: u16) -> Result<Range<u64>, WireError> {
        let wpq = self.words_per_query() as usize;
        if words.is_empty() || !words.len().is_multiple_of(wpq) {
            return Err(WireError::Protocol(format!(
                "payload of {} words is not a positive multiple of {wpq} words per query",
                words.len()
            )));
        }
        let count = (words.len() / wpq) as u64;
        let first_id = self.next_id;
        wire::write_query(&mut self.writer, k, first_id, wpq as u32, words)?;
        self.writer.flush()?;
        self.next_id += count;
        Ok(first_id..first_id + count)
    }

    /// Sends a PING probe carrying `nonce`; the server echoes it back as
    /// [`WireEvent::Pong`]. Callers must check [`WireClient::liveness`]
    /// first — a pre-liveness server treats PING as an unknown frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] if the server did not advertise liveness,
    /// [`WireError::Io`] on transport failure.
    pub fn send_ping(&mut self, nonce: u64) -> Result<(), WireError> {
        if !self.liveness {
            return Err(WireError::Protocol(
                "server did not advertise liveness support; PING would be fatal to it".into(),
            ));
        }
        wire::write_ping(&mut self.writer, nonce)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Receives the next frame from the server, blocking until one
    /// arrives (or until a deadline set via
    /// [`WireClient::set_read_timeout`] expires).
    ///
    /// Per-query rejections come back as [`WireEvent::Error`] (the
    /// connection stays usable unless the error's code is
    /// connection-fatal — see [`super::code`]). A server PING is
    /// answered with a PONG internally and never surfaced; PONG and
    /// GOAWAY frames surface as their own events. Unknown header-only
    /// frame types from a newer server are skipped silently (the
    /// forward-compatibility contract of the codec).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on disconnect, [`WireError::Protocol`] on a
    /// malformed server frame or an unknown frame that declares a
    /// payload (the stream cannot be resynchronized past it).
    pub fn recv(&mut self) -> Result<WireEvent, WireError> {
        loop {
            let header = wire::read_header(&mut self.reader)?;
            match header.frame_type {
                FT_RESPONSE => {
                    let id = wire::read_u64(&mut self.reader)?;
                    let generation = wire::read_u64(&mut self.reader)?;
                    let degraded = header.flags & FLAG_DEGRADED != 0;
                    let mut hits = Vec::with_capacity(header.k as usize);
                    for _ in 0..header.k {
                        let row = wire::read_u32(&mut self.reader)? as usize;
                        let class = wire::read_u32(&mut self.reader)? as usize;
                        let score = wire::read_u32(&mut self.reader)?;
                        hits.push(Prediction { row, class, score, generation, degraded });
                    }
                    return Ok(WireEvent::Response { id, hits });
                }
                FT_ERROR => return Ok(WireEvent::Error(wire::read_error_body(&mut self.reader)?)),
                FT_PING if header.is_payload_free() => {
                    wire::write_pong(&mut self.writer, header.model_key)?;
                    self.writer.flush()?;
                }
                FT_PONG if header.is_payload_free() => {
                    return Ok(WireEvent::Pong { nonce: header.model_key });
                }
                FT_GOAWAY if header.is_payload_free() => {
                    return Ok(WireEvent::GoAway { last_accepted: header.model_key });
                }
                other if header.is_payload_free() => {
                    let _ = other; // unknown but header-only: skip, stay in sync
                }
                other => {
                    return Err(WireError::Protocol(format!(
                        "unexpected server frame type {other} with a declared payload"
                    )));
                }
            }
        }
    }

    /// Convenience wrapper: [`WireClient::recv`], but a received error
    /// frame becomes [`WireError::Remote`]. Stray PONGs are skipped; a
    /// GOAWAY (the server is draining and will not answer anything not
    /// yet accepted) surfaces as [`WireError::Protocol`] — callers that
    /// want to handle drain gracefully should use [`WireClient::recv`]
    /// or [`super::ResilientClient`].
    ///
    /// # Errors
    ///
    /// As [`WireClient::recv`], plus [`WireError::Remote`] for error
    /// frames.
    pub fn recv_response(&mut self) -> Result<(u64, Vec<Prediction>), WireError> {
        loop {
            match self.recv()? {
                WireEvent::Response { id, hits } => return Ok((id, hits)),
                WireEvent::Error(body) => return Err(body.into_remote()),
                WireEvent::Pong { .. } => {}
                WireEvent::GoAway { last_accepted } => {
                    return Err(WireError::Protocol(format!(
                        "server sent GOAWAY (last accepted id {last_accepted}) while a plain \
                         response was expected"
                    )));
                }
            }
        }
    }
}

impl ErrorBody {
    /// Converts a received error frame into [`WireError::Remote`].
    pub fn into_remote(self) -> WireError {
        WireError::Remote { id: self.id, code: self.code, message: self.message }
    }
}
