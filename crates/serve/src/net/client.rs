//! A small blocking client for the wire protocol.
//!
//! [`WireClient`] is deliberately thin: it handshakes to learn the
//! served model's shape, packs queries into QUERY frames (the packed
//! words of a [`BitVector`] *are* the payload — no per-bit translation),
//! and decodes whatever the server streams back. Sends and receives are
//! independent, so a caller can pipeline many frames before collecting
//! responses; responses arrive in submission order per connection.

use super::wire::{self, ErrorBody, WireError};
use super::{Stream, FLAG_DEGRADED, FT_ERROR, FT_HELLO_ACK, FT_RESPONSE};
use crate::Prediction;
use hd_linalg::BitVector;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// One frame received from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEvent {
    /// A query was answered. `hits` is the top-k slate, best first
    /// (length 1 for plain classification).
    Response {
        /// The query id assigned at send time.
        id: u64,
        /// The ranked hits, each carrying generation and degraded flag.
        hits: Vec<Prediction>,
    },
    /// The server rejected a query (or the connection) with a typed
    /// error frame.
    Error(ErrorBody),
}

/// A blocking wire-protocol client over TCP or a Unix-domain socket.
///
/// Ids are assigned sequentially per client, starting at 0; the id range
/// returned by the send methods matches the `id` fields of the
/// responses that come back.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
    dim: u32,
    rows: u32,
    generation: u64,
    next_id: u64,
}

impl WireClient {
    /// Connects over TCP and performs the HELLO handshake.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on connect/transport failure,
    /// [`WireError::Protocol`] if the peer is not a wire server,
    /// [`WireError::Remote`] if the server answered the handshake with
    /// an error frame.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Self::handshake(Stream::Tcp(stream))
    }

    /// Connects over a Unix-domain socket and performs the handshake.
    ///
    /// # Errors
    ///
    /// As [`WireClient::connect_tcp`].
    #[cfg(unix)]
    pub fn connect_uds<P: AsRef<std::path::Path>>(path: P) -> Result<Self, WireError> {
        Self::handshake(Stream::Unix(UnixStream::connect(path)?))
    }

    fn handshake(stream: Stream) -> Result<Self, WireError> {
        let write_half = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut writer = BufWriter::new(write_half);
        wire::write_hello(&mut writer)?;
        writer.flush()?;
        let header = wire::read_header(&mut reader)?;
        match header.frame_type {
            FT_HELLO_ACK => {}
            FT_ERROR => return Err(wire::read_error_body(&mut reader)?.into_remote()),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected HELLO_ACK, got frame type {other}"
                )))
            }
        }
        let dim = wire::read_u32(&mut reader)?;
        let rows = wire::read_u32(&mut reader)?;
        let generation = wire::read_u64(&mut reader)?;
        Ok(WireClient { reader, writer, dim, rows, generation, next_id: 0 })
    }

    /// The served model's hypervector dimensionality `D` (learned at
    /// handshake).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The served model's row count at handshake time.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The model generation at handshake time (responses carry the
    /// generation that actually answered them, which may be newer after
    /// a hot swap).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Packed `u64` words per query on this connection.
    pub fn words_per_query(&self) -> u32 {
        (self.dim as usize).div_ceil(64) as u32
    }

    /// Sends one QUERY frame asking for the top `k` hits of each query.
    /// Returns the id range assigned to the queries, in order.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] if any query's length differs from
    /// [`WireClient::dim`] (caught locally — the server would answer
    /// with an error frame anyway, but a mixed-length batch is a caller
    /// bug), [`WireError::Io`] on transport failure.
    pub fn send_queries(&mut self, queries: &[BitVector], k: u16) -> Result<Range<u64>, WireError> {
        for q in queries {
            if q.len() != self.dim as usize {
                return Err(WireError::Protocol(format!(
                    "query length {} does not match served dimensionality {}",
                    q.len(),
                    self.dim
                )));
            }
        }
        let wpq = self.words_per_query() as usize;
        let mut words = Vec::with_capacity(queries.len() * wpq);
        for q in queries {
            words.extend_from_slice(q.as_words());
        }
        self.send_packed_words(&words, k)
    }

    /// Sends one QUERY frame of already-packed words (`words.len()` must
    /// be a whole multiple of [`WireClient::words_per_query`]). The
    /// zero-copy path for callers that keep queries packed end to end.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on a ragged payload, [`WireError::Io`] on
    /// transport failure.
    pub fn send_packed_words(&mut self, words: &[u64], k: u16) -> Result<Range<u64>, WireError> {
        let wpq = self.words_per_query() as usize;
        if words.is_empty() || !words.len().is_multiple_of(wpq) {
            return Err(WireError::Protocol(format!(
                "payload of {} words is not a positive multiple of {wpq} words per query",
                words.len()
            )));
        }
        let count = (words.len() / wpq) as u64;
        let first_id = self.next_id;
        wire::write_query(&mut self.writer, k, first_id, wpq as u32, words)?;
        self.writer.flush()?;
        self.next_id += count;
        Ok(first_id..first_id + count)
    }

    /// Receives the next frame from the server, blocking until one
    /// arrives.
    ///
    /// Per-query rejections come back as [`WireEvent::Error`] (the
    /// connection stays usable unless the error's code is
    /// connection-fatal — see [`super::code`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on disconnect, [`WireError::Protocol`] on a
    /// malformed server frame.
    pub fn recv(&mut self) -> Result<WireEvent, WireError> {
        let header = wire::read_header(&mut self.reader)?;
        match header.frame_type {
            FT_RESPONSE => {
                let id = wire::read_u64(&mut self.reader)?;
                let generation = wire::read_u64(&mut self.reader)?;
                let degraded = header.flags & FLAG_DEGRADED != 0;
                let mut hits = Vec::with_capacity(header.k as usize);
                for _ in 0..header.k {
                    let row = wire::read_u32(&mut self.reader)? as usize;
                    let class = wire::read_u32(&mut self.reader)? as usize;
                    let score = wire::read_u32(&mut self.reader)?;
                    hits.push(Prediction { row, class, score, generation, degraded });
                }
                Ok(WireEvent::Response { id, hits })
            }
            FT_ERROR => Ok(WireEvent::Error(wire::read_error_body(&mut self.reader)?)),
            other => Err(WireError::Protocol(format!("unexpected server frame type {other}"))),
        }
    }

    /// Convenience wrapper: [`WireClient::recv`], but a received error
    /// frame becomes [`WireError::Remote`].
    ///
    /// # Errors
    ///
    /// As [`WireClient::recv`], plus [`WireError::Remote`] for error
    /// frames.
    pub fn recv_response(&mut self) -> Result<(u64, Vec<Prediction>), WireError> {
        match self.recv()? {
            WireEvent::Response { id, hits } => Ok((id, hits)),
            WireEvent::Error(body) => Err(body.into_remote()),
        }
    }
}

impl ErrorBody {
    /// Converts a received error frame into [`WireError::Remote`].
    pub fn into_remote(self) -> WireError {
        WireError::Remote { id: self.id, code: self.code, message: self.message }
    }
}
