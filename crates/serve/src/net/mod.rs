//! TCP / Unix-domain-socket front-end for the micro-batching server.
//!
//! A std-only network layer (no external runtime): each listener runs a
//! thread-per-connection accept loop, and each connection runs a reader
//! thread (parse frames → [`crate::Server::submit_packed`]) plus a
//! writer thread (wait pendings in FIFO order → stream response
//! frames). Because co-flushed queries complete together, FIFO waiting
//! streams each micro-batch flush back the moment it publishes —
//! responses are per-flush, never a per-connection barrier.
//!
//! **Zero-repack ingest.** The QUERY payload *is* the
//! [`hd_linalg::QueryBatchBuilder`] row layout: `count` rows of
//! `words_per_query` packed little-endian `u64`s. The reader hands the
//! whole payload to [`crate::Server::submit_packed`], which lands it in
//! the pending batch as one word copy under one queue-lock acquisition.
//!
//! **Backpressure.** Two independent bounds:
//! * per server — [`crate::ServeConfig::max_in_flight`] sheds whole
//!   frames at admission with a typed `OVERLOADED` error frame;
//! * per connection — [`WireConfig::conn_in_flight`] bounds queries
//!   submitted but not yet written back. At the bound the reader stops
//!   reading, which propagates to the client through TCP flow control.
//!
//! **Malformed input never panics a worker.** Recoverable violations
//! (wrong dimensionality, `k == 0`, unknown model key, zero-query
//! frames, shed frames) answer with a typed error frame and keep the
//! connection open; unrecoverable ones (bad magic, unknown frame type,
//! oversized declarations) answer with a final error frame and close —
//! after every already-submitted query's response has been written.
//! Queries in flight are never lost to a later bad frame.

mod client;
mod resilient;
pub mod wire;

pub use client::{WireClient, WireEvent};
pub use resilient::{ResilientClient, ResilientConfig, ResilientError, RetryLedger, Target};
pub use wire::{
    code, serve_error_code, ErrorBody, Header, WireError, CONNECTION_ERROR_ID, FLAG_DEGRADED,
    FLAG_LIVENESS, FT_ERROR, FT_GOAWAY, FT_HELLO, FT_HELLO_ACK, FT_PING, FT_PONG, FT_QUERY,
    FT_RESPONSE, GOAWAY_NONE, HEADER_LEN, MAGIC,
};

use crate::{PendingTopK, ServeError, Server};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire front-end tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Largest query count a single QUERY frame may declare. A frame
    /// over the limit is connection-fatal ([`code::OVERSIZED_FRAME`]):
    /// its declared payload cannot be trusted enough to drain.
    pub max_frame_queries: u32,
    /// Per-connection bound on queries submitted but not yet written
    /// back. The reader blocks at the bound (TCP flow control carries
    /// the backpressure to the client).
    pub conn_in_flight: usize,
    /// Sets `TCP_NODELAY` on accepted TCP connections (response frames
    /// are small; Nagle batching would add artificial latency under the
    /// micro-batcher's own deadline).
    pub nodelay: bool,
    /// Per-connection liveness deadline. A connection that sends no
    /// bytes for this long is probed with a PING and reaped after one
    /// more period of silence (grace == `idle_timeout`, so an idle or
    /// slow-loris peer holds a reader thread for at most
    /// `idle_timeout + grace`). A peer stalled *mid-frame* is reaped on
    /// the same budget without a PING — it owes us bytes, not liveness.
    /// `None` disables reaping (connections may pin reader threads
    /// forever; only sensible for trusted co-located clients).
    pub idle_timeout: Option<Duration>,
    /// Accept-gate on concurrently served connections. A connect beyond
    /// the limit is answered with a typed [`code::CONNECTION_LIMIT`]
    /// error frame and closed before a reader thread is spawned, so a
    /// connection flood degrades into polite rejections instead of
    /// unbounded thread growth.
    pub max_connections: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_frame_queries: 4096,
            conn_in_flight: 4096,
            nodelay: true,
            idle_timeout: Some(Duration::from_secs(60)),
            max_connections: 1024,
        }
    }
}

impl WireConfig {
    fn validate(&self) -> crate::Result<()> {
        if self.max_frame_queries == 0 || self.conn_in_flight == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_frame_queries and conn_in_flight must be positive".into(),
            });
        }
        if self.idle_timeout.is_some_and(|t| t.is_zero()) {
            return Err(ServeError::InvalidConfig {
                reason: "idle_timeout must be positive (use None to disable reaping)".into(),
            });
        }
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_connections must be positive (the front-end could accept nothing)"
                    .into(),
            });
        }
        Ok(())
    }
}

/// A duplex byte stream of either transport. Everything above this enum
/// is transport-agnostic.
#[derive(Debug)]
pub(crate) enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Shuts down both directions, unblocking any thread parked in a
    /// read or write on a clone of this stream.
    pub(crate) fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => drop(s.shutdown(std::net::Shutdown::Both)),
            #[cfg(unix)]
            Stream::Unix(s) => drop(s.shutdown(std::net::Shutdown::Both)),
        }
    }

    /// Bounds every blocking read on this stream (and its clones sharing
    /// the socket): a read that sees no bytes for `timeout` returns a
    /// [`std::io::ErrorKind::WouldBlock`] / `TimedOut` error instead of
    /// parking forever.
    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

/// Whether an i/o error is a read-timeout expiry (`set_read_timeout`
/// surfaces as `WouldBlock` on Unix sockets and `TimedOut` on others).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// How a listener's accept loop is unblocked at shutdown: a throwaway
/// self-connection.
enum AcceptWaker {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl AcceptWaker {
    fn wake(&self) {
        match self {
            AcceptWaker::Tcp(addr) => drop(TcpStream::connect(addr)),
            #[cfg(unix)]
            AcceptWaker::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// Per-connection state shared between the reader, the writer, and the
/// front-end's drain/shutdown machinery.
struct ConnState {
    /// Id of the last query this connection accepted for answering
    /// ([`GOAWAY_NONE`] until the first one) — what a GOAWAY frame
    /// reports so the client knows which submissions will be answered.
    last_accepted: AtomicU64,
    /// Answers queued for the writer but not yet written back. Drain
    /// waits for this to hit zero on every connection.
    in_flight: AtomicU64,
    /// Set once a GOAWAY has been queued for this connection, so drain
    /// broadcasts and the reader's own draining check don't spam.
    goaway_queued: AtomicBool,
}

impl ConnState {
    fn new() -> Self {
        ConnState {
            last_accepted: AtomicU64::new(GOAWAY_NONE),
            in_flight: AtomicU64::new(0),
            goaway_queued: AtomicBool::new(false),
        }
    }
}

/// One live connection in the front-end's registry.
struct ConnEntry {
    /// Write-half clone, force-closed at shutdown.
    stream: Arc<Stream>,
    /// The reader→writer queue; drain uses it to broadcast GOAWAY.
    outgoing: SyncSender<Outgoing>,
    state: Arc<ConnState>,
    handle: JoinHandle<()>,
}

struct WireShared {
    server: Arc<Server>,
    config: WireConfig,
    shutdown: AtomicBool,
    /// Set by [`WireServer::drain`]: stop accepting QUERY frames and
    /// answer them (and fresh connects) with GOAWAY while in-flight
    /// answers flush.
    draining: AtomicBool,
    /// Live connections, force-closed at shutdown. Entries of finished
    /// connections are pruned opportunistically.
    conns: Mutex<Vec<ConnEntry>>,
    wakers: Mutex<Vec<AcceptWaker>>,
    /// Unix socket paths to unlink at shutdown.
    #[cfg(unix)]
    uds_paths: Mutex<Vec<PathBuf>>,
}

/// The socket front-end: accepts TCP and/or Unix-domain connections and
/// serves the wire protocol over an inner [`Server`].
///
/// One `WireServer` can run several listeners at once (e.g. a TCP port
/// for remote clients and a UDS path for co-located ones); every
/// connection feeds the same micro-batcher, so cross-connection traffic
/// coalesces into shared flush cycles.
///
/// # Example
///
/// ```no_run
/// use hd_serve::net::{WireClient, WireServer};
/// use hd_serve::{Searchable, ServeConfig, Server};
/// use hd_linalg::{BitVector, SearchMemory};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let memory = SearchMemory::from_rows(&vec![BitVector::zeros(256); 4])?;
/// let server = Arc::new(Server::start(
///     Arc::new(memory) as Arc<dyn Searchable>,
///     ServeConfig::default(),
/// )?);
/// let wire = WireServer::start(Arc::clone(&server), Default::default())?;
/// let addr = wire.listen_tcp("127.0.0.1:0")?; // ephemeral port
/// let mut client = WireClient::connect_tcp(addr)?;
/// let ids = client.send_queries(&[BitVector::zeros(256)], 1)?;
/// let event = client.recv()?;
/// # Ok(())
/// # }
/// ```
pub struct WireServer {
    shared: Arc<WireShared>,
    accept_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("config", &self.shared.config)
            .field("shutdown", &self.shared.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl WireServer {
    /// Creates a front-end over `server` with no listeners yet; add them
    /// with [`WireServer::listen_tcp`] / [`WireServer::listen_uds`].
    ///
    /// The front-end borrows the server: shutting the front-end down
    /// closes sockets but leaves `server` running for in-process
    /// callers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero limits in
    /// `config`.
    pub fn start(server: Arc<Server>, config: WireConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(WireServer {
            shared: Arc::new(WireShared {
                server,
                config,
                shutdown: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                wakers: Mutex::new(Vec::new()),
                #[cfg(unix)]
                uds_paths: Mutex::new(Vec::new()),
            }),
            accept_threads: Mutex::new(Vec::new()),
        })
    }

    /// Binds a TCP listener on `addr` and spawns its accept loop.
    /// Returns the bound address — bind to port 0 for an ephemeral port.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] wrapping bind/spawn
    /// failures, or [`ServeError::Shutdown`] after shutdown.
    pub fn listen_tcp<A: ToSocketAddrs>(&self, addr: A) -> crate::Result<SocketAddr> {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(ServeError::Shutdown);
        }
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::InvalidConfig {
            reason: format!("failed to bind TCP listener: {e}"),
        })?;
        let local = listener.local_addr().map_err(|e| ServeError::InvalidConfig {
            reason: format!("failed to resolve bound TCP address: {e}"),
        })?;
        self.shared
            .wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(AcceptWaker::Tcp(local));
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("hd-wire-tcp-{}", local.port()))
            .spawn(move || accept_loop(&shared, listener))
            .map_err(|e| ServeError::InvalidConfig {
                reason: format!("failed to spawn accept thread: {e}"),
            })?;
        self.accept_threads.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        Ok(local)
    }

    /// Binds a Unix-domain listener on `path` (removing a stale socket
    /// file left by a previous process) and spawns its accept loop. The
    /// socket file is unlinked at shutdown.
    ///
    /// # Errors
    ///
    /// As [`WireServer::listen_tcp`].
    #[cfg(unix)]
    pub fn listen_uds<P: Into<PathBuf>>(&self, path: P) -> crate::Result<()> {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(ServeError::Shutdown);
        }
        let path = path.into();
        // A stale socket file from a crashed predecessor would fail the
        // bind; only ever remove sockets, not regular files.
        if let Ok(meta) = std::fs::symlink_metadata(&path) {
            use std::os::unix::fs::FileTypeExt;
            if meta.file_type().is_socket() {
                let _ = std::fs::remove_file(&path);
            }
        }
        let listener = UnixListener::bind(&path).map_err(|e| ServeError::InvalidConfig {
            reason: format!("failed to bind UDS listener on {}: {e}", path.display()),
        })?;
        let shared = Arc::clone(&self.shared);
        self.shared
            .wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(AcceptWaker::Unix(path.clone()));
        self.shared.uds_paths.lock().unwrap_or_else(PoisonError::into_inner).push(path);
        let handle = std::thread::Builder::new()
            .name("hd-wire-uds".into())
            .spawn(move || accept_loop_uds(&shared, listener))
            .map_err(|e| ServeError::InvalidConfig {
                reason: format!("failed to spawn accept thread: {e}"),
            })?;
        self.accept_threads.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        Ok(())
    }

    /// Live connections currently registered. Finished connections
    /// (disconnected, reaped for idling, or fatally errored) are pruned
    /// before counting.
    pub fn connections(&self) -> usize {
        let mut conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
        conns.retain(|c| !c.handle.is_finished());
        conns.len()
    }

    /// Whether [`WireServer::drain`] has begun (or completed).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// Gracefully drains the front-end, then shuts it down.
    ///
    /// In order: (1) fresh connects are answered with a GOAWAY frame and
    /// closed, (2) every live connection is sent a GOAWAY carrying the
    /// id of the last query it accepted — everything up to that id will
    /// still be answered, everything after it was never accepted and
    /// must be retried elsewhere, (3) QUERY frames arriving after the
    /// drain began are not submitted; their payloads are consumed and
    /// answered with (another) GOAWAY, (4) all in-flight answers flush
    /// through the per-connection writer FIFOs. Once every accepted
    /// answer is written — or `deadline` expires — the front-end shuts
    /// down exactly like [`WireServer::shutdown`].
    ///
    /// Returns `true` when every accepted in-flight answer was flushed
    /// before the deadline, `false` when the deadline cut the flush
    /// short (only possible if a peer stops reading its answers or the
    /// deadline is shorter than the micro-batcher's flush latency).
    /// Idempotent with [`WireServer::shutdown`]; a repeated call returns
    /// `true` immediately.
    pub fn drain(&self, deadline: Duration) -> bool {
        let start = Instant::now();
        self.shared.draining.store(true, Ordering::SeqCst);
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return true; // already shut down: nothing left to flush
        }
        let mut flushed = false;
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            let mut pending = 0u64;
            {
                let mut conns = self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
                conns.retain(|c| !c.handle.is_finished());
                for conn in conns.iter() {
                    pending += conn.state.in_flight.load(Ordering::Acquire);
                    // Tell the peer (once) that this connection stops
                    // accepting queries. try_send: a full FIFO means the
                    // writer is busy flushing answers — retry next poll.
                    if !conn.state.goaway_queued.load(Ordering::Relaxed) {
                        match conn.outgoing.try_send(Outgoing::GoAway) {
                            Ok(()) => conn.state.goaway_queued.store(true, Ordering::Relaxed),
                            Err(TrySendError::Full(_)) => pending += 1, // not announced yet
                            Err(TrySendError::Disconnected(_)) => {}
                        }
                    }
                }
            }
            if pending == 0 {
                flushed = true;
                break;
            }
            if start.elapsed() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1).min(deadline));
        }
        self.shutdown();
        flushed
    }

    /// Shuts the front-end down: stops accepting, force-closes every
    /// connection's socket, joins all connection and accept threads, and
    /// unlinks UDS socket files. In-flight queries are still answered by
    /// the inner server (their responses are written if the peer is
    /// still reading). The inner [`Server`] itself keeps running — it
    /// belongs to the caller. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loops with throwaway self-connections, then
        // join them so no new connections register afterwards.
        for waker in self.shared.wakers.lock().unwrap_or_else(PoisonError::into_inner).drain(..) {
            waker.wake();
        }
        for handle in self.accept_threads.lock().unwrap_or_else(PoisonError::into_inner).drain(..) {
            let _ = handle.join();
        }
        let conns: Vec<ConnEntry> =
            self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        // Drop the registry's sender clones alongside the socket
        // shutdowns: a writer only exits once every sender of its
        // channel is gone, so holding `outgoing` across the joins would
        // deadlock.
        let mut handles = Vec::with_capacity(conns.len());
        for ConnEntry { stream, outgoing, state: _, handle } in conns {
            stream.shutdown();
            drop(outgoing);
            handles.push(handle);
        }
        for handle in handles {
            let _ = handle.join();
        }
        #[cfg(unix)]
        for path in self.shared.uds_paths.lock().unwrap_or_else(PoisonError::into_inner).drain(..) {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<WireShared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if shared.config.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                register_connection(shared, Stream::Tcp(stream));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Transient accept errors (EMFILE, aborted handshakes)
                // must not kill the listener.
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(unix)]
fn accept_loop_uds(shared: &Arc<WireShared>, listener: UnixListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                register_connection(shared, Stream::Unix(stream));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::yield_now();
            }
        }
    }
}

/// Accept-gates a fresh connection, then spawns its reader/writer pair
/// and registers the entry for forced shutdown and drain broadcasts.
///
/// Gate order: a draining front-end answers with GOAWAY and closes
/// (nothing was accepted on this connection, so [`GOAWAY_NONE`]); a full
/// front-end ([`WireConfig::max_connections`]) answers with a typed
/// [`code::CONNECTION_LIMIT`] error frame and closes. Both answers are
/// written on the accept thread — the rejected socket never costs a
/// reader thread. A connection whose clone or spawn fails is simply
/// dropped (the client sees a closed socket).
fn register_connection(shared: &Arc<WireShared>, mut stream: Stream) {
    if shared.draining.load(Ordering::Relaxed) {
        let _ = wire::write_goaway(&mut stream, GOAWAY_NONE);
        let _ = stream.flush();
        stream.shutdown();
        return;
    }
    let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
    // Reap finished connections so the registry doesn't grow with
    // churn and the gate counts only live peers.
    conns.retain(|c| !c.handle.is_finished());
    if conns.len() >= shared.config.max_connections {
        drop(conns); // don't hold the registry lock across a socket write
        let _ = wire::write_error(
            &mut stream,
            CONNECTION_ERROR_ID,
            code::CONNECTION_LIMIT,
            &format!(
                "server at its connection limit ({}); retry later",
                shared.config.max_connections
            ),
        );
        let _ = stream.flush();
        stream.shutdown();
        return;
    }
    let Ok(write_half) = stream.try_clone() else { return };
    let write_half = Arc::new(write_half);
    let state = Arc::new(ConnState::new());
    let (tx, rx) = mpsc::sync_channel::<Outgoing>(shared.config.conn_in_flight);
    let conn_shared = Arc::clone(shared);
    let conn_write = Arc::clone(&write_half);
    let conn_state = Arc::clone(&state);
    let conn_tx = tx.clone();
    // The registry lock is held across the spawn and the push: the
    // reader's exit path deregisters itself through this same lock, so a
    // connection that dies instantly cannot deregister *before* its
    // entry exists — that would strand a registry sender clone, and the
    // writer (which drains until every sender is gone) would never exit.
    let Ok(handle) = std::thread::Builder::new().name("hd-wire-conn".into()).spawn(move || {
        connection_reader(&conn_shared, stream, &conn_write, &conn_state, conn_tx, rx)
    }) else {
        return;
    };
    conns.push(ConnEntry { stream: write_half, outgoing: tx, state, handle });
}

/// What the reader queues for the writer thread. FIFO order *is* the
/// response order: answers of one flush cycle complete together, so the
/// writer streams each flush as it publishes.
enum Outgoing {
    HelloAck,
    Answer {
        id: u64,
        pending: PendingTopK,
    },
    Error {
        id: u64,
        code: u16,
        message: String,
        fatal: bool,
    },
    /// Server-initiated liveness probe (idle-timeout grace).
    Ping {
        nonce: u64,
    },
    /// Echo of a client PING.
    Pong {
        nonce: u64,
    },
    /// Drain announcement; the writer stamps the connection's
    /// last-accepted id at write time.
    GoAway,
}

/// Per-connection reader loop: parses frames, submits packed queries,
/// queues outgoing work. Exits on disconnect, fatal protocol error,
/// idle-timeout reaping, or forced socket shutdown; always joins its
/// writer before returning so every in-flight query's response (or the
/// final error frame) is written first.
fn connection_reader(
    shared: &Arc<WireShared>,
    mut stream: Stream,
    write_half: &Arc<Stream>,
    state: &Arc<ConnState>,
    tx: SyncSender<Outgoing>,
    rx: Receiver<Outgoing>,
) {
    let writer_shared = Arc::clone(shared);
    let writer_half = Arc::clone(write_half);
    let writer_state = Arc::clone(state);
    let Ok(writer) = std::thread::Builder::new()
        .name("hd-wire-write".into())
        .spawn(move || connection_writer(&writer_shared, &writer_half, &rx, &writer_state))
    else {
        return;
    };
    read_frames(shared, &mut stream, &tx, state);
    // Deregister before closing the channel: the registry holds a sender
    // clone (for drain broadcasts), and the writer only exits once every
    // sender is gone.
    {
        let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
        conns.retain(|c| !Arc::ptr_eq(&c.state, state));
    }
    // Closing the channel lets the writer drain queued answers and exit;
    // a fatal error frame queued last is written after them.
    drop(tx);
    let _ = writer.join();
    // Unblock a peer still writing into a connection we abandoned.
    stream.shutdown();
}

/// Outcome of one budgeted header read (see [`read_header_budgeted`]).
enum HeaderRead {
    /// A complete, magic-valid header.
    Frame(Header),
    /// The read timed out with zero header bytes received: the
    /// connection is idle at a frame boundary (PING-able).
    Idle,
    /// The peer stalled or dribbled mid-header past the liveness budget
    /// (slow-loris): reap without a PING — the peer owes bytes.
    Stalled,
    /// Disconnect (clean EOF, reset, or forced shutdown).
    Closed,
    /// A complete header with the wrong magic.
    BadMagic(String),
}

/// Reads one frame header under the connection's liveness budget.
///
/// Unlike `read_exact`, partial progress survives a read timeout, so a
/// slow-but-live peer is never desynchronized by the probe: either the
/// full header eventually arrives ([`HeaderRead::Frame`]), or the caller
/// learns exactly what state the connection is in. Total time mid-header
/// is bounded by `2 × idle` (the same `idle_timeout + grace` budget an
/// idle connection gets), which also caps a byte-at-a-time slow-loris.
fn read_header_budgeted(stream: &mut Stream, idle: Option<Duration>) -> HeaderRead {
    let mut buf = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    let mut started: Option<Instant> = None;
    while filled < HEADER_LEN {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return HeaderRead::Closed,
            Ok(n) => {
                started.get_or_insert_with(Instant::now);
                filled += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => match started {
                // A full idle period with nothing at a frame boundary.
                None => return HeaderRead::Idle,
                // A full idle period of silence mid-header.
                Some(_) => return HeaderRead::Stalled,
            },
            Err(_) => return HeaderRead::Closed,
        }
        if let (Some(t), Some(idle)) = (started, idle) {
            if filled < HEADER_LEN && t.elapsed() > idle.saturating_add(idle) {
                return HeaderRead::Stalled;
            }
        }
    }
    match Header::decode(&buf) {
        Ok(header) => HeaderRead::Frame(header),
        Err(WireError::Protocol(what)) => HeaderRead::BadMagic(what),
        Err(_) => HeaderRead::Closed,
    }
}

/// A [`Read`] adapter that bounds the *total* time spent reading one
/// frame's payload: each chunk still runs under the socket's per-read
/// timeout, and any read past `deadline` fails immediately — so a peer
/// dribbling one byte per timeout period cannot stretch a frame forever.
struct DeadlineRead<'a> {
    inner: &'a mut Stream,
    deadline: Option<Instant>,
}

impl Read for DeadlineRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame payload exceeded the liveness budget",
                ));
            }
        }
        self.inner.read(buf)
    }
}

/// Sends on the bounded channel, blocking for backpressure. Returns
/// `false` when the writer is gone (its socket died) — the reader then
/// stops consuming frames.
fn send_outgoing(tx: &SyncSender<Outgoing>, msg: Outgoing) -> bool {
    tx.send(msg).is_ok()
}

fn read_frames(
    shared: &Arc<WireShared>,
    stream: &mut Stream,
    tx: &SyncSender<Outgoing>,
    state: &Arc<ConnState>,
) {
    let server = &shared.server;
    let words_per_query = server.dim().div_ceil(64) as u32;
    let idle = shared.config.idle_timeout;
    if stream.set_read_timeout(idle).is_err() {
        return;
    }
    let mut words: Vec<u64> = Vec::new();
    let mut pinged = false;
    let mut ping_nonce: u64 = 0;
    loop {
        // Announce a drain the moment the reader notices it (the drain
        // loop also broadcasts through the registry sender, whichever
        // side gets there first).
        if shared.draining.load(Ordering::Relaxed)
            && !state.goaway_queued.swap(true, Ordering::Relaxed)
            && !send_outgoing(tx, Outgoing::GoAway)
        {
            return;
        }
        let header = match read_header_budgeted(stream, idle) {
            HeaderRead::Frame(header) => {
                pinged = false;
                header
            }
            HeaderRead::Idle => {
                if pinged {
                    // The grace PING went unanswered: reap.
                    let _ = send_outgoing(
                        tx,
                        Outgoing::Error {
                            id: CONNECTION_ERROR_ID,
                            code: code::IDLE_TIMEOUT,
                            message: "connection idle past idle_timeout and unresponsive to PING"
                                .into(),
                            fatal: true,
                        },
                    );
                    return;
                }
                ping_nonce += 1;
                if !send_outgoing(tx, Outgoing::Ping { nonce: ping_nonce }) {
                    return;
                }
                pinged = true;
                continue;
            }
            HeaderRead::Stalled => {
                // Slow-loris: bytes owed, none arriving. No PING can
                // help; answer a typed reap notice and close.
                let _ = send_outgoing(
                    tx,
                    Outgoing::Error {
                        id: CONNECTION_ERROR_ID,
                        code: code::IDLE_TIMEOUT,
                        message: "frame stalled past the liveness budget".into(),
                        fatal: true,
                    },
                );
                return;
            }
            HeaderRead::Closed => return,
            HeaderRead::BadMagic(what) => {
                let _ = send_outgoing(
                    tx,
                    Outgoing::Error {
                        id: CONNECTION_ERROR_ID,
                        code: code::BAD_MAGIC,
                        message: what,
                        fatal: true,
                    },
                );
                return;
            }
        };
        match header.frame_type {
            FT_HELLO => {
                if !send_outgoing(tx, Outgoing::HelloAck) {
                    return;
                }
            }
            FT_QUERY => {
                if !handle_query_frame(
                    shared,
                    stream,
                    tx,
                    state,
                    &header,
                    words_per_query,
                    &mut words,
                ) {
                    return;
                }
            }
            FT_PING => {
                if !header.is_payload_free() {
                    if !reject_liveness_payload(shared, stream, tx, &header) {
                        return;
                    }
                } else if !send_outgoing(tx, Outgoing::Pong { nonce: header.model_key }) {
                    return;
                }
            }
            FT_PONG | FT_GOAWAY => {
                // A PONG answers our grace probe; a client GOAWAY is a
                // polite leave notice. Either way the peer is alive and
                // there is nothing to answer.
                if !header.is_payload_free()
                    && !reject_liveness_payload(shared, stream, tx, &header)
                {
                    return;
                }
            }
            other if header.is_payload_free() => {
                // Unknown but header-only: the stream is still
                // synchronized, so reject recoverably (the
                // forward-compatibility contract for future frames).
                if !send_outgoing(
                    tx,
                    Outgoing::Error {
                        id: CONNECTION_ERROR_ID,
                        code: code::BAD_FRAME_TYPE,
                        message: format!("unknown header-only frame type {other} (skipped)"),
                        fatal: false,
                    },
                ) {
                    return;
                }
            }
            other => {
                // Unknown type declaring payload bytes: the stream
                // position cannot be trusted. Fatal.
                let _ = send_outgoing(
                    tx,
                    Outgoing::Error {
                        id: CONNECTION_ERROR_ID,
                        code: code::BAD_FRAME_TYPE,
                        message: format!("unknown frame type {other} with declared payload"),
                        fatal: true,
                    },
                );
                return;
            }
        }
    }
}

/// A liveness frame (PING/PONG/GOAWAY) that declared payload bytes
/// violates the header-only contract. If the declaration is within
/// limits, consume it and reject recoverably; an oversized declaration
/// is fatal exactly like a QUERY's. Returns `false` to close.
fn reject_liveness_payload(
    shared: &Arc<WireShared>,
    stream: &mut Stream,
    tx: &SyncSender<Outgoing>,
    header: &Header,
) -> bool {
    let payload_words = header.count as u64 * header.words_per_query as u64;
    if header.count > shared.config.max_frame_queries || header.words_per_query > (1 << 16) {
        let _ = send_outgoing(
            tx,
            Outgoing::Error {
                id: CONNECTION_ERROR_ID,
                code: code::OVERSIZED_FRAME,
                message: format!(
                    "liveness frame type {} declares {} x {} payload words (must be header-only)",
                    header.frame_type, header.count, header.words_per_query
                ),
                fatal: true,
            },
        );
        return false;
    }
    let idle = shared.config.idle_timeout;
    let mut bounded =
        DeadlineRead { inner: stream, deadline: idle.map(|d| Instant::now() + d + d) };
    if wire::drain(&mut bounded, payload_words * 8).is_err() {
        return false;
    }
    send_outgoing(
        tx,
        Outgoing::Error {
            id: CONNECTION_ERROR_ID,
            code: code::MALFORMED,
            message: format!(
                "liveness frame type {} must be header-only (declared payload ignored)",
                header.frame_type
            ),
            fatal: false,
        },
    )
}

/// Handles one QUERY frame; returns `false` when the connection must
/// close (fatal error or disconnect).
fn handle_query_frame(
    shared: &Arc<WireShared>,
    stream: &mut Stream,
    tx: &SyncSender<Outgoing>,
    state: &Arc<ConnState>,
    header: &Header,
    words_per_query: u32,
    words: &mut Vec<u64>,
) -> bool {
    let server = &shared.server;
    let payload_words = header.count as u64 * header.words_per_query as u64;
    let recoverable =
        |id: u64, code: u16, message: String| Outgoing::Error { id, code, message, fatal: false };
    // Declared-size sanity first: everything past this point may trust
    // `count` and `words_per_query` enough to drain the payload.
    if header.count > shared.config.max_frame_queries
        || header.words_per_query > words_per_query.max(1 << 16)
    {
        let _ = send_outgoing(
            tx,
            Outgoing::Error {
                id: CONNECTION_ERROR_ID,
                code: code::OVERSIZED_FRAME,
                message: format!(
                    "frame declares {} queries x {} words (limits: {} queries, {} words)",
                    header.count,
                    header.words_per_query,
                    shared.config.max_frame_queries,
                    words_per_query
                ),
                fatal: true,
            },
        );
        return false;
    }
    // Every payload byte from here on is read under the liveness budget:
    // the per-read socket timeout catches outright stalls, the deadline
    // bounds a dribbling peer's total hold on this frame.
    let frame_deadline = shared.config.idle_timeout.map(|d| Instant::now() + d + d);
    let mut stream = DeadlineRead { inner: stream, deadline: frame_deadline };
    // Recoverable rejections: consume the declared payload so the next
    // frame parses, answer with a typed error frame, keep going. A
    // truncated payload (peer died mid-frame) exits silently.
    let reject = |stream: &mut DeadlineRead<'_>, code: u16, message: String| -> bool {
        let first_id = match wire::read_u64(stream) {
            Ok(id) => id,
            Err(_) => return false,
        };
        if wire::drain(stream, payload_words * 8).is_err() {
            return false;
        }
        send_outgoing(tx, recoverable(first_id, code, message))
    };
    // A draining front-end accepts no further queries: consume the frame
    // and answer with GOAWAY again — the last-accepted id tells the
    // client exactly where the cut happened.
    if shared.draining.load(Ordering::Relaxed) {
        if wire::read_u64(&mut stream).is_err()
            || wire::drain(&mut stream, payload_words * 8).is_err()
        {
            return false;
        }
        state.goaway_queued.store(true, Ordering::Relaxed);
        return send_outgoing(tx, Outgoing::GoAway);
    }
    if header.model_key != 0 {
        return reject(
            &mut stream,
            code::UNKNOWN_MODEL_KEY,
            format!("model key {} unknown (this server serves key 0)", header.model_key),
        );
    }
    if header.count == 0 {
        return reject(&mut stream, code::MALFORMED, "QUERY frame declares zero queries".into());
    }
    if header.words_per_query != words_per_query {
        return reject(
            &mut stream,
            code::DIMENSION_MISMATCH,
            format!(
                "frame packs {} words per query; D = {} needs {}",
                header.words_per_query,
                server.dim(),
                words_per_query
            ),
        );
    }
    if header.k == 0 {
        return reject(&mut stream, code::BAD_K, "k must be at least 1".into());
    }
    let first_id = match wire::read_u64(&mut stream) {
        Ok(id) => id,
        Err(_) => return false,
    };
    if wire::read_words(&mut stream, payload_words as usize, words).is_err() {
        // Mid-frame disconnect: nothing was submitted for this frame;
        // earlier frames' answers still drain through the writer.
        return false;
    }
    match server.submit_packed(words, header.k as usize) {
        Ok(pendings) => {
            state.last_accepted.store(first_id + header.count as u64 - 1, Ordering::Release);
            for (i, pending) in pendings.into_iter().enumerate() {
                // Count before queueing so drain never observes a window
                // where an accepted answer is neither counted nor
                // written; undo if the writer is already gone.
                state.in_flight.fetch_add(1, Ordering::AcqRel);
                if !send_outgoing(tx, Outgoing::Answer { id: first_id + i as u64, pending }) {
                    state.in_flight.fetch_sub(1, Ordering::AcqRel);
                    return false;
                }
            }
            true
        }
        Err(e @ ServeError::Shutdown) => {
            let _ = send_outgoing(
                tx,
                Outgoing::Error {
                    id: first_id,
                    code: code::SHUTDOWN,
                    message: e.to_string(),
                    fatal: true,
                },
            );
            false
        }
        Err(e) => send_outgoing(tx, recoverable(first_id, serve_error_code(&e), e.to_string())),
    }
}

/// Per-connection writer loop: redeems pendings in FIFO order and
/// streams frames back. The `BufWriter` is flushed whenever the queue
/// goes momentarily empty, so each micro-batch flush leaves as one
/// syscall burst without waiting for the connection to go idle.
///
/// The connection's `in_flight` gauge (what [`WireServer::drain`] waits
/// on) is decremented only after the answers actually reach the socket —
/// a flush, not just a buffered write — so drain can never close a
/// socket under answers still sitting in the `BufWriter`.
fn connection_writer(
    shared: &Arc<WireShared>,
    stream: &Arc<Stream>,
    rx: &Receiver<Outgoing>,
    state: &Arc<ConnState>,
) {
    let Ok(write_stream) = stream.try_clone() else {
        // No write half: nothing will ever be written; release the
        // gauge for anything the reader queues until it notices.
        for msg in rx.iter() {
            if let Outgoing::Answer { .. } = msg {
                state.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
        return;
    };
    let mut out = BufWriter::new(write_stream);
    // Answers written into the BufWriter but not yet flushed to the
    // socket; settled against `state.in_flight` at each flush.
    let mut unflushed: u64 = 0;
    let settle = |state: &ConnState, unflushed: &mut u64| {
        if *unflushed > 0 {
            state.in_flight.fetch_sub(*unflushed, Ordering::AcqRel);
            *unflushed = 0;
        }
    };
    // On any terminal path, release the gauge for everything queued but
    // never written, so drain is not held hostage by a dead peer.
    let abandon = |state: &ConnState, unflushed: u64, rx: &Receiver<Outgoing>| {
        let mut orphaned = unflushed;
        for msg in rx.iter() {
            if let Outgoing::Answer { .. } = msg {
                orphaned += 1;
            }
        }
        if orphaned > 0 {
            state.in_flight.fetch_sub(orphaned, Ordering::AcqRel);
        }
    };
    loop {
        let msg = match rx.try_recv() {
            Ok(msg) => msg,
            Err(mpsc::TryRecvError::Empty) => {
                if out.flush().is_err() {
                    abandon(state, unflushed, rx);
                    return;
                }
                settle(state, &mut unflushed);
                match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break, // reader closed the channel
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => break,
        };
        let io = match msg {
            Outgoing::HelloAck => {
                let server = &shared.server;
                let clamp = |v: usize| u32::try_from(v).unwrap_or(u32::MAX);
                let snapshot = server.registry().snapshot();
                wire::write_hello_ack(
                    &mut out,
                    FLAG_LIVENESS,
                    clamp(server.dim()),
                    clamp(snapshot.model().rows()),
                    snapshot.id(),
                )
            }
            Outgoing::Answer { id, pending } => {
                let res = match pending.wait() {
                    Ok(hits) => wire::write_response(&mut out, id, &hits),
                    Err(e) => wire::write_error(&mut out, id, serve_error_code(&e), &e.to_string()),
                };
                if res.is_ok() {
                    unflushed += 1;
                }
                res
            }
            Outgoing::Ping { nonce } => wire::write_ping(&mut out, nonce),
            Outgoing::Pong { nonce } => wire::write_pong(&mut out, nonce),
            Outgoing::GoAway => {
                wire::write_goaway(&mut out, state.last_accepted.load(Ordering::Acquire))
            }
            Outgoing::Error { id, code, message, fatal } => {
                let res = wire::write_error(&mut out, id, code, &message);
                if fatal {
                    if res.and_then(|()| out.flush()).is_ok() {
                        settle(state, &mut unflushed);
                    }
                    abandon(state, unflushed, rx);
                    return;
                }
                res
            }
        };
        if io.is_err() {
            // The peer stopped reading; drain remaining messages without
            // writing so blocked reader sends unblock, then exit. The
            // queries themselves are still answered server-side.
            abandon(state, unflushed, rx);
            return;
        }
    }
    if out.flush().is_ok() {
        settle(state, &mut unflushed);
    } else if unflushed > 0 {
        state.in_flight.fetch_sub(unflushed, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Searchable, ServeConfig};
    use hd_linalg::BitVector;
    use std::time::Duration;

    fn tiny_server() -> Arc<Server> {
        let rows: Vec<BitVector> = (0..8)
            .map(|i| BitVector::from_bools(&(0..64).map(|b| (b + i) % 3 == 0).collect::<Vec<_>>()))
            .collect();
        let memory = hd_linalg::SearchMemory::from_rows(&rows).unwrap();
        Arc::new(
            Server::start(
                Arc::new(memory) as Arc<dyn Searchable>,
                ServeConfig {
                    max_batch: 4,
                    max_delay: Duration::from_micros(100),
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn config_rejects_zero_limits() {
        let server = tiny_server();
        for config in [
            WireConfig { max_frame_queries: 0, ..Default::default() },
            WireConfig { conn_in_flight: 0, ..Default::default() },
        ] {
            assert!(matches!(
                WireServer::start(Arc::clone(&server), config),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_listeners() {
        let wire = WireServer::start(tiny_server(), WireConfig::default()).unwrap();
        let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
        assert_ne!(addr.port(), 0);
        wire.shutdown();
        wire.shutdown();
        assert!(matches!(wire.listen_tcp("127.0.0.1:0"), Err(ServeError::Shutdown)));
        assert_eq!(wire.connections(), 0);
    }

    #[test]
    fn serve_error_codes_cover_the_wire_variants() {
        assert_eq!(
            serve_error_code(&ServeError::DimensionMismatch { expected: 1, found: 2 }),
            code::DIMENSION_MISMATCH
        );
        assert_eq!(
            serve_error_code(&ServeError::MalformedPayload { reason: String::new() }),
            code::MALFORMED
        );
        assert_eq!(serve_error_code(&ServeError::Overloaded), code::OVERLOADED);
        assert_eq!(serve_error_code(&ServeError::Shutdown), code::SHUTDOWN);
        assert_eq!(serve_error_code(&ServeError::Model { reason: String::new() }), code::MODEL);
    }
}
