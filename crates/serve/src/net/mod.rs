//! TCP / Unix-domain-socket front-end for the micro-batching server.
//!
//! A std-only network layer (no external runtime): each listener runs a
//! thread-per-connection accept loop, and each connection runs a reader
//! thread (parse frames → [`crate::Server::submit_packed`]) plus a
//! writer thread (wait pendings in FIFO order → stream response
//! frames). Because co-flushed queries complete together, FIFO waiting
//! streams each micro-batch flush back the moment it publishes —
//! responses are per-flush, never a per-connection barrier.
//!
//! **Zero-repack ingest.** The QUERY payload *is* the
//! [`hd_linalg::QueryBatchBuilder`] row layout: `count` rows of
//! `words_per_query` packed little-endian `u64`s. The reader hands the
//! whole payload to [`crate::Server::submit_packed`], which lands it in
//! the pending batch as one word copy under one queue-lock acquisition.
//!
//! **Backpressure.** Two independent bounds:
//! * per server — [`crate::ServeConfig::max_in_flight`] sheds whole
//!   frames at admission with a typed `OVERLOADED` error frame;
//! * per connection — [`WireConfig::conn_in_flight`] bounds queries
//!   submitted but not yet written back. At the bound the reader stops
//!   reading, which propagates to the client through TCP flow control.
//!
//! **Malformed input never panics a worker.** Recoverable violations
//! (wrong dimensionality, `k == 0`, unknown model key, zero-query
//! frames, shed frames) answer with a typed error frame and keep the
//! connection open; unrecoverable ones (bad magic, unknown frame type,
//! oversized declarations) answer with a final error frame and close —
//! after every already-submitted query's response has been written.
//! Queries in flight are never lost to a later bad frame.

mod client;
pub mod wire;

pub use client::{WireClient, WireEvent};
pub use wire::{
    code, serve_error_code, ErrorBody, Header, WireError, CONNECTION_ERROR_ID, FLAG_DEGRADED,
    FT_ERROR, FT_HELLO, FT_HELLO_ACK, FT_QUERY, FT_RESPONSE, HEADER_LEN, MAGIC,
};

use crate::{PendingTopK, ServeError, Server};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Wire front-end tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Largest query count a single QUERY frame may declare. A frame
    /// over the limit is connection-fatal ([`code::OVERSIZED_FRAME`]):
    /// its declared payload cannot be trusted enough to drain.
    pub max_frame_queries: u32,
    /// Per-connection bound on queries submitted but not yet written
    /// back. The reader blocks at the bound (TCP flow control carries
    /// the backpressure to the client).
    pub conn_in_flight: usize,
    /// Sets `TCP_NODELAY` on accepted TCP connections (response frames
    /// are small; Nagle batching would add artificial latency under the
    /// micro-batcher's own deadline).
    pub nodelay: bool,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig { max_frame_queries: 4096, conn_in_flight: 4096, nodelay: true }
    }
}

impl WireConfig {
    fn validate(&self) -> crate::Result<()> {
        if self.max_frame_queries == 0 || self.conn_in_flight == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_frame_queries and conn_in_flight must be positive".into(),
            });
        }
        Ok(())
    }
}

/// A duplex byte stream of either transport. Everything above this enum
/// is transport-agnostic.
#[derive(Debug)]
pub(crate) enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Shuts down both directions, unblocking any thread parked in a
    /// read or write on a clone of this stream.
    pub(crate) fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => drop(s.shutdown(std::net::Shutdown::Both)),
            #[cfg(unix)]
            Stream::Unix(s) => drop(s.shutdown(std::net::Shutdown::Both)),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// How a listener's accept loop is unblocked at shutdown: a throwaway
/// self-connection.
enum AcceptWaker {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl AcceptWaker {
    fn wake(&self) {
        match self {
            AcceptWaker::Tcp(addr) => drop(TcpStream::connect(addr)),
            #[cfg(unix)]
            AcceptWaker::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

struct WireShared {
    server: Arc<Server>,
    config: WireConfig,
    shutdown: AtomicBool,
    /// Write-half clones of live connections, force-closed at shutdown.
    /// Entries of finished connections are pruned opportunistically.
    conns: Mutex<Vec<(Arc<Stream>, JoinHandle<()>)>>,
    wakers: Mutex<Vec<AcceptWaker>>,
    /// Unix socket paths to unlink at shutdown.
    #[cfg(unix)]
    uds_paths: Mutex<Vec<PathBuf>>,
}

/// The socket front-end: accepts TCP and/or Unix-domain connections and
/// serves the wire protocol over an inner [`Server`].
///
/// One `WireServer` can run several listeners at once (e.g. a TCP port
/// for remote clients and a UDS path for co-located ones); every
/// connection feeds the same micro-batcher, so cross-connection traffic
/// coalesces into shared flush cycles.
///
/// # Example
///
/// ```no_run
/// use hd_serve::net::{WireClient, WireServer};
/// use hd_serve::{Searchable, ServeConfig, Server};
/// use hd_linalg::{BitVector, SearchMemory};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let memory = SearchMemory::from_rows(&vec![BitVector::zeros(256); 4])?;
/// let server = Arc::new(Server::start(
///     Arc::new(memory) as Arc<dyn Searchable>,
///     ServeConfig::default(),
/// )?);
/// let wire = WireServer::start(Arc::clone(&server), Default::default())?;
/// let addr = wire.listen_tcp("127.0.0.1:0")?; // ephemeral port
/// let mut client = WireClient::connect_tcp(addr)?;
/// let ids = client.send_queries(&[BitVector::zeros(256)], 1)?;
/// let event = client.recv()?;
/// # Ok(())
/// # }
/// ```
pub struct WireServer {
    shared: Arc<WireShared>,
    accept_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("config", &self.shared.config)
            .field("shutdown", &self.shared.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl WireServer {
    /// Creates a front-end over `server` with no listeners yet; add them
    /// with [`WireServer::listen_tcp`] / [`WireServer::listen_uds`].
    ///
    /// The front-end borrows the server: shutting the front-end down
    /// closes sockets but leaves `server` running for in-process
    /// callers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero limits in
    /// `config`.
    pub fn start(server: Arc<Server>, config: WireConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(WireServer {
            shared: Arc::new(WireShared {
                server,
                config,
                shutdown: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                wakers: Mutex::new(Vec::new()),
                #[cfg(unix)]
                uds_paths: Mutex::new(Vec::new()),
            }),
            accept_threads: Mutex::new(Vec::new()),
        })
    }

    /// Binds a TCP listener on `addr` and spawns its accept loop.
    /// Returns the bound address — bind to port 0 for an ephemeral port.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] wrapping bind/spawn
    /// failures, or [`ServeError::Shutdown`] after shutdown.
    pub fn listen_tcp<A: ToSocketAddrs>(&self, addr: A) -> crate::Result<SocketAddr> {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(ServeError::Shutdown);
        }
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::InvalidConfig {
            reason: format!("failed to bind TCP listener: {e}"),
        })?;
        let local = listener.local_addr().map_err(|e| ServeError::InvalidConfig {
            reason: format!("failed to resolve bound TCP address: {e}"),
        })?;
        self.shared
            .wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(AcceptWaker::Tcp(local));
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("hd-wire-tcp-{}", local.port()))
            .spawn(move || accept_loop(&shared, listener))
            .map_err(|e| ServeError::InvalidConfig {
                reason: format!("failed to spawn accept thread: {e}"),
            })?;
        self.accept_threads.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        Ok(local)
    }

    /// Binds a Unix-domain listener on `path` (removing a stale socket
    /// file left by a previous process) and spawns its accept loop. The
    /// socket file is unlinked at shutdown.
    ///
    /// # Errors
    ///
    /// As [`WireServer::listen_tcp`].
    #[cfg(unix)]
    pub fn listen_uds<P: Into<PathBuf>>(&self, path: P) -> crate::Result<()> {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(ServeError::Shutdown);
        }
        let path = path.into();
        // A stale socket file from a crashed predecessor would fail the
        // bind; only ever remove sockets, not regular files.
        if let Ok(meta) = std::fs::symlink_metadata(&path) {
            use std::os::unix::fs::FileTypeExt;
            if meta.file_type().is_socket() {
                let _ = std::fs::remove_file(&path);
            }
        }
        let listener = UnixListener::bind(&path).map_err(|e| ServeError::InvalidConfig {
            reason: format!("failed to bind UDS listener on {}: {e}", path.display()),
        })?;
        let shared = Arc::clone(&self.shared);
        self.shared
            .wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(AcceptWaker::Unix(path.clone()));
        self.shared.uds_paths.lock().unwrap_or_else(PoisonError::into_inner).push(path);
        let handle = std::thread::Builder::new()
            .name("hd-wire-uds".into())
            .spawn(move || accept_loop_uds(&shared, listener))
            .map_err(|e| ServeError::InvalidConfig {
                reason: format!("failed to spawn accept thread: {e}"),
            })?;
        self.accept_threads.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        Ok(())
    }

    /// Live connections currently registered (unreaped finished ones may
    /// be counted until the next accept prunes them).
    pub fn connections(&self) -> usize {
        self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Shuts the front-end down: stops accepting, force-closes every
    /// connection's socket, joins all connection and accept threads, and
    /// unlinks UDS socket files. In-flight queries are still answered by
    /// the inner server (their responses are written if the peer is
    /// still reading). The inner [`Server`] itself keeps running — it
    /// belongs to the caller. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loops with throwaway self-connections, then
        // join them so no new connections register afterwards.
        for waker in self.shared.wakers.lock().unwrap_or_else(PoisonError::into_inner).drain(..) {
            waker.wake();
        }
        for handle in self.accept_threads.lock().unwrap_or_else(PoisonError::into_inner).drain(..) {
            let _ = handle.join();
        }
        let conns: Vec<(Arc<Stream>, JoinHandle<()>)> =
            self.shared.conns.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for (stream, _) in &conns {
            stream.shutdown();
        }
        for (_, handle) in conns {
            let _ = handle.join();
        }
        #[cfg(unix)]
        for path in self.shared.uds_paths.lock().unwrap_or_else(PoisonError::into_inner).drain(..) {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<WireShared>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if shared.config.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                register_connection(shared, Stream::Tcp(stream));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Transient accept errors (EMFILE, aborted handshakes)
                // must not kill the listener.
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(unix)]
fn accept_loop_uds(shared: &Arc<WireShared>, listener: UnixListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                register_connection(shared, Stream::Unix(stream));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::yield_now();
            }
        }
    }
}

/// Spawns the reader thread for a fresh connection and registers its
/// write-half clone for forced shutdown. A connection whose clone or
/// spawn fails is simply dropped (the client sees a closed socket).
fn register_connection(shared: &Arc<WireShared>, stream: Stream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let write_half = Arc::new(write_half);
    let conn_shared = Arc::clone(shared);
    let conn_write = Arc::clone(&write_half);
    let Ok(handle) = std::thread::Builder::new()
        .name("hd-wire-conn".into())
        .spawn(move || connection_reader(&conn_shared, stream, &conn_write))
    else {
        return;
    };
    let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
    // Reap finished connections so the registry doesn't grow with churn.
    conns.retain(|(_, h)| !h.is_finished());
    conns.push((write_half, handle));
}

/// What the reader queues for the writer thread. FIFO order *is* the
/// response order: answers of one flush cycle complete together, so the
/// writer streams each flush as it publishes.
enum Outgoing {
    HelloAck,
    Answer { id: u64, pending: PendingTopK },
    Error { id: u64, code: u16, message: String, fatal: bool },
}

/// Per-connection reader loop: parses frames, submits packed queries,
/// queues outgoing work. Exits on disconnect, fatal protocol error, or
/// forced socket shutdown; always joins its writer before returning so
/// every in-flight query's response (or the final error frame) is
/// written first.
fn connection_reader(shared: &Arc<WireShared>, mut stream: Stream, write_half: &Arc<Stream>) {
    let (tx, rx) = mpsc::sync_channel::<Outgoing>(shared.config.conn_in_flight);
    let writer_shared = Arc::clone(shared);
    let writer_half = Arc::clone(write_half);
    let Ok(writer) = std::thread::Builder::new()
        .name("hd-wire-write".into())
        .spawn(move || connection_writer(&writer_shared, &writer_half, &rx))
    else {
        return;
    };
    read_frames(shared, &mut stream, &tx);
    // Closing the channel lets the writer drain queued answers and exit;
    // a fatal error frame queued last is written after them.
    drop(tx);
    let _ = writer.join();
    // Unblock a peer still writing into a connection we abandoned.
    stream.shutdown();
}

/// Sends on the bounded channel, blocking for backpressure. Returns
/// `false` when the writer is gone (its socket died) — the reader then
/// stops consuming frames.
fn send_outgoing(tx: &SyncSender<Outgoing>, msg: Outgoing) -> bool {
    tx.send(msg).is_ok()
}

fn read_frames(shared: &Arc<WireShared>, stream: &mut Stream, tx: &SyncSender<Outgoing>) {
    let server = &shared.server;
    let words_per_query = server.dim().div_ceil(64) as u32;
    let mut words: Vec<u64> = Vec::new();
    loop {
        let header = match wire::read_header(stream) {
            Ok(h) => h,
            Err(WireError::Protocol(what)) => {
                let _ = send_outgoing(
                    tx,
                    Outgoing::Error {
                        id: CONNECTION_ERROR_ID,
                        code: code::BAD_MAGIC,
                        message: what,
                        fatal: true,
                    },
                );
                return;
            }
            // Disconnect (clean or mid-header) or forced shutdown.
            Err(_) => return,
        };
        match header.frame_type {
            FT_HELLO => {
                if !send_outgoing(tx, Outgoing::HelloAck) {
                    return;
                }
            }
            FT_QUERY => {
                if !handle_query_frame(shared, stream, tx, &header, words_per_query, &mut words) {
                    return;
                }
            }
            other => {
                let _ = send_outgoing(
                    tx,
                    Outgoing::Error {
                        id: CONNECTION_ERROR_ID,
                        code: code::BAD_FRAME_TYPE,
                        message: format!("unknown frame type {other}"),
                        fatal: true,
                    },
                );
                return;
            }
        }
    }
}

/// Handles one QUERY frame; returns `false` when the connection must
/// close (fatal error or disconnect).
fn handle_query_frame(
    shared: &Arc<WireShared>,
    stream: &mut Stream,
    tx: &SyncSender<Outgoing>,
    header: &Header,
    words_per_query: u32,
    words: &mut Vec<u64>,
) -> bool {
    let server = &shared.server;
    let payload_words = header.count as u64 * header.words_per_query as u64;
    let recoverable =
        |id: u64, code: u16, message: String| Outgoing::Error { id, code, message, fatal: false };
    // Declared-size sanity first: everything past this point may trust
    // `count` and `words_per_query` enough to drain the payload.
    if header.count > shared.config.max_frame_queries
        || header.words_per_query > words_per_query.max(1 << 16)
    {
        let _ = send_outgoing(
            tx,
            Outgoing::Error {
                id: CONNECTION_ERROR_ID,
                code: code::OVERSIZED_FRAME,
                message: format!(
                    "frame declares {} queries x {} words (limits: {} queries, {} words)",
                    header.count,
                    header.words_per_query,
                    shared.config.max_frame_queries,
                    words_per_query
                ),
                fatal: true,
            },
        );
        return false;
    }
    // Recoverable rejections: consume the declared payload so the next
    // frame parses, answer with a typed error frame, keep going. A
    // truncated payload (peer died mid-frame) exits silently.
    let reject = |stream: &mut Stream, code: u16, message: String| -> bool {
        let first_id = match wire::read_u64(stream) {
            Ok(id) => id,
            Err(_) => return false,
        };
        if wire::drain(stream, payload_words * 8).is_err() {
            return false;
        }
        send_outgoing(tx, recoverable(first_id, code, message))
    };
    if header.model_key != 0 {
        return reject(
            stream,
            code::UNKNOWN_MODEL_KEY,
            format!("model key {} unknown (this server serves key 0)", header.model_key),
        );
    }
    if header.count == 0 {
        return reject(stream, code::MALFORMED, "QUERY frame declares zero queries".into());
    }
    if header.words_per_query != words_per_query {
        return reject(
            stream,
            code::DIMENSION_MISMATCH,
            format!(
                "frame packs {} words per query; D = {} needs {}",
                header.words_per_query,
                server.dim(),
                words_per_query
            ),
        );
    }
    if header.k == 0 {
        return reject(stream, code::BAD_K, "k must be at least 1".into());
    }
    let first_id = match wire::read_u64(stream) {
        Ok(id) => id,
        Err(_) => return false,
    };
    if wire::read_words(stream, payload_words as usize, words).is_err() {
        // Mid-frame disconnect: nothing was submitted for this frame;
        // earlier frames' answers still drain through the writer.
        return false;
    }
    match server.submit_packed(words, header.k as usize) {
        Ok(pendings) => {
            for (i, pending) in pendings.into_iter().enumerate() {
                if !send_outgoing(tx, Outgoing::Answer { id: first_id + i as u64, pending }) {
                    return false;
                }
            }
            true
        }
        Err(e @ ServeError::Shutdown) => {
            let _ = send_outgoing(
                tx,
                Outgoing::Error {
                    id: first_id,
                    code: code::SHUTDOWN,
                    message: e.to_string(),
                    fatal: true,
                },
            );
            false
        }
        Err(e) => send_outgoing(tx, recoverable(first_id, serve_error_code(&e), e.to_string())),
    }
}

/// Per-connection writer loop: redeems pendings in FIFO order and
/// streams frames back. The `BufWriter` is flushed whenever the queue
/// goes momentarily empty, so each micro-batch flush leaves as one
/// syscall burst without waiting for the connection to go idle.
fn connection_writer(shared: &Arc<WireShared>, stream: &Arc<Stream>, rx: &Receiver<Outgoing>) {
    let Ok(write_stream) = stream.try_clone() else { return };
    let mut out = BufWriter::new(write_stream);
    loop {
        let msg = match rx.try_recv() {
            Ok(msg) => msg,
            Err(mpsc::TryRecvError::Empty) => {
                if out.flush().is_err() {
                    return;
                }
                match rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break, // reader closed the channel
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => break,
        };
        let io = match msg {
            Outgoing::HelloAck => {
                let server = &shared.server;
                let clamp = |v: usize| u32::try_from(v).unwrap_or(u32::MAX);
                let snapshot = server.registry().snapshot();
                wire::write_hello_ack(
                    &mut out,
                    clamp(server.dim()),
                    clamp(snapshot.model().rows()),
                    snapshot.id(),
                )
            }
            Outgoing::Answer { id, pending } => match pending.wait() {
                Ok(hits) => wire::write_response(&mut out, id, &hits),
                Err(e) => wire::write_error(&mut out, id, serve_error_code(&e), &e.to_string()),
            },
            Outgoing::Error { id, code, message, fatal } => {
                let res = wire::write_error(&mut out, id, code, &message);
                if fatal {
                    let _ = res.and_then(|()| out.flush());
                    return;
                }
                res
            }
        };
        if io.is_err() {
            // The peer stopped reading; drain remaining messages without
            // writing so blocked reader sends unblock, then exit. The
            // queries themselves are still answered server-side.
            for _ in rx.iter() {}
            return;
        }
    }
    let _ = out.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Searchable, ServeConfig};
    use hd_linalg::BitVector;
    use std::time::Duration;

    fn tiny_server() -> Arc<Server> {
        let rows: Vec<BitVector> = (0..8)
            .map(|i| BitVector::from_bools(&(0..64).map(|b| (b + i) % 3 == 0).collect::<Vec<_>>()))
            .collect();
        let memory = hd_linalg::SearchMemory::from_rows(&rows).unwrap();
        Arc::new(
            Server::start(
                Arc::new(memory) as Arc<dyn Searchable>,
                ServeConfig {
                    max_batch: 4,
                    max_delay: Duration::from_micros(100),
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn config_rejects_zero_limits() {
        let server = tiny_server();
        for config in [
            WireConfig { max_frame_queries: 0, ..Default::default() },
            WireConfig { conn_in_flight: 0, ..Default::default() },
        ] {
            assert!(matches!(
                WireServer::start(Arc::clone(&server), config),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_listeners() {
        let wire = WireServer::start(tiny_server(), WireConfig::default()).unwrap();
        let addr = wire.listen_tcp("127.0.0.1:0").unwrap();
        assert_ne!(addr.port(), 0);
        wire.shutdown();
        wire.shutdown();
        assert!(matches!(wire.listen_tcp("127.0.0.1:0"), Err(ServeError::Shutdown)));
        assert_eq!(wire.connections(), 0);
    }

    #[test]
    fn serve_error_codes_cover_the_wire_variants() {
        assert_eq!(
            serve_error_code(&ServeError::DimensionMismatch { expected: 1, found: 2 }),
            code::DIMENSION_MISMATCH
        );
        assert_eq!(
            serve_error_code(&ServeError::MalformedPayload { reason: String::new() }),
            code::MALFORMED
        );
        assert_eq!(serve_error_code(&ServeError::Overloaded), code::OVERLOADED);
        assert_eq!(serve_error_code(&ServeError::Shutdown), code::SHUTDOWN);
        assert_eq!(serve_error_code(&ServeError::Model { reason: String::new() }), code::MODEL);
    }
}
