//! The binary wire codec: framed, versioned, little-endian, zero-repack.
//!
//! Every frame is a fixed 24-byte header followed by a type-specific
//! payload. All integers are little-endian. The QUERY payload is the
//! batch layout itself — `count` rows of `words_per_query` packed `u64`
//! words, exactly what [`hd_linalg::QueryBatchBuilder::push_packed_words`]
//! ingests — so a frame lands in the server's pending batch as one word
//! copy with no per-bit repacking on either side.
//!
//! ```text
//! header (24 bytes)
//! ┌────────────┬──────┬───────┬────────┬───────────┬─────────┬────────────────┐
//! │ magic      │ type │ flags │ k      │ model key │ count   │ words_per_query│
//! │ u32 "HDW1" │ u8   │ u8    │ u16    │ u64       │ u32     │ u32            │
//! └────────────┴──────┴───────┴────────┴───────────┴─────────┴────────────────┘
//!
//! QUERY payload:     first_id u64, then count × words_per_query × u64
//! RESPONSE payload:  id u64, generation u64, then k × (row u32, class u32, score u32)
//!                    (flags bit 0 = degraded)
//! ERROR payload:     id u64 (u64::MAX = connection-level), code u16,
//!                    msg_len u16, msg_len UTF-8 bytes
//! HELLO payload:     empty
//! HELLO_ACK payload: dim u32, rows u32, generation u64
//!                    (flags bit 0 = liveness: peer speaks PING/PONG/GOAWAY)
//! PING payload:      empty (nonce rides in the header's model-key field)
//! PONG payload:      empty (echoes the PING's nonce in model key)
//! GOAWAY payload:    empty (model key = last-accepted query id,
//!                    [`GOAWAY_NONE`] when none was accepted)
//! ```
//!
//! The protocol version is baked into the magic (`HDW1`); an
//! incompatible peer fails the magic check instead of mis-parsing.
//!
//! **Header-only frames and forward compatibility.** The liveness frames
//! (PING, PONG, GOAWAY) carry their one `u64` of data in the header's
//! model-key field and declare `count == 0`, `words_per_query == 0` —
//! they have no payload at all. Because the header is fixed-size, a peer
//! that does not understand such a frame stays byte-synchronized on the
//! stream: the unknown frame is a *recoverable* error (answerable with a
//! typed [`code::BAD_FRAME_TYPE`] error frame, connection kept), never a
//! desync. Receivers in this crate extend that convention to any future
//! frame type: an unknown type whose header declares no payload
//! ([`Header::is_payload_free`]) is skipped or rejected recoverably,
//! while an unknown type that *does* declare payload bytes is
//! connection-fatal, because the stream position can no longer be
//! trusted. A server advertises liveness support via [`FLAG_LIVENESS`]
//! in the HELLO_ACK flags; clients must not PING a server that did not
//! advertise it (an old server treats any unknown frame as fatal).

use crate::Prediction;
use std::io::{Read, Write};

/// Frame magic: the bytes `HDW1` read as a little-endian `u32`. The
/// trailing `1` is the protocol version.
pub const MAGIC: u32 = u32::from_le_bytes(*b"HDW1");

/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 24;

/// Client → server handshake; the server answers with
/// [`FT_HELLO_ACK`].
pub const FT_HELLO: u8 = 1;
/// Server → client handshake answer carrying the served model's shape.
pub const FT_HELLO_ACK: u8 = 2;
/// Client → server packed query frame.
pub const FT_QUERY: u8 = 3;
/// Server → client answer for one query.
pub const FT_RESPONSE: u8 = 4;
/// Server → client typed error (per-query or connection-level).
pub const FT_ERROR: u8 = 5;
/// Liveness probe (either direction). Header-only: the probe nonce rides
/// in the model-key field; the peer echoes it back in an [`FT_PONG`].
pub const FT_PING: u8 = 6;
/// Liveness answer: echoes the [`FT_PING`]'s nonce in the model-key
/// field. Header-only.
pub const FT_PONG: u8 = 7;
/// Server → client: this connection stops accepting queries (drain or
/// shutdown). Header-only; the model-key field carries the id of the
/// last query this connection *accepted* ([`GOAWAY_NONE`] when none) so
/// the client knows exactly which submissions will still be answered —
/// everything after that id must be retried elsewhere.
pub const FT_GOAWAY: u8 = 8;

/// Response flag bit 0: the answering model was serving degraded (one or
/// more shards permanently failed; the answer is exact over survivors).
pub const FLAG_DEGRADED: u8 = 1;

/// HELLO_ACK flag bit 0: the server speaks the liveness frames
/// ([`FT_PING`] / [`FT_PONG`] / [`FT_GOAWAY`]). A client must only send
/// PING to servers that advertised this (an older server treats unknown
/// frame types as connection-fatal).
pub const FLAG_LIVENESS: u8 = 1;

/// The model-key value a [`FT_GOAWAY`] frame carries when the connection
/// never accepted a query.
pub const GOAWAY_NONE: u64 = u64::MAX;

/// The `id` an [`FT_ERROR`] frame carries when the error concerns the
/// connection itself rather than one identifiable query.
pub const CONNECTION_ERROR_ID: u64 = u64::MAX;

/// Typed wire error codes carried by [`FT_ERROR`] frames.
pub mod code {
    /// Frame magic mismatch — the peer is not speaking this protocol
    /// (or this version). Connection-fatal.
    pub const BAD_MAGIC: u16 = 1;
    /// Unknown frame type. Connection-fatal.
    pub const BAD_FRAME_TYPE: u16 = 2;
    /// A frame's declared size exceeds the server's limits; the stream
    /// position can no longer be trusted. Connection-fatal.
    pub const OVERSIZED_FRAME: u16 = 3;
    /// `words_per_query` disagrees with the served dimensionality. The
    /// frame is drained and skipped; the connection stays usable.
    pub const DIMENSION_MISMATCH: u16 = 4;
    /// `k == 0` (or k exceeds the frame format's `u16`). Recoverable.
    pub const BAD_K: u16 = 5;
    /// The server shed the frame at admission
    /// ([`crate::ServeError::Overloaded`]); retry later. Recoverable.
    pub const OVERLOADED: u16 = 6;
    /// The server is shutting down. Connection-fatal.
    pub const SHUTDOWN: u16 = 7;
    /// The model failed while answering ([`crate::ServeError::Model`]).
    pub const MODEL: u16 = 8;
    /// A non-zero model key was addressed; this server serves only the
    /// default model (key 0). Recoverable.
    pub const UNKNOWN_MODEL_KEY: u16 = 9;
    /// Any other malformed payload (zero query count, ragged words).
    /// Recoverable.
    pub const MALFORMED: u16 = 10;
    /// The server is at its configured connection limit
    /// ([`crate::net::WireConfig::max_connections`]) and refused this
    /// connection at accept. Connection-fatal (the socket closes right
    /// after the frame); retry later or elsewhere.
    pub const CONNECTION_LIMIT: u16 = 11;
    /// The peer let the connection idle past the server's
    /// [`crate::net::WireConfig::idle_timeout`] and did not answer the
    /// grace PING (or stalled mid-frame past the budget). Connection-fatal.
    pub const IDLE_TIMEOUT: u16 = 12;
}

/// A decoded frame header (see the module docs for the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Frame type (`FT_*`). Unknown values are the receiver's
    /// [`code::BAD_FRAME_TYPE`] to reject — decoding only checks magic.
    pub frame_type: u8,
    /// Type-specific flag bits ([`FLAG_DEGRADED`] on responses).
    pub flags: u8,
    /// Requested k (queries) or hit count (responses).
    pub k: u16,
    /// Model key; `0` addresses the server's default (only) model. A
    /// forward-compatibility hook for multi-tenant registries.
    pub model_key: u64,
    /// Queries in a QUERY frame; otherwise 0.
    pub count: u32,
    /// Packed `u64` words per query in a QUERY frame; otherwise 0.
    pub words_per_query: u32,
}

impl Header {
    /// A header with every field zeroed except the frame type.
    pub fn new(frame_type: u8) -> Self {
        Header { frame_type, flags: 0, k: 0, model_key: 0, count: 0, words_per_query: 0 }
    }

    /// Whether this header declares no payload bytes at all (`count` and
    /// `words_per_query` both zero). Unknown frame types that are
    /// payload-free leave the stream synchronized and are recoverable;
    /// unknown types that declare payload are connection-fatal.
    pub fn is_payload_free(&self) -> bool {
        self.count == 0 && self.words_per_query == 0
    }

    /// Encodes the header into its 24-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[4] = self.frame_type;
        buf[5] = self.flags;
        buf[6..8].copy_from_slice(&self.k.to_le_bytes());
        buf[8..16].copy_from_slice(&self.model_key.to_le_bytes());
        buf[16..20].copy_from_slice(&self.count.to_le_bytes());
        buf[20..24].copy_from_slice(&self.words_per_query.to_le_bytes());
        buf
    }

    /// Decodes a 24-byte wire header, checking only the magic (frame
    /// types are validated by the receiver so it can answer with a typed
    /// error frame).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] on a magic mismatch.
    pub fn decode(buf: &[u8; HEADER_LEN]) -> Result<Self, WireError> {
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice"));
        if magic != MAGIC {
            return Err(WireError::Protocol(format!(
                "bad frame magic {magic:#010x} (expected {MAGIC:#010x} = \"HDW1\")"
            )));
        }
        Ok(Header {
            frame_type: buf[4],
            flags: buf[5],
            k: u16::from_le_bytes(buf[6..8].try_into().expect("2-byte slice")),
            model_key: u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice")),
            count: u32::from_le_bytes(buf[16..20].try_into().expect("4-byte slice")),
            words_per_query: u32::from_le_bytes(buf[20..24].try_into().expect("4-byte slice")),
        })
    }
}

/// Errors of the wire layer: transport failures, protocol violations by
/// the peer, and typed error frames received from the server.
#[derive(Debug)]
pub enum WireError {
    /// A socket read/write failed (including peer disconnects).
    Io(std::io::Error),
    /// The peer violated the framing protocol.
    Protocol(String),
    /// The server answered with an [`FT_ERROR`] frame.
    Remote {
        /// The query the error concerns, or [`CONNECTION_ERROR_ID`].
        id: u64,
        /// One of the [`code`] constants.
        code: u16,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Protocol(what) => write!(f, "wire protocol violation: {what}"),
            WireError::Remote { id, code, message } => {
                write!(f, "server error frame (id {id}, code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Maps a [`crate::ServeError`] to its wire error code.
pub fn serve_error_code(e: &crate::ServeError) -> u16 {
    match e {
        crate::ServeError::DimensionMismatch { .. } => code::DIMENSION_MISMATCH,
        crate::ServeError::MalformedPayload { .. } => code::MALFORMED,
        crate::ServeError::InvalidConfig { .. } => code::BAD_K,
        crate::ServeError::Overloaded => code::OVERLOADED,
        crate::ServeError::Shutdown => code::SHUTDOWN,
        _ => code::MODEL,
    }
}

/// Writes an [`FT_ERROR`] frame. Messages longer than `u16::MAX` bytes
/// are truncated on a UTF-8 boundary.
pub fn write_error<W: Write>(w: &mut W, id: u64, code: u16, message: &str) -> std::io::Result<()> {
    let mut msg = message.as_bytes();
    if msg.len() > u16::MAX as usize {
        let mut cut = u16::MAX as usize;
        while !message.is_char_boundary(cut) {
            cut -= 1;
        }
        msg = &message.as_bytes()[..cut];
    }
    w.write_all(&Header::new(FT_ERROR).encode())?;
    w.write_all(&id.to_le_bytes())?;
    w.write_all(&code.to_le_bytes())?;
    w.write_all(&(msg.len() as u16).to_le_bytes())?;
    w.write_all(msg)
}

/// Writes an [`FT_RESPONSE`] frame for one answered query. Row and
/// class indices saturate at `u32::MAX` (a 4-billion-row memory exceeds
/// this wire format). `generation` and `degraded` are taken from the
/// slate's first entry when present.
pub fn write_response<W: Write>(w: &mut W, id: u64, hits: &[Prediction]) -> std::io::Result<()> {
    let clamp = |v: usize| u32::try_from(v).unwrap_or(u32::MAX);
    let mut header = Header::new(FT_RESPONSE);
    header.count = 1;
    header.k = u16::try_from(hits.len()).unwrap_or(u16::MAX);
    let (generation, degraded) = hits.first().map_or((0, false), |h| (h.generation, h.degraded));
    if degraded {
        header.flags |= FLAG_DEGRADED;
    }
    w.write_all(&header.encode())?;
    w.write_all(&id.to_le_bytes())?;
    w.write_all(&generation.to_le_bytes())?;
    for h in hits.iter().take(header.k as usize) {
        w.write_all(&clamp(h.row).to_le_bytes())?;
        w.write_all(&clamp(h.class).to_le_bytes())?;
        w.write_all(&h.score.to_le_bytes())?;
    }
    Ok(())
}

/// Writes an [`FT_QUERY`] frame: `count` queries of `words_per_query`
/// packed words each, ids `first_id..first_id + count`.
pub fn write_query<W: Write>(
    w: &mut W,
    k: u16,
    first_id: u64,
    words_per_query: u32,
    words: &[u64],
) -> std::io::Result<()> {
    debug_assert!(
        words_per_query > 0 && words.len().is_multiple_of(words_per_query as usize),
        "query payload must be whole rows"
    );
    let mut header = Header::new(FT_QUERY);
    header.k = k;
    header.count = (words.len() / words_per_query as usize) as u32;
    header.words_per_query = words_per_query;
    w.write_all(&header.encode())?;
    w.write_all(&first_id.to_le_bytes())?;
    // One pass through a byte buffer: on little-endian hosts this is the
    // identity transform of the in-memory words.
    let mut buf = Vec::with_capacity(words.len() * 8);
    for word in words {
        buf.extend_from_slice(&word.to_le_bytes());
    }
    w.write_all(&buf)
}

/// Writes an [`FT_HELLO`] frame.
pub fn write_hello<W: Write>(w: &mut W) -> std::io::Result<()> {
    w.write_all(&Header::new(FT_HELLO).encode())
}

/// Writes an [`FT_HELLO_ACK`] frame carrying the served model's shape.
/// `flags` advertises capabilities ([`FLAG_LIVENESS`]).
pub fn write_hello_ack<W: Write>(
    w: &mut W,
    flags: u8,
    dim: u32,
    rows: u32,
    generation: u64,
) -> std::io::Result<()> {
    let mut header = Header::new(FT_HELLO_ACK);
    header.flags = flags;
    w.write_all(&header.encode())?;
    w.write_all(&dim.to_le_bytes())?;
    w.write_all(&rows.to_le_bytes())?;
    w.write_all(&generation.to_le_bytes())
}

/// Writes a header-only [`FT_PING`] frame carrying `nonce` in the
/// model-key field.
pub fn write_ping<W: Write>(w: &mut W, nonce: u64) -> std::io::Result<()> {
    let mut header = Header::new(FT_PING);
    header.model_key = nonce;
    w.write_all(&header.encode())
}

/// Writes a header-only [`FT_PONG`] frame echoing `nonce`.
pub fn write_pong<W: Write>(w: &mut W, nonce: u64) -> std::io::Result<()> {
    let mut header = Header::new(FT_PONG);
    header.model_key = nonce;
    w.write_all(&header.encode())
}

/// Writes a header-only [`FT_GOAWAY`] frame. `last_accepted` is the id
/// of the last query this connection accepted for answering
/// ([`GOAWAY_NONE`] when none): every accepted query's response still
/// drains; later ids must be retried on another connection.
pub fn write_goaway<W: Write>(w: &mut W, last_accepted: u64) -> std::io::Result<()> {
    let mut header = Header::new(FT_GOAWAY);
    header.model_key = last_accepted;
    w.write_all(&header.encode())
}

/// Reads exactly one frame header.
///
/// # Errors
///
/// [`WireError::Io`] on transport failure (including a clean EOF before
/// a full header), [`WireError::Protocol`] on bad magic.
pub fn read_header<R: Read>(r: &mut R) -> Result<Header, WireError> {
    let mut buf = [0u8; HEADER_LEN];
    r.read_exact(&mut buf)?;
    Header::decode(&buf)
}

/// Reads `n` little-endian `u64` words into `out` (cleared first).
pub fn read_words<R: Read>(r: &mut R, n: usize, out: &mut Vec<u64>) -> std::io::Result<()> {
    out.clear();
    out.reserve(n);
    let mut buf = [0u8; 8 * 512];
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(512);
        let bytes = &mut buf[..take * 8];
        r.read_exact(bytes)?;
        out.extend(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))));
        remaining -= take;
    }
    Ok(())
}

/// Reads one little-endian `u64`.
pub fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads one little-endian `u32`.
pub fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Reads one little-endian `u16`.
pub fn read_u16<R: Read>(r: &mut R) -> std::io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

/// Drains and discards exactly `n` payload bytes — how the server skips
/// the body of a recoverable bad frame and stays in sync with the
/// stream.
pub fn drain<R: Read>(r: &mut R, n: u64) -> std::io::Result<()> {
    let copied = std::io::copy(&mut r.take(n), &mut std::io::sink())?;
    if copied < n {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer disconnected mid-frame",
        ));
    }
    Ok(())
}

/// Decoded body of an [`FT_ERROR`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// The query the error concerns, or [`CONNECTION_ERROR_ID`].
    pub id: u64,
    /// One of the [`code`] constants.
    pub code: u16,
    /// Human-readable detail.
    pub message: String,
}

/// Reads the payload of an [`FT_ERROR`] frame (header already consumed).
pub fn read_error_body<R: Read>(r: &mut R) -> Result<ErrorBody, WireError> {
    let id = read_u64(r)?;
    let code = read_u16(r)?;
    let len = read_u16(r)? as usize;
    let mut msg = vec![0u8; len];
    r.read_exact(&mut msg)?;
    let message = String::from_utf8(msg)
        .map_err(|_| WireError::Protocol("error frame message is not UTF-8".into()))?;
    Ok(ErrorBody { id, code, message })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips_every_field() {
        let h = Header {
            frame_type: FT_QUERY,
            flags: FLAG_DEGRADED,
            k: 513,
            model_key: 0xdead_beef_cafe_f00d,
            count: 70_000,
            words_per_query: 64,
        };
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = Header::new(FT_HELLO).encode();
        buf[3] ^= 0xff;
        assert!(matches!(Header::decode(&buf), Err(WireError::Protocol(_))));
    }

    #[test]
    fn error_frame_roundtrips_and_truncates_long_messages() {
        let mut buf = Vec::new();
        write_error(&mut buf, 42, code::OVERLOADED, "shed").unwrap();
        let mut r = &buf[..];
        let h = read_header(&mut r).unwrap();
        assert_eq!(h.frame_type, FT_ERROR);
        let body = read_error_body(&mut r).unwrap();
        assert_eq!(body, ErrorBody { id: 42, code: code::OVERLOADED, message: "shed".into() });
        // A message over the u16 length field truncates on a char
        // boundary instead of corrupting the stream.
        let long = "é".repeat(40_000); // 80 000 bytes
        let mut buf = Vec::new();
        write_error(&mut buf, 1, code::MODEL, &long).unwrap();
        let mut r = &buf[..];
        read_header(&mut r).unwrap();
        let body = read_error_body(&mut r).unwrap();
        assert!(body.message.len() <= u16::MAX as usize);
        assert!(body.message.chars().all(|c| c == 'é'));
        assert!(r.is_empty(), "no stray bytes after the declared length");
    }

    #[test]
    fn query_frame_payload_is_the_packed_words_verbatim() {
        let words = [0x0123_4567_89ab_cdefu64, !0, 0, 42];
        let mut buf = Vec::new();
        write_query(&mut buf, 3, 7, 2, &words).unwrap();
        let mut r = &buf[..];
        let h = read_header(&mut r).unwrap();
        assert_eq!((h.frame_type, h.k, h.count, h.words_per_query), (FT_QUERY, 3, 2, 2));
        assert_eq!(read_u64(&mut r).unwrap(), 7);
        let mut out = Vec::new();
        read_words(&mut r, 4, &mut out).unwrap();
        assert_eq!(out, words);
        assert!(r.is_empty());
    }

    #[test]
    fn response_frame_roundtrips_hits_and_degraded_flag() {
        let hits: Vec<Prediction> = (0..3)
            .map(|i| Prediction {
                row: i,
                class: i % 2,
                score: 100 - i as u32,
                generation: 5,
                degraded: true,
            })
            .collect();
        let mut buf = Vec::new();
        write_response(&mut buf, 9, &hits).unwrap();
        let mut r = &buf[..];
        let h = read_header(&mut r).unwrap();
        assert_eq!((h.frame_type, h.k, h.count), (FT_RESPONSE, 3, 1));
        assert_eq!(h.flags & FLAG_DEGRADED, FLAG_DEGRADED);
        assert_eq!(read_u64(&mut r).unwrap(), 9);
        assert_eq!(read_u64(&mut r).unwrap(), 5);
        for want in &hits {
            assert_eq!(read_u32(&mut r).unwrap() as usize, want.row);
            assert_eq!(read_u32(&mut r).unwrap() as usize, want.class);
            assert_eq!(read_u32(&mut r).unwrap(), want.score);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn drain_skips_exactly_and_reports_truncation() {
        let data = [1u8; 10];
        let mut r = &data[..];
        drain(&mut r, 4).unwrap();
        assert_eq!(r.len(), 6);
        assert!(drain(&mut r, 7).is_err(), "mid-frame disconnect must surface");
    }

    #[test]
    fn liveness_frames_are_header_only_and_carry_their_data_in_model_key() {
        let mut buf = Vec::new();
        write_ping(&mut buf, 77).unwrap();
        write_pong(&mut buf, 77).unwrap();
        write_goaway(&mut buf, 41).unwrap();
        write_goaway(&mut buf, GOAWAY_NONE).unwrap();
        assert_eq!(buf.len(), 4 * HEADER_LEN, "liveness frames carry no payload");
        let mut r = &buf[..];
        for (ft, key) in [(FT_PING, 77), (FT_PONG, 77), (FT_GOAWAY, 41), (FT_GOAWAY, GOAWAY_NONE)] {
            let h = read_header(&mut r).unwrap();
            assert_eq!((h.frame_type, h.model_key), (ft, key));
            assert!(h.is_payload_free(), "stream stays synchronized after an unknown one");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn hello_ack_advertises_liveness_in_flags() {
        let mut buf = Vec::new();
        write_hello_ack(&mut buf, FLAG_LIVENESS, 256, 10, 3).unwrap();
        let mut r = &buf[..];
        let h = read_header(&mut r).unwrap();
        assert_eq!(h.frame_type, FT_HELLO_ACK);
        assert_eq!(h.flags & FLAG_LIVENESS, FLAG_LIVENESS);
        assert_eq!(read_u32(&mut r).unwrap(), 256);
        assert_eq!(read_u32(&mut r).unwrap(), 10);
        assert_eq!(read_u64(&mut r).unwrap(), 3);
        // An old-style ack (flags 0) reads as "no liveness support".
        let mut buf = Vec::new();
        write_hello_ack(&mut buf, 0, 1, 1, 0).unwrap();
        let h = Header::decode(&buf[..HEADER_LEN].try_into().unwrap()).unwrap();
        assert_eq!(h.flags & FLAG_LIVENESS, 0);
    }

    #[test]
    fn payload_free_check_rejects_declared_payloads() {
        let mut h = Header::new(FT_PING);
        assert!(h.is_payload_free());
        h.count = 1;
        assert!(!h.is_payload_free());
        h.count = 0;
        h.words_per_query = 2;
        assert!(!h.is_payload_free());
    }

    #[test]
    fn truncated_header_is_an_io_error() {
        let mut r = &Header::new(FT_HELLO).encode()[..HEADER_LEN - 1];
        assert!(matches!(read_header(&mut r), Err(WireError::Io(_))));
    }
}
