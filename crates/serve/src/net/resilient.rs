//! A self-healing client for the wire protocol.
//!
//! [`ResilientClient`] wraps [`WireClient`] with everything a caller
//! needs to survive real networks: bounded connects, per-request recv
//! deadlines, automatic reconnect under exponential backoff with
//! decorrelated jitter, and safe retry of unanswered query ids across
//! resets, [`code::OVERLOADED`] sheds, GOAWAY drains, and server
//! restarts.
//!
//! # Why retries are safe (the idempotency argument)
//!
//! A retried query can never be observed twice, for three reasons that
//! compose:
//!
//! 1. **Searches are idempotent reads.** A QUERY frame mutates nothing
//!    server-side; answering the same query twice computes the same
//!    slate twice (modulo a hot swap, which is surfaced via the
//!    generation stamp on every response, never silently mixed).
//! 2. **Ids are client-assigned.** The [`RetryLedger`] maps each
//!    caller-visible query to at most one *live* wire id per connection
//!    epoch; responses for ids submitted on a dead connection can no
//!    longer arrive, because the transport that would carry them is
//!    gone and wire ids are never reused within a connection.
//! 3. **Delivery is recorded before resubmission is possible.** The
//!    ledger only ever resubmits queries whose answer has *not* been
//!    recorded; once a RESPONSE for a query is delivered to the caller,
//!    that query leaves the pending set permanently (see
//!    [`RetryLedger::record_response`]), so no schedule of disconnects,
//!    GOAWAYs, and overload sheds can re-submit it.
//!
//! Together these give exactly-once *observation*: the server may
//! compute an answer more than once, but the caller receives each
//! query's slate exactly once.

use super::client::DEFAULT_CONNECT_TIMEOUT;
use super::wire::{code, WireError, CONNECTION_ERROR_ID, GOAWAY_NONE};
use super::{WireClient, WireEvent};
use crate::Prediction;
use hd_linalg::BitVector;
use std::collections::HashMap;
use std::time::Duration;

/// A tiny deterministic generator for backoff jitter (SplitMix64).
/// `rand` is a dev-only dependency of this crate, and jitter needs no
/// statistical quality beyond decorrelation.
#[derive(Debug)]
struct Jitter {
    state: u64,
}

impl Jitter {
    fn new(seed: u64) -> Self {
        Jitter { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[lo, hi)`; modulo bias is irrelevant for
    /// sleep jitter.
    fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }
}

/// Where a [`ResilientClient`] (re)connects to.
#[derive(Debug, Clone)]
pub enum Target {
    /// A TCP address string (`host:port`), re-resolved on every
    /// reconnect so DNS failover is picked up.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Uds(std::path::PathBuf),
}

/// Tunables for [`ResilientClient`]. `Default` is tuned for LAN-scale
/// serving; tests shrink the timeouts.
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Bound on each connect attempt (TCP connect + HELLO_ACK wait).
    pub connect_timeout: Duration,
    /// Per-recv deadline while answers are outstanding. A recv that
    /// exceeds it abandons the connection (a timed-out read may leave
    /// the stream mid-frame, so the connection cannot be trusted
    /// afterwards) and retries the unanswered ids on a fresh one.
    pub request_timeout: Duration,
    /// Consecutive no-progress failures (failed connects, dead
    /// connections, fully-shed epochs) tolerated before giving up.
    /// Any delivered answer resets the count.
    pub max_attempts: u32,
    /// Floor of the decorrelated-jitter backoff between attempts.
    pub backoff_base: Duration,
    /// Ceiling of the backoff.
    pub backoff_cap: Duration,
    /// Seed for the jitter RNG — backoff schedules are deterministic
    /// per seed, which keeps the chaos tests reproducible.
    pub retry_seed: u64,
    /// Queries per QUERY frame when (re)submitting. Kept well under the
    /// server's `max_frame_queries` default so partial progress
    /// survives mid-frame faults.
    pub max_batch: usize,
    /// Accept a different model generation after reconnect instead of
    /// failing with [`ResilientError::GenerationChanged`]. Even when
    /// allowed, mixing is never silent: every [`Prediction`] carries
    /// the generation that answered it.
    pub allow_generation_change: bool,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            request_timeout: Duration::from_secs(30),
            max_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            retry_seed: 0x9E37_79B9_7F4A_7C15,
            max_batch: 64,
            allow_generation_change: false,
        }
    }
}

/// Why a [`ResilientClient`] call gave up.
#[derive(Debug)]
pub enum ResilientError {
    /// A non-retryable wire error: a local protocol violation (caller
    /// bug, e.g. wrong query dimensionality) or a remote rejection that
    /// retrying cannot fix (e.g. [`code::BAD_K`]).
    Wire(WireError),
    /// The server came back after a restart serving a different model
    /// generation and [`ResilientConfig::allow_generation_change`] is
    /// off. Results delivered so far all carry the pinned generation.
    GenerationChanged {
        /// Generation pinned at the first successful handshake.
        pinned: u64,
        /// Generation the reconnected server is serving.
        current: u64,
    },
    /// [`ResilientConfig::max_attempts`] consecutive attempts made no
    /// progress.
    RetriesExhausted {
        /// Consecutive no-progress attempts made.
        attempts: u32,
        /// Answers delivered before giving up.
        delivered: usize,
        /// Answers the call needed in total.
        total: usize,
        /// The failure that ended the final attempt, if one was caught.
        last: Option<WireError>,
    },
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientError::Wire(e) => write!(f, "wire error: {e}"),
            ResilientError::GenerationChanged { pinned, current } => write!(
                f,
                "model generation changed across reconnect (pinned {pinned}, server now serves \
                 {current}); set allow_generation_change to accept"
            ),
            ResilientError::RetriesExhausted { attempts, delivered, total, last } => {
                write!(
                    f,
                    "gave up after {attempts} consecutive failed attempts \
                     ({delivered}/{total} answers delivered)"
                )?;
                if let Some(last) = last {
                    write!(f, "; last error: {last}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ResilientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilientError::Wire(e) => Some(e),
            ResilientError::RetriesExhausted { last: Some(e), .. } => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ResilientError {
    fn from(e: WireError) -> Self {
        ResilientError::Wire(e)
    }
}

/// Exactly-once-observable retry bookkeeping for one batch of queries.
///
/// The ledger tracks each query (addressed by its index in the caller's
/// batch) through three states: **pending** (needs submission),
/// **in flight** (submitted on the current connection epoch under a
/// wire id), and **delivered** (answer handed to the caller —
/// terminal). Its single hard invariant, exercised directly by the
/// fuzz suite: **a delivered query is never returned by
/// [`RetryLedger::pending`] again**, under any interleaving of
/// submissions, responses, epoch resets (disconnects), GOAWAYs, and
/// overload sheds.
///
/// It is exposed publicly so property tests can drive it through
/// adversarial schedules without a socket in sight.
#[derive(Debug)]
pub struct RetryLedger {
    delivered: Vec<bool>,
    in_flight_wire: Vec<Option<u64>>,
    wire_to_ext: HashMap<u64, usize>,
    delivered_count: usize,
}

impl RetryLedger {
    /// A ledger for `total` queries, all initially pending.
    pub fn new(total: usize) -> Self {
        RetryLedger {
            delivered: vec![false; total],
            in_flight_wire: vec![None; total],
            wire_to_ext: HashMap::new(),
            delivered_count: 0,
        }
    }

    /// Number of queries tracked.
    pub fn total(&self) -> usize {
        self.delivered.len()
    }

    /// Number of queries whose answers have been delivered.
    pub fn delivered_count(&self) -> usize {
        self.delivered_count
    }

    /// Whether every query has been delivered.
    pub fn is_complete(&self) -> bool {
        self.delivered_count == self.delivered.len()
    }

    /// Starts a new connection epoch: every in-flight id reverts to
    /// pending (a submission on a dead connection can no longer be
    /// answered). Call on every disconnect/reconnect.
    pub fn begin_epoch(&mut self) {
        self.wire_to_ext.clear();
        for slot in &mut self.in_flight_wire {
            *slot = None;
        }
    }

    /// Queries that need (re)submission: not delivered and not in
    /// flight on the current epoch. Never contains a delivered index.
    pub fn pending(&self) -> Vec<usize> {
        (0..self.delivered.len())
            .filter(|&i| !self.delivered[i] && self.in_flight_wire[i].is_none())
            .collect()
    }

    /// Records that `externals[i]` was submitted under wire id
    /// `first_id + i` on the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if any index is already delivered or already in flight —
    /// resubmitting a delivered query would break exactly-once
    /// observability, so this is enforced, not assumed.
    pub fn record_submission(&mut self, first_id: u64, externals: &[usize]) {
        for (i, &ext) in externals.iter().enumerate() {
            assert!(!self.delivered[ext], "ledger invariant: query {ext} already delivered");
            assert!(
                self.in_flight_wire[ext].is_none(),
                "ledger invariant: query {ext} already in flight"
            );
            let wire_id = first_id + i as u64;
            self.in_flight_wire[ext] = Some(wire_id);
            self.wire_to_ext.insert(wire_id, ext);
        }
    }

    /// Records a RESPONSE for `wire_id`. Returns the caller-batch index
    /// it answers, or `None` if the id is unknown to the current epoch
    /// or already delivered (a duplicate — the caller must drop it).
    pub fn record_response(&mut self, wire_id: u64) -> Option<usize> {
        let ext = self.wire_to_ext.remove(&wire_id)?;
        if self.delivered[ext] {
            return None;
        }
        self.delivered[ext] = true;
        self.in_flight_wire[ext] = None;
        self.delivered_count += 1;
        Some(ext)
    }

    /// Records that `wire_id` was rejected without an answer (e.g.
    /// [`code::OVERLOADED`]): it reverts to pending for resubmission.
    /// Returns the caller-batch index, or `None` for unknown ids.
    pub fn record_unanswered(&mut self, wire_id: u64) -> Option<usize> {
        let ext = self.wire_to_ext.remove(&wire_id)?;
        if self.delivered[ext] {
            return None;
        }
        self.in_flight_wire[ext] = None;
        Some(ext)
    }

    /// Records a GOAWAY carrying `last_accepted`: in-flight ids beyond
    /// it were never accepted and revert to pending; ids at or below it
    /// stay in flight (the server promises to answer them before
    /// closing). Returns how many ids reverted.
    pub fn record_goaway(&mut self, last_accepted: u64) -> usize {
        let mut reverted = 0;
        for ext in 0..self.in_flight_wire.len() {
            if let Some(wire_id) = self.in_flight_wire[ext] {
                if last_accepted == GOAWAY_NONE || wire_id > last_accepted {
                    self.in_flight_wire[ext] = None;
                    self.wire_to_ext.remove(&wire_id);
                    reverted += 1;
                }
            }
        }
        reverted
    }

    /// Number of ids currently awaiting an answer on this epoch.
    pub fn in_flight(&self) -> usize {
        self.wire_to_ext.len()
    }
}

/// A [`WireClient`] that survives the failures [`WireClient`] surfaces.
///
/// Wraps connect timeouts, per-request recv deadlines, reconnect with
/// decorrelated-jitter backoff, and unanswered-id retry behind one
/// blocking call: [`ResilientClient::search`] either returns every
/// query's slate exactly once or reports why it gave up. The module's
/// source-level docs carry the argument that retries are safe.
///
/// The first successful handshake pins the server's model generation;
/// if a reconnect lands on a different generation the call fails with
/// [`ResilientError::GenerationChanged`] unless
/// [`ResilientConfig::allow_generation_change`] is set (mixing is
/// visible either way via the generation stamp on each
/// [`Prediction`]).
#[derive(Debug)]
pub struct ResilientClient {
    target: Target,
    config: ResilientConfig,
    conn: Option<WireClient>,
    pinned_generation: Option<u64>,
    rng: Jitter,
    prev_backoff: Duration,
    reconnects: u64,
}

impl ResilientClient {
    /// Creates a client for `target`. No connection is made yet — the
    /// first [`ResilientClient::search`] connects (so a server that is
    /// briefly down at construction time costs nothing).
    pub fn new(target: Target, config: ResilientConfig) -> Self {
        let prev_backoff = config.backoff_base;
        let rng = Jitter::new(config.retry_seed);
        ResilientClient {
            target,
            config,
            conn: None,
            pinned_generation: None,
            rng,
            prev_backoff,
            reconnects: 0,
        }
    }

    /// Times the client (re)connected, for observability and tests.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The pinned model generation, once a handshake has succeeded.
    pub fn generation(&self) -> Option<u64> {
        self.pinned_generation
    }

    /// Answers every query in `queries` with its top-`k` slate, in
    /// order, retrying across disconnects, overload sheds, GOAWAY
    /// drains, and server restarts until complete or out of attempts.
    ///
    /// # Errors
    ///
    /// [`ResilientError::Wire`] for non-retryable failures (caller
    /// bugs like a dimension mismatch, or typed rejections retrying
    /// cannot fix), [`ResilientError::GenerationChanged`] if the model
    /// changed across a reconnect, [`ResilientError::RetriesExhausted`]
    /// after too many consecutive attempts without progress.
    pub fn search(
        &mut self,
        queries: &[BitVector],
        k: u16,
    ) -> Result<Vec<Vec<Prediction>>, ResilientError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let config = self.config.clone();
        let mut ledger = RetryLedger::new(queries.len());
        let mut results: Vec<Option<Vec<Prediction>>> = vec![None; queries.len()];
        let mut attempts: u32 = 0;
        let mut last_err: Option<WireError> = None;
        while !ledger.is_complete() {
            if attempts >= self.config.max_attempts {
                return Err(ResilientError::RetriesExhausted {
                    attempts,
                    delivered: ledger.delivered_count(),
                    total: ledger.total(),
                    last: last_err,
                });
            }
            if attempts > 0 {
                std::thread::sleep(self.next_backoff());
            }
            attempts += 1;
            let conn = match self.ensure_connected() {
                Ok(conn) => conn,
                Err(ResilientError::Wire(e)) if is_retryable(&e) => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            ledger.begin_epoch();
            match run_epoch(conn, &config, queries, k, &mut ledger, &mut results) {
                EpochEnd::Fatal(e) => return Err(ResilientError::Wire(e)),
                EpochEnd::ConnectionLost { err, progressed } => {
                    self.conn = None;
                    if progressed {
                        attempts = 0;
                        self.prev_backoff = self.config.backoff_base;
                    }
                    last_err = err;
                }
                EpochEnd::Complete => {}
            }
        }
        Ok(results.into_iter().map(|r| r.expect("complete ledger implies all results")).collect())
    }

    /// Decorrelated jitter: `sleep = min(cap, uniform(base, prev * 3))`
    /// — the AWS architecture-blog variant, which spreads retries even
    /// when many clients share a failure instant.
    fn next_backoff(&mut self) -> Duration {
        let base = self.config.backoff_base.as_nanos() as u64;
        let hi = (self.prev_backoff.as_nanos() as u64).saturating_mul(3).max(base + 1);
        let next = Duration::from_nanos(self.rng.gen_range(base, hi));
        self.prev_backoff = next.min(self.config.backoff_cap);
        self.prev_backoff
    }

    fn ensure_connected(&mut self) -> Result<&mut WireClient, ResilientError> {
        if self.conn.is_none() {
            let client = match &self.target {
                Target::Tcp(addr) => {
                    WireClient::connect_tcp_timeout(addr.as_str(), self.config.connect_timeout)?
                }
                #[cfg(unix)]
                Target::Uds(path) => {
                    WireClient::connect_uds_timeout(path, self.config.connect_timeout)?
                }
            };
            match self.pinned_generation {
                None => self.pinned_generation = Some(client.generation()),
                Some(pinned) if pinned != client.generation() => {
                    if !self.config.allow_generation_change {
                        return Err(ResilientError::GenerationChanged {
                            pinned,
                            current: client.generation(),
                        });
                    }
                    self.pinned_generation = Some(client.generation());
                }
                Some(_) => {}
            }
            self.reconnects += 1;
            self.conn = Some(client);
        }
        let conn = self.conn.as_mut().expect("just connected");
        conn.set_read_timeout(Some(self.config.request_timeout))?;
        Ok(conn)
    }
}

/// How one submit-and-collect pass over a connection ended.
enum EpochEnd {
    /// Every pending query was answered.
    Complete,
    /// The connection died or was drained; undelivered ids retry on a
    /// fresh connection. `progressed` is true if any answer was
    /// delivered this epoch (resets the attempt budget).
    ConnectionLost { err: Option<WireError>, progressed: bool },
    /// A non-retryable failure to surface to the caller.
    Fatal(WireError),
}

/// Submits every pending query and collects answers until the ledger's
/// epoch settles (all delivered, or connection lost).
fn run_epoch(
    conn: &mut WireClient,
    config: &ResilientConfig,
    queries: &[BitVector],
    k: u16,
    ledger: &mut RetryLedger,
    results: &mut [Option<Vec<Prediction>>],
) -> EpochEnd {
    let dim = conn.dim() as usize;
    if let Some(q) = queries.iter().find(|q| q.len() != dim) {
        return EpochEnd::Fatal(WireError::Protocol(format!(
            "query length {} does not match served dimensionality {dim}",
            q.len()
        )));
    }
    let mut progressed = false;
    let pending = ledger.pending();
    let wpq = conn.words_per_query() as usize;
    for chunk in pending.chunks(config.max_batch.max(1)) {
        let mut words = Vec::with_capacity(chunk.len() * wpq);
        for &ext in chunk {
            words.extend_from_slice(queries[ext].as_words());
        }
        match conn.send_packed_words(&words, k) {
            Ok(range) => ledger.record_submission(range.start, chunk),
            Err(e @ WireError::Protocol(_)) => return EpochEnd::Fatal(e),
            Err(e) => return EpochEnd::ConnectionLost { err: Some(e), progressed },
        }
    }
    let mut drained = false;
    while ledger.in_flight() > 0 {
        match conn.recv() {
            Ok(WireEvent::Response { id, hits }) => {
                if let Some(ext) = ledger.record_response(id) {
                    results[ext] = Some(hits);
                    progressed = true;
                }
            }
            Ok(WireEvent::Error(body)) => {
                if body.code == code::OVERLOADED && body.id != CONNECTION_ERROR_ID {
                    ledger.record_unanswered(body.id);
                    // The shed id retries on the next epoch, after
                    // backoff — hammering an overloaded server with an
                    // instant resubmit would only deepen the shed.
                    return EpochEnd::ConnectionLost { err: Some(body.into_remote()), progressed };
                }
                if is_retryable_code(body.code) {
                    return EpochEnd::ConnectionLost { err: Some(body.into_remote()), progressed };
                }
                return EpochEnd::Fatal(body.into_remote());
            }
            Ok(WireEvent::GoAway { last_accepted }) => {
                ledger.record_goaway(last_accepted);
                drained = true;
                // Accepted ids are still owed answers; keep reading
                // until they arrive or the server closes.
            }
            Ok(WireEvent::Pong { .. }) => {}
            Err(e @ WireError::Remote { .. }) => return EpochEnd::Fatal(e),
            Err(e) => return EpochEnd::ConnectionLost { err: Some(e), progressed },
        }
    }
    if drained {
        // The server is going away; undelivered queries (if any) need a
        // fresh connection, and even a fully-answered epoch should not
        // reuse this one.
        return EpochEnd::ConnectionLost { err: None, progressed };
    }
    if ledger.is_complete() {
        EpochEnd::Complete
    } else {
        // In-flight settled but pending remains (GOAWAY reverted some
        // ids mid-epoch without closing yet).
        EpochEnd::ConnectionLost { err: None, progressed }
    }
}

/// Whether a local wire error is worth a reconnect (I/O and timeouts
/// are; protocol violations are caller or peer bugs — except stream
/// desync after a timed-out read, which surfaces as I/O anyway).
fn is_retryable(e: &WireError) -> bool {
    match e {
        WireError::Io(_) => true,
        WireError::Remote { code, .. } => is_retryable_code(*code),
        WireError::Protocol(_) => false,
    }
}

/// Whether a typed server rejection indicates a transient condition
/// (retry on a fresh connection) rather than a caller bug.
fn is_retryable_code(c: u16) -> bool {
    matches!(
        c,
        code::OVERLOADED
            | code::SHUTDOWN
            | code::CONNECTION_LIMIT
            | code::IDLE_TIMEOUT
            | code::MODEL
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_never_resubmits_delivered_ids() {
        let mut ledger = RetryLedger::new(4);
        ledger.record_submission(0, &[0, 1, 2, 3]);
        assert_eq!(ledger.record_response(1), Some(1));
        // Disconnect: everything unanswered reverts, delivered does not.
        ledger.begin_epoch();
        assert_eq!(ledger.pending(), vec![0, 2, 3]);
        ledger.record_submission(10, &[0, 2, 3]);
        // Stale id from the old epoch is a no-op duplicate.
        assert_eq!(ledger.record_response(2), None);
        assert_eq!(ledger.record_response(10), Some(0));
        assert_eq!(ledger.record_response(11), Some(2));
        assert_eq!(ledger.record_response(12), Some(3));
        assert!(ledger.is_complete());
        assert!(ledger.pending().is_empty());
    }

    #[test]
    fn ledger_goaway_reverts_only_unaccepted_ids() {
        let mut ledger = RetryLedger::new(5);
        ledger.record_submission(0, &[0, 1, 2, 3, 4]);
        // Server accepted ids 0..=1 only.
        assert_eq!(ledger.record_goaway(1), 3);
        assert_eq!(ledger.in_flight(), 2);
        assert_eq!(ledger.pending(), vec![2, 3, 4]);
        assert_eq!(ledger.record_response(0), Some(0));
        assert_eq!(ledger.record_response(1), Some(1));
        // GOAWAY_NONE reverts everything in flight.
        ledger.record_submission(5, &[2, 3, 4]);
        assert_eq!(ledger.record_goaway(GOAWAY_NONE), 3);
        assert_eq!(ledger.in_flight(), 0);
        assert_eq!(ledger.pending(), vec![2, 3, 4]);
    }

    #[test]
    fn ledger_overload_shed_reverts_to_pending() {
        let mut ledger = RetryLedger::new(2);
        ledger.record_submission(0, &[0, 1]);
        assert_eq!(ledger.record_unanswered(1), Some(1));
        assert_eq!(ledger.pending(), vec![1]);
        assert_eq!(ledger.record_response(0), Some(0));
        assert_eq!(ledger.record_unanswered(7), None);
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn ledger_panics_on_resubmitting_delivered() {
        let mut ledger = RetryLedger::new(1);
        ledger.record_submission(0, &[0]);
        ledger.record_response(0);
        ledger.begin_epoch();
        ledger.record_submission(1, &[0]);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let cfg = ResilientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            retry_seed: 7,
            ..Default::default()
        };
        let mut a = ResilientClient::new(Target::Tcp("unused:0".into()), cfg.clone());
        let mut b = ResilientClient::new(Target::Tcp("unused:0".into()), cfg.clone());
        let seq_a: Vec<Duration> = (0..16).map(|_| a.next_backoff()).collect();
        let seq_b: Vec<Duration> = (0..16).map(|_| b.next_backoff()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same schedule");
        for d in &seq_a {
            assert!(*d >= cfg.backoff_base && *d <= cfg.backoff_cap);
        }
        assert!(seq_a.windows(2).any(|w| w[0] != w[1]), "jitter should vary the delays");
    }
}
