//! The model interface the server batches over, plus adapters for every
//! associative memory in the workspace.
//!
//! A [`Searchable`] answers a packed [`QueryBatch`] with one [`Winner`]
//! per query. The server hands each flush a single `Arc<QueryBatch>` so
//! sharded implementations can ship the batch to worker threads without
//! copying; plain implementations just deref.
//!
//! Adapters are provided for:
//!
//! * [`hd_linalg::SearchMemory`] — raw row store, `class == row`;
//! * [`hdc::BinaryAm`] — centroid rows with class labels;
//! * [`memhd::MemhdModel`] — serves the model's quantized AM (queries are
//!   pre-encoded `D`-bit hypervectors; encoding stays with the client,
//!   matching the paper's architecture where the encoding module and AM
//!   are separate IMC structures);
//! * [`imc_sim::AmMapping`] / [`imc_sim::FaultyAmMapping`] /
//!   [`imc_sim::ReplicatedAmMapping`] — mapped (possibly fault-injected,
//!   possibly replicated-with-majority-readout) arrays, bit-exact
//!   against software search;
//! * the four baselines ([`hd_baselines::BasicHdc`],
//!   [`hd_baselines::QuantHd`], [`hd_baselines::SearcHd`],
//!   [`hd_baselines::LeHdc`]) via their binary AMs.

use crate::error::{Result, ServeError};
use hd_linalg::QueryBatch;
use std::sync::Arc;

/// The winning centroid of one served query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Winner {
    /// Winning row in the served memory.
    pub row: usize,
    /// Class owning the winning row (equal to `row` for unlabeled
    /// memories).
    pub class: usize,
    /// Dot-similarity score of the winning row.
    pub score: u32,
}

/// A model the serving layer can drive: batched associative search with
/// the workspace's highest-score / lowest-row winner semantics.
///
/// Implementations must be [`Send`] + [`Sync`]: the deadline flusher and
/// any submitting thread may execute a flush, and snapshot swaps hand
/// `Arc`s across threads.
pub trait Searchable: Send + Sync {
    /// Hypervector dimensionality `D` queries must match.
    fn dim(&self) -> usize;

    /// Number of stored rows (centroids).
    fn rows(&self) -> usize;

    /// Answers every query of `batch` with its winning row, class, and
    /// score. The tie-break is the workspace standard: highest score,
    /// then lowest row.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DimensionMismatch`] when the batch width
    /// differs from [`Searchable::dim`], and [`ServeError::Model`] for
    /// model-internal failures.
    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>>;

    /// Answers every query with its `min(k, rows)` best rows, sorted by
    /// score descending then row ascending — the top-1 entry is exactly
    /// the [`Searchable::search_winners`] winner.
    ///
    /// Every workspace adapter overrides this with the fused bounded
    /// k-best sweep ([`hd_linalg::SearchMemory::topk_batch`] or its
    /// layer's equivalent). The provided default only covers `k == 1`
    /// (via [`Searchable::search_winners`]) so foreign argmax-only
    /// implementations keep compiling; it reports `k > 1` as a model
    /// error.
    ///
    /// # Errors
    ///
    /// As [`Searchable::search_winners`], plus
    /// [`ServeError::InvalidConfig`] when `k == 0`.
    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        if k == 1 {
            return Ok(self.search_winners(batch)?.into_iter().map(|w| vec![w]).collect());
        }
        Err(ServeError::Model { reason: "model does not implement top-k search".into() })
    }

    /// Shards this model has permanently lost, ascending. Non-empty
    /// means searches answer exactly over the *surviving* rows only —
    /// the server flags such answers with [`crate::Prediction::degraded`]
    /// rather than failing them. Must be monotone within one model
    /// instance: a shard reported missing stays missing. The default
    /// (for unsharded models) is "none".
    fn missing_shards(&self) -> Vec<usize> {
        Vec::new()
    }
}

fn check_dim(expected: usize, batch: &QueryBatch) -> Result<()> {
    if batch.dim() != expected {
        return Err(ServeError::DimensionMismatch { expected, found: batch.dim() });
    }
    Ok(())
}

pub(crate) fn check_topk(k: usize) -> Result<()> {
    if k == 0 {
        return Err(ServeError::InvalidConfig { reason: "top-k search requires k >= 1".into() });
    }
    Ok(())
}

impl Searchable for hd_linalg::SearchMemory {
    fn dim(&self) -> usize {
        self.cols()
    }

    fn rows(&self) -> usize {
        self.rows()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        check_dim(self.cols(), &batch)?;
        let winners =
            self.winners_batch(&batch).map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(winners.into_iter().map(|(row, score)| Winner { row, class: row, score }).collect())
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        check_dim(self.cols(), &batch)?;
        let raw =
            self.topk_batch(&batch, k).map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok((0..raw.len())
            .map(|q| {
                raw.hits(q).iter().map(|&(row, score)| Winner { row, class: row, score }).collect()
            })
            .collect())
    }
}

impl Searchable for hdc::BinaryAm {
    fn dim(&self) -> usize {
        self.dim()
    }

    fn rows(&self) -> usize {
        self.num_centroids()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        check_dim(self.dim(), &batch)?;
        let winners = self
            .search_memory()
            .winners_batch(&batch)
            .map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(winners
            .into_iter()
            .map(|(row, score)| Winner { row, class: self.class_of(row), score })
            .collect())
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        check_dim(self.dim(), &batch)?;
        let hits =
            self.search_topk(&batch, k).map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(hits
            .into_iter()
            .map(|per_query| {
                per_query
                    .into_iter()
                    .map(|h| Winner { row: h.row, class: h.class, score: h.score })
                    .collect()
            })
            .collect())
    }
}

impl Searchable for memhd::MemhdModel {
    fn dim(&self) -> usize {
        self.binary_am().dim()
    }

    fn rows(&self) -> usize {
        self.binary_am().num_centroids()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        self.binary_am().search_winners(batch)
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        Searchable::search_topk(self.binary_am(), batch, k)
    }
}

/// Projects a mapped batch search's results into per-query [`Winner`]s
/// (shared by the ideal and fault-injected mapping adapters).
fn winners_from_mapped(stats: &imc_sim::BatchInferenceStats) -> Vec<Winner> {
    (0..stats.len())
        .map(|q| {
            let row = stats.predicted_rows[q];
            Winner { row, class: stats.predicted_classes[q], score: stats.scores.scores(q)[row] }
        })
        .collect()
}

/// Projects a mapped top-k search's results into per-query [`Winner`]
/// lists (shared by the ideal and fault-injected mapping adapters).
fn topk_from_mapped(stats: imc_sim::TopKBatchStats) -> Vec<Vec<Winner>> {
    stats
        .hits
        .into_iter()
        .map(|per_query| {
            per_query
                .into_iter()
                .map(|h| Winner { row: h.row, class: h.class, score: h.score })
                .collect()
        })
        .collect()
}

impl Searchable for imc_sim::AmMapping {
    fn dim(&self) -> usize {
        self.dim()
    }

    fn rows(&self) -> usize {
        self.num_vectors()
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        check_dim(self.dim(), &batch)?;
        let stats =
            self.search_batch(&batch).map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(winners_from_mapped(&stats))
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        check_dim(self.dim(), &batch)?;
        let stats = self
            .search_batch_topk(&batch, k)
            .map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(topk_from_mapped(stats))
    }
}

impl Searchable for imc_sim::FaultyAmMapping {
    fn dim(&self) -> usize {
        self.as_mapping().dim()
    }

    fn rows(&self) -> usize {
        Searchable::rows(self.as_mapping())
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        check_dim(Searchable::dim(self.as_mapping()), &batch)?;
        let stats =
            self.search_batch(&batch).map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(winners_from_mapped(&stats))
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        check_dim(Searchable::dim(self.as_mapping()), &batch)?;
        let stats = self
            .search_batch_topk(&batch, k)
            .map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(topk_from_mapped(stats))
    }
}

impl Searchable for imc_sim::ReplicatedAmMapping {
    fn dim(&self) -> usize {
        self.majority_mapping().dim()
    }

    fn rows(&self) -> usize {
        Searchable::rows(self.majority_mapping())
    }

    fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
        check_dim(Searchable::dim(self.majority_mapping()), &batch)?;
        let stats =
            self.search_batch(&batch).map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(winners_from_mapped(&stats))
    }

    fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
        check_topk(k)?;
        check_dim(Searchable::dim(self.majority_mapping()), &batch)?;
        let stats = self
            .search_batch_topk(&batch, k)
            .map_err(|e| ServeError::Model { reason: e.to_string() })?;
        Ok(topk_from_mapped(stats))
    }
}

/// Implements [`Searchable`] for a baseline model by delegating to its
/// quantized AM.
macro_rules! baseline_searchable {
    ($($ty:ty),* $(,)?) => {$(
        impl Searchable for $ty {
            fn dim(&self) -> usize {
                self.binary_am().dim()
            }

            fn rows(&self) -> usize {
                self.binary_am().num_centroids()
            }

            fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
                self.binary_am().search_winners(batch)
            }

            fn search_topk(&self, batch: Arc<QueryBatch>, k: usize) -> Result<Vec<Vec<Winner>>> {
                Searchable::search_topk(self.binary_am(), batch, k)
            }
        }
    )*};
}

baseline_searchable!(
    hd_baselines::BasicHdc,
    hd_baselines::QuantHd,
    hd_baselines::SearcHd,
    hd_baselines::LeHdc,
);

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::{BitMatrix, BitVector, SearchMemory};

    fn bits(pattern: &[u8]) -> BitVector {
        BitVector::from_bools(&pattern.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    #[test]
    fn search_memory_adapter_uses_row_as_class() {
        let mem = SearchMemory::from_rows(&[bits(&[1, 1, 0, 0]), bits(&[0, 0, 1, 1])]).unwrap();
        let batch = Arc::new(
            QueryBatch::from_vectors(&[bits(&[0, 0, 1, 1]), bits(&[1, 1, 0, 0])]).unwrap(),
        );
        let winners = mem.search_winners(batch).unwrap();
        assert_eq!(winners[0], Winner { row: 1, class: 1, score: 2 });
        assert_eq!(winners[1], Winner { row: 0, class: 0, score: 2 });
    }

    #[test]
    fn binary_am_adapter_maps_classes() {
        let am = hdc::BinaryAm::from_centroids(
            2,
            vec![(1, bits(&[1, 1, 0, 0])), (0, bits(&[0, 0, 1, 1]))],
        )
        .unwrap();
        let batch = Arc::new(QueryBatch::from_vectors(&[bits(&[1, 1, 0, 0])]).unwrap());
        let winners = Searchable::search_winners(&am, batch).unwrap();
        assert_eq!(winners[0], Winner { row: 0, class: 1, score: 2 });
        assert_eq!(Searchable::dim(&am), 4);
        assert_eq!(Searchable::rows(&am), 2);
    }

    #[test]
    fn adapters_agree_on_topk_and_default_covers_only_k1() {
        let mem = SearchMemory::from_rows(&[
            bits(&[1, 1, 0, 0]),
            bits(&[0, 0, 1, 1]),
            bits(&[1, 1, 0, 0]),
        ])
        .unwrap();
        let batch = Arc::new(QueryBatch::from_vectors(&[bits(&[1, 1, 1, 0])]).unwrap());
        // SearchMemory adapter: rows double as classes; duplicate rows
        // tie and order by row index.
        let lists = Searchable::search_topk(&mem, Arc::clone(&batch), 3).unwrap();
        assert_eq!(
            lists[0],
            vec![
                Winner { row: 0, class: 0, score: 2 },
                Winner { row: 2, class: 2, score: 2 },
                Winner { row: 1, class: 1, score: 1 },
            ]
        );
        assert!(Searchable::search_topk(&mem, Arc::clone(&batch), 0).is_err());

        // A foreign argmax-only implementation keeps working at k == 1
        // through the provided default, and reports k > 1 as a model
        // error instead of answering wrongly.
        struct ArgmaxOnly(SearchMemory);
        impl Searchable for ArgmaxOnly {
            fn dim(&self) -> usize {
                self.0.cols()
            }
            fn rows(&self) -> usize {
                self.0.rows()
            }
            fn search_winners(&self, batch: Arc<QueryBatch>) -> Result<Vec<Winner>> {
                self.0.search_winners(batch)
            }
        }
        let foreign = ArgmaxOnly(mem.clone());
        let top1 = foreign.search_topk(Arc::clone(&batch), 1).unwrap();
        assert_eq!(top1[0], vec![Winner { row: 0, class: 0, score: 2 }]);
        assert!(matches!(
            foreign.search_topk(Arc::clone(&batch), 2),
            Err(ServeError::Model { .. })
        ));
    }

    #[test]
    fn mapping_adapter_topk_matches_am_topk() {
        use hd_linalg::rng::seeded;
        use rand::Rng;
        let mut rng = seeded(9);
        let centroids: Vec<(usize, BitVector)> = (0..6)
            .map(|v| {
                let b: Vec<bool> = (0..96).map(|_| rng.gen()).collect();
                (v % 3, BitVector::from_bools(&b))
            })
            .collect();
        let am = hdc::BinaryAm::from_centroids(3, centroids).unwrap();
        let queries: Vec<BitVector> = (0..5)
            .map(|_| BitVector::from_bools(&(0..96).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = Arc::new(QueryBatch::from_vectors(&queries).unwrap());
        for strategy in [
            imc_sim::MappingStrategy::Basic,
            imc_sim::MappingStrategy::Partitioned { partitions: 2 },
        ] {
            let mapping =
                imc_sim::AmMapping::new(&am, imc_sim::ArraySpec::default(), strategy).unwrap();
            for k in [1usize, 4, 8] {
                assert_eq!(
                    mapping.search_topk(Arc::clone(&batch), k).unwrap(),
                    Searchable::search_topk(&am, Arc::clone(&batch), k).unwrap(),
                    "mapped top-k must stay bit-exact against the software AM"
                );
            }
        }
    }

    #[test]
    fn dimension_mismatch_reported() {
        let mem = SearchMemory::new(BitMatrix::zeros(2, 8));
        let batch = Arc::new(QueryBatch::from_vectors(&[BitVector::zeros(9)]).unwrap());
        assert_eq!(
            mem.search_winners(batch),
            Err(ServeError::DimensionMismatch { expected: 8, found: 9 })
        );
    }

    #[test]
    fn mapping_adapter_matches_am_search() {
        use hd_linalg::rng::seeded;
        use rand::Rng;
        let mut rng = seeded(5);
        let centroids: Vec<(usize, BitVector)> = (0..6)
            .map(|v| {
                let b: Vec<bool> = (0..96).map(|_| rng.gen()).collect();
                (v % 3, BitVector::from_bools(&b))
            })
            .collect();
        let am = hdc::BinaryAm::from_centroids(3, centroids).unwrap();
        let mapping = imc_sim::AmMapping::new(
            &am,
            imc_sim::ArraySpec::default(),
            imc_sim::MappingStrategy::Partitioned { partitions: 2 },
        )
        .unwrap();
        let queries: Vec<BitVector> = (0..5)
            .map(|_| BitVector::from_bools(&(0..96).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = Arc::new(QueryBatch::from_vectors(&queries).unwrap());
        assert_eq!(
            mapping.search_winners(Arc::clone(&batch)).unwrap(),
            Searchable::search_winners(&am, batch).unwrap(),
            "mapped search must stay bit-exact against the software AM"
        );
        assert_eq!(Searchable::rows(&mapping), 6);
    }
}
