//! Cross-model integration tests: all four baselines trained on the same
//! multi-modal dataset, checked for the orderings the paper's evaluation
//! relies on.

use hd_baselines::{
    BasicHdc, HdcClassifier, LeHdc, LeHdcConfig, QuantHd, QuantHdConfig, SearcHd, SearcHdConfig,
};
use hd_datasets::synthetic::SyntheticSpec;

fn dataset() -> hd_datasets::Dataset {
    SyntheticSpec::mnist_like(60, 20).generate(9).expect("valid spec")
}

#[test]
fn all_baselines_beat_chance() {
    let ds = dataset();
    let k = ds.num_classes;
    let chance = 1.0 / k as f64;
    let dim = 512;

    let basic = BasicHdc::fit(dim, &ds.train_features, &ds.train_labels, k, 1).unwrap();
    let quant = QuantHd::fit(
        &QuantHdConfig { levels: 16, epochs: 8, ..QuantHdConfig::new(dim) },
        &ds.train_features,
        &ds.train_labels,
        k,
    )
    .unwrap();
    let lehdc = LeHdc::fit(
        &LeHdcConfig { levels: 16, epochs: 8, ..LeHdcConfig::new(dim) },
        &ds.train_features,
        &ds.train_labels,
        k,
    )
    .unwrap();
    // SearcHD's stochastic training needs more dimensionality and more
    // models per class to function at this small sample budget (it is
    // also the weakest baseline in the paper's Fig. 3).
    let searchd = SearcHd::fit(
        &SearcHdConfig {
            levels: 16,
            models_per_class: 16,
            epochs: 10,
            flip_probability: 0.1,
            ..SearcHdConfig::new(1024)
        },
        &ds.train_features,
        &ds.train_labels,
        k,
    )
    .unwrap();

    let models: [&dyn HdcClassifier; 3] = [&basic, &quant, &lehdc];
    for model in models {
        let acc = model.evaluate(&ds.test_features, &ds.test_labels).unwrap();
        assert!(
            acc > 2.0 * chance,
            "{} accuracy {acc} not clearly above chance {chance}",
            model.name()
        );
    }
    let acc = searchd.evaluate(&ds.test_features, &ds.test_labels).unwrap();
    assert!(acc > 2.0 * chance, "SearcHD accuracy {acc} vs chance {chance}");
}

#[test]
fn memory_orderings_match_table1() {
    let ds = dataset();
    let k = ds.num_classes;
    let dim = 256;
    let basic = BasicHdc::fit(dim, &ds.train_features, &ds.train_labels, k, 1).unwrap();
    let quant = QuantHd::fit(
        &QuantHdConfig { levels: 16, epochs: 1, ..QuantHdConfig::new(dim) },
        &ds.train_features,
        &ds.train_labels,
        k,
    )
    .unwrap();
    let searchd = SearcHd::fit(
        &SearcHdConfig { levels: 16, models_per_class: 4, epochs: 1, ..SearcHdConfig::new(dim) },
        &ds.train_features,
        &ds.train_labels,
        k,
    )
    .unwrap();

    // ID-Level encoders cost more than projection at the same D.
    assert!(quant.memory_report().em_bits > basic.memory_report().em_bits);
    // SearcHD's multi-model AM is N× the single-centroid AM.
    assert_eq!(searchd.memory_report().am_bits, 4 * quant.memory_report().am_bits);
}

#[test]
fn trait_objects_are_usable() {
    // The HdcClassifier trait must stay object-safe: the bench harness
    // sweeps heterogeneous model collections through it.
    let ds = dataset();
    let k = ds.num_classes;
    let boxed: Vec<Box<dyn HdcClassifier>> =
        vec![Box::new(BasicHdc::fit(128, &ds.train_features, &ds.train_labels, k, 2).unwrap())];
    for model in &boxed {
        assert_eq!(model.dim(), 128);
        let pred = model.predict(ds.test_features.row(0)).unwrap();
        assert!(pred < k);
    }
}
