//! Analytical memory model (paper Table I).
//!
//! Computes the encoding-module and associative-memory footprints of every
//! model from the symbolic formulas of Table I, without training anything.
//! The `table1` bench binary prints this table; the Fig. 3 sweep uses it
//! for the x-axis.

use memhd::MemoryReport;

/// Identifies one of the compared models for memory accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// SearcHD: ID-Level EM, `k × D × N` multi-model AM.
    SearcHd {
        /// Vector quantization factor `N`.
        n: usize,
    },
    /// QuantHD: ID-Level EM, `k × D` AM.
    QuantHd,
    /// LeHDC: ID-Level EM, `k × D` AM.
    LeHdc,
    /// BasicHDC: projection EM, `k × D` AM.
    BasicHdc,
    /// MEMHD: projection EM, `C × D` fully-utilized multi-centroid AM.
    Memhd {
        /// Total memory columns `C`.
        columns: usize,
    },
}

impl BaselineKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::SearcHd { .. } => "SearcHD",
            BaselineKind::QuantHd => "QuantHD",
            BaselineKind::LeHdc => "LeHDC",
            BaselineKind::BasicHdc => "BasicHDC",
            BaselineKind::Memhd { .. } => "MEMHD",
        }
    }

    /// Whether the model's encoding is an MVM (projection) — i.e. directly
    /// IMC-mappable (Table I discussion).
    pub fn mvm_encoding(&self) -> bool {
        matches!(self, BaselineKind::BasicHdc | BaselineKind::Memhd { .. })
    }
}

/// Memory requirements in bits per Table I.
///
/// * `features` — input feature count `f`
/// * `levels` — ID-Level quantization levels `L` (ignored for projection
///   encoders)
/// * `dim` — hypervector dimensionality `D`
/// * `num_classes` — `k`
pub fn baseline_memory(
    kind: BaselineKind,
    features: usize,
    levels: usize,
    dim: usize,
    num_classes: usize,
) -> MemoryReport {
    let f = features as u64;
    let l = levels as u64;
    let d = dim as u64;
    let k = num_classes as u64;
    match kind {
        BaselineKind::SearcHd { n } => MemoryReport::new((f + l) * d, k * d * n as u64),
        BaselineKind::QuantHd | BaselineKind::LeHdc => MemoryReport::new((f + l) * d, k * d),
        BaselineKind::BasicHdc => MemoryReport::new(f * d, k * d),
        BaselineKind::Memhd { columns } => MemoryReport::new(f * d, columns as u64 * d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: usize = 784;
    const L: usize = 256;
    const K: usize = 10;

    #[test]
    fn searchd_formula() {
        let r = baseline_memory(BaselineKind::SearcHd { n: 64 }, F, L, 1024, K);
        assert_eq!(r.em_bits, (784 + 256) * 1024);
        assert_eq!(r.am_bits, 10 * 1024 * 64);
    }

    #[test]
    fn quanthd_lehdc_formula() {
        for kind in [BaselineKind::QuantHd, BaselineKind::LeHdc] {
            let r = baseline_memory(kind, F, L, 2048, K);
            assert_eq!(r.em_bits, (784 + 256) * 2048);
            assert_eq!(r.am_bits, 10 * 2048);
        }
    }

    #[test]
    fn basichdc_formula() {
        let r = baseline_memory(BaselineKind::BasicHdc, F, L, 10240, K);
        assert_eq!(r.em_bits, 784 * 10240);
        assert_eq!(r.am_bits, 10 * 10240);
    }

    #[test]
    fn memhd_formula() {
        let r = baseline_memory(BaselineKind::Memhd { columns: 128 }, F, L, 128, K);
        assert_eq!(r.em_bits, 784 * 128);
        assert_eq!(r.am_bits, 128 * 128);
    }

    #[test]
    fn memhd_beats_basichdc_at_paper_scale() {
        // The headline claim: MEMHD 128x128 vs BasicHDC 10240D on MNIST.
        let memhd = baseline_memory(BaselineKind::Memhd { columns: 128 }, F, L, 128, K);
        let basic = baseline_memory(BaselineKind::BasicHdc, F, L, 10240, K);
        let ratio = basic.total_bits() as f64 / memhd.total_bits() as f64;
        // (784+10)·10240 / (784+128)·128 ≈ 69.6
        assert!(ratio > 60.0, "memory ratio {ratio}");
    }

    #[test]
    fn names_and_mvm_flags() {
        assert_eq!(BaselineKind::BasicHdc.name(), "BasicHDC");
        assert!(BaselineKind::BasicHdc.mvm_encoding());
        assert!(BaselineKind::Memhd { columns: 4 }.mvm_encoding());
        assert!(!BaselineKind::QuantHd.mvm_encoding());
        assert!(!BaselineKind::SearcHd { n: 2 }.mvm_encoding());
        assert!(!BaselineKind::LeHdc.mvm_encoding());
    }
}
