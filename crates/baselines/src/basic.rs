//! BasicHDC: projection encoding + single-pass training.
//!
//! The paper introduces BasicHDC as the baseline whose encoding *and*
//! associative search are both plain MVMs, making it the apples-to-apples
//! IMC-mapping comparison point (Table II uses BasicHDC at 10240D).

use crate::HdcClassifier;
use hd_linalg::Matrix;
use hdc::{encode_dataset, BinaryAm, EncodedDataset, Encoder, RandomProjectionEncoder};
use memhd::MemoryReport;

/// Single-centroid HDC with binary random-projection encoding and
/// single-pass class-vector accumulation (paper §II-C, Table I row
/// "BasicHDC").
///
/// # Example
///
/// ```
/// use hd_baselines::{BasicHdc, HdcClassifier};
/// use hd_linalg::Matrix;
///
/// # fn main() -> hdc::Result<()> {
/// let x = Matrix::from_rows(&[
///     &[0.9f32, 0.1, 0.9, 0.1][..], &[0.1, 0.9, 0.1, 0.9][..],
/// ]).unwrap();
/// let model = BasicHdc::fit(256, &x, &[0, 1], 2, 42)?;
/// assert_eq!(model.predict(&[0.9, 0.1, 0.9, 0.1])?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BasicHdc {
    encoder: RandomProjectionEncoder,
    am: BinaryAm,
}

impl BasicHdc {
    /// Trains on raw features with labels in `0..num_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs.
    pub fn fit(
        dim: usize,
        features: &Matrix,
        labels: &[usize],
        num_classes: usize,
        seed: u64,
    ) -> hdc::Result<Self> {
        let encoder = RandomProjectionEncoder::new(features.cols(), dim, seed);
        let encoded = encode_dataset(&encoder, features)?;
        Self::fit_encoded(encoder, &encoded, labels, num_classes)
    }

    /// Trains on a pre-encoded dataset (the encoder must have produced it).
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs.
    pub fn fit_encoded(
        encoder: RandomProjectionEncoder,
        encoded: &EncodedDataset,
        labels: &[usize],
        num_classes: usize,
    ) -> hdc::Result<Self> {
        let fp = hdc::train::single_pass(encoded, labels, num_classes)?;
        // Majority-rule binarization: each class vector at its own mean.
        // Projection hypervectors are sums of non-negative features, so
        // row means vary and a global threshold would bias the search
        // toward ones-heavy classes.
        Ok(BasicHdc { encoder, am: fp.quantize_per_row() })
    }

    /// The binary associative memory (`k × D`).
    pub fn binary_am(&self) -> &BinaryAm {
        &self.am
    }

    /// The projection encoder.
    pub fn encoder(&self) -> &RandomProjectionEncoder {
        &self.encoder
    }
}

impl HdcClassifier for BasicHdc {
    fn name(&self) -> &'static str {
        "BasicHDC"
    }

    fn predict(&self, features: &[f32]) -> hdc::Result<usize> {
        let q = self.encoder.encode_binary(features)?;
        self.am.classify(&q)
    }

    // Encodes into one packed batch, then classifies with the winners-only
    // sweep of the pre-blocked AM (runtime-dispatched SIMD popcount kernel).
    fn predict_batch(&self, features: &Matrix) -> hdc::Result<Vec<usize>> {
        let batch = self.encoder.encode_binary_batch(features)?;
        self.am.classify_batch(&batch)
    }

    fn memory_report(&self) -> MemoryReport {
        MemoryReport::new(self.encoder.memory_bits(), self.am.memory_bits())
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy;

    #[test]
    fn learns_toy_problem() {
        let (x, y) = toy(20, 1);
        let model = BasicHdc::fit(512, &x, &y, 3, 7).unwrap();
        let acc = model.evaluate(&x, &y).unwrap();
        assert!(acc > 0.85, "train accuracy {acc}");
    }

    #[test]
    fn memory_report_table1() {
        let (x, y) = toy(5, 2);
        let model = BasicHdc::fit(128, &x, &y, 3, 1).unwrap();
        let r = model.memory_report();
        assert_eq!(r.em_bits, 12 * 128); // f × D
        assert_eq!(r.am_bits, 3 * 128); // k × D
        assert_eq!(model.dim(), 128);
        assert_eq!(model.name(), "BasicHDC");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = toy(8, 3);
        let a = BasicHdc::fit(128, &x, &y, 3, 5).unwrap();
        let b = BasicHdc::fit(128, &x, &y, 3, 5).unwrap();
        assert_eq!(a.binary_am().as_bit_matrix(), b.binary_am().as_bit_matrix());
    }

    #[test]
    fn rejects_bad_labels() {
        let (x, mut y) = toy(5, 4);
        y[0] = 9;
        assert!(BasicHdc::fit(64, &x, &y, 3, 1).is_err());
    }

    #[test]
    fn evaluate_validates_shapes() {
        let (x, y) = toy(5, 5);
        let model = BasicHdc::fit(64, &x, &y, 3, 1).unwrap();
        assert!(model.evaluate(&x, &y[..3]).is_err());
    }
}
