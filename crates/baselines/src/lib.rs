//! Baseline binary HDC models (paper Table I and §IV-A).
//!
//! MEMHD is evaluated against four binary HDC baselines. All are
//! implemented here from scratch on the shared [`hdc`] substrate:
//!
//! | model | encoding | associative memory | training |
//! |---|---|---|---|
//! | [`BasicHdc`] | random projection | `k × D` | single-pass |
//! | [`QuantHd`] | ID-Level | `k × D` | quantization-aware iterative |
//! | [`SearcHd`] | ID-Level | `k × D × N` (multi-model) | stochastic bit-flip |
//! | [`LeHdc`] | ID-Level | `k × D` | BNN-style (STE + softmax CE) |
//!
//! All models expose the same surface (`fit`, `predict`, `evaluate`,
//! `memory_report`) via the [`HdcClassifier`] trait, and all use MVM-style
//! dot-similarity associative search at inference, mirroring the paper's
//! "fair comparison" setup for Fig. 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basic;
mod lehdc;
pub mod memory;
mod quanthd;
mod searchd;

pub use basic::BasicHdc;
pub use lehdc::{LeHdc, LeHdcConfig};
pub use memory::{baseline_memory, BaselineKind};
pub use quanthd::{QuantHd, QuantHdConfig};
pub use searchd::{SearcHd, SearcHdConfig};

use hd_linalg::Matrix;
use memhd::MemoryReport;

/// Common surface of every baseline classifier.
///
/// Mirrors the slice of `memhd::MemhdModel`'s API the evaluation harness
/// needs, so benches can sweep models uniformly.
pub trait HdcClassifier {
    /// Human-readable model name (e.g. `"QuantHD"`).
    fn name(&self) -> &'static str;

    /// Classifies a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] if the feature width does not match the
    /// model's encoder.
    fn predict(&self, features: &[f32]) -> hdc::Result<usize>;

    /// Classifies every row of `features` — the preferred inference entry
    /// point. Every model overrides the default with the batched
    /// encode-then-search pipeline (packed queries, one tiled popcount
    /// sweep); the default falls back to per-row [`HdcClassifier::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] if the feature width does not match the
    /// model's encoder.
    fn predict_batch(&self, features: &Matrix) -> hdc::Result<Vec<usize>> {
        (0..features.rows()).map(|i| self.predict(features.row(i))).collect()
    }

    /// Accuracy over a labeled feature matrix (batched inference path).
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] on shape mismatches.
    fn evaluate(&self, features: &Matrix, labels: &[usize]) -> hdc::Result<f64> {
        if features.rows() != labels.len() || labels.is_empty() {
            return Err(hdc::HdcError::InvalidTrainingSet {
                reason: format!("{} rows vs {} labels", features.rows(), labels.len()),
            });
        }
        let preds = self.predict_batch(features)?;
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len() as f64)
    }

    /// Memory requirements per Table I.
    fn memory_report(&self) -> MemoryReport;

    /// Hypervector dimensionality `D`.
    fn dim(&self) -> usize;
}

#[cfg(test)]
pub(crate) mod testutil {
    use hd_linalg::rng::{seeded, Normal};
    use hd_linalg::Matrix;

    /// Three-class multi-modal toy problem shared by baseline tests.
    pub fn toy(per_class: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = seeded(seed);
        let noise = Normal::new(0.0, 0.06);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for s in 0..per_class {
                let mode = s % 2;
                let row: Vec<f32> = (0..12)
                    .map(|j| {
                        let hot = j / 4 == class;
                        let base = if hot { 0.8 } else { 0.2 };
                        let shift = if hot && (j % 2 == mode) { 0.2 } else { 0.0 };
                        (base - shift + noise.sample(&mut rng)).clamp(0.0, 1.0)
                    })
                    .collect();
                rows.push(row);
                labels.push(class);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }
}
