//! QuantHD: ID-Level encoding + quantization-aware iterative learning.
//!
//! QuantHD \[13\] introduced quantization-aware training for HDC: the
//! model keeps a floating-point associative memory for updates but
//! evaluates mispredictions against the **quantized** memory, so training
//! optimizes exactly the model that will run. MEMHD generalizes this idea
//! to its multi-centroid memory; this implementation is the original
//! single-centroid form.

use crate::HdcClassifier;
use hd_linalg::Matrix;
use hdc::train::QatEpoch;
use hdc::{encode_dataset, BinaryAm, EncodedDataset, Encoder, IdLevelEncoder};
use memhd::MemoryReport;

/// Configuration for [`QuantHd`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantHdConfig {
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Quantization levels `L` (the paper's baselines use 256).
    pub levels: usize,
    /// Learning rate for the iterative updates.
    pub learning_rate: f32,
    /// Maximum training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QuantHdConfig {
    /// Paper-style defaults: `L = 256`, `α = 0.05`, 20 epochs.
    pub fn new(dim: usize) -> Self {
        QuantHdConfig { dim, levels: 256, learning_rate: 0.05, epochs: 20, seed: 0 }
    }
}

/// The QuantHD baseline model (Table I row "QuantHD").
#[derive(Debug, Clone)]
pub struct QuantHd {
    encoder: IdLevelEncoder,
    am: BinaryAm,
    history: Vec<QatEpoch>,
}

impl QuantHd {
    /// Trains on raw features in `[0, 1]` with labels in `0..num_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs.
    pub fn fit(
        config: &QuantHdConfig,
        features: &Matrix,
        labels: &[usize],
        num_classes: usize,
    ) -> hdc::Result<Self> {
        let encoder = IdLevelEncoder::new(features.cols(), config.dim, config.levels, config.seed);
        let encoded = encode_dataset(&encoder, features)?;
        Self::fit_encoded(config, encoder, &encoded, labels, num_classes)
    }

    /// Trains on a pre-encoded dataset.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs.
    pub fn fit_encoded(
        config: &QuantHdConfig,
        encoder: IdLevelEncoder,
        encoded: &EncodedDataset,
        labels: &[usize],
        num_classes: usize,
    ) -> hdc::Result<Self> {
        let mut fp = hdc::train::single_pass(encoded, labels, num_classes)?;
        let (am, history) = hdc::train::quantization_aware(
            &mut fp,
            encoded,
            labels,
            config.learning_rate,
            config.epochs,
        )?;
        Ok(QuantHd { encoder, am, history })
    }

    /// Per-epoch training telemetry.
    pub fn history(&self) -> &[QatEpoch] {
        &self.history
    }

    /// The binary associative memory (`k × D`).
    pub fn binary_am(&self) -> &BinaryAm {
        &self.am
    }
}

impl HdcClassifier for QuantHd {
    fn name(&self) -> &'static str {
        "QuantHD"
    }

    fn predict(&self, features: &[f32]) -> hdc::Result<usize> {
        let q = self.encoder.encode_binary(features)?;
        self.am.classify(&q)
    }

    // Encodes into one packed batch, then classifies with the winners-only
    // sweep of the pre-blocked AM (runtime-dispatched SIMD popcount kernel).
    fn predict_batch(&self, features: &Matrix) -> hdc::Result<Vec<usize>> {
        let batch = self.encoder.encode_binary_batch(features)?;
        self.am.classify_batch(&batch)
    }

    fn memory_report(&self) -> MemoryReport {
        MemoryReport::new(self.encoder.memory_bits(), self.am.memory_bits())
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy;

    #[test]
    fn learns_toy_problem() {
        let (x, y) = toy(20, 1);
        let cfg = QuantHdConfig { levels: 16, epochs: 15, ..QuantHdConfig::new(512) };
        let model = QuantHd::fit(&cfg, &x, &y, 3).unwrap();
        let acc = model.evaluate(&x, &y).unwrap();
        assert!(acc > 0.8, "train accuracy {acc}");
        assert!(!model.history().is_empty());
    }

    #[test]
    fn memory_report_table1() {
        let (x, y) = toy(5, 2);
        let cfg = QuantHdConfig { levels: 8, epochs: 1, ..QuantHdConfig::new(128) };
        let model = QuantHd::fit(&cfg, &x, &y, 3).unwrap();
        let r = model.memory_report();
        assert_eq!(r.em_bits, (12 + 8) * 128); // (f + L) × D
        assert_eq!(r.am_bits, 3 * 128); // k × D
        assert_eq!(model.name(), "QuantHD");
    }

    #[test]
    fn training_does_not_regress_start() {
        let (x, y) = toy(15, 3);
        let cfg = QuantHdConfig { levels: 16, epochs: 10, ..QuantHdConfig::new(256) };
        let model = QuantHd::fit(&cfg, &x, &y, 3).unwrap();
        let hist = model.history();
        let first = hist.first().unwrap().train_accuracy;
        let best = hist.iter().map(|e| e.train_accuracy).fold(f64::NEG_INFINITY, f64::max);
        assert!(best >= first);
    }

    #[test]
    fn default_config_values() {
        let cfg = QuantHdConfig::new(1024);
        assert_eq!(cfg.levels, 256);
        assert_eq!(cfg.dim, 1024);
    }
}
