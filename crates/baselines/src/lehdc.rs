//! LeHDC: learning-based HDC with BNN-style training.
//!
//! LeHDC \[15\] reframes the associative memory as a binary neural network
//! layer and trains it with gradient descent: the forward pass uses the
//! **binarized** class vectors, gradients flow to a floating-point shadow
//! copy through a straight-through estimator (STE), and weights are
//! clipped to `[-1, 1]`. It is the accuracy state of the art among binary
//! HDC baselines — at the cost of ID-Level encoding memory and a `k × D`
//! AM that still underutilizes IMC columns.
//!
//! This implementation trains with softmax cross-entropy over the binary
//! dot-similarity scores (the same MVM associative search used at
//! inference), SGD with momentum, and per-sample updates restricted to the
//! active (set) bits of the query hypervector.

use crate::HdcClassifier;
use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::{BitVector, Matrix};
use hdc::{encode_dataset, BinaryAm, EncodedDataset, Encoder, IdLevelEncoder};
use memhd::MemoryReport;
use rand::Rng;

/// Configuration for [`LeHdc`].
#[derive(Debug, Clone, PartialEq)]
pub struct LeHdcConfig {
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Quantization levels `L` for the ID-Level encoder.
    pub levels: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LeHdcConfig {
    /// Defaults: `L = 256`, `lr = 0.05`, momentum 0.9, 20 epochs.
    pub fn new(dim: usize) -> Self {
        LeHdcConfig { dim, levels: 256, learning_rate: 0.05, momentum: 0.9, epochs: 20, seed: 0 }
    }
}

/// The LeHDC baseline model (Table I row "LeHDC").
#[derive(Debug, Clone)]
pub struct LeHdc {
    encoder: IdLevelEncoder,
    am: BinaryAm,
    train_accuracy: Vec<f64>,
}

impl LeHdc {
    /// Trains on raw features in `[0, 1]` with labels in `0..num_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs.
    pub fn fit(
        config: &LeHdcConfig,
        features: &Matrix,
        labels: &[usize],
        num_classes: usize,
    ) -> hdc::Result<Self> {
        let encoder = IdLevelEncoder::new(features.cols(), config.dim, config.levels, config.seed);
        let encoded = encode_dataset(&encoder, features)?;
        Self::fit_encoded(config, encoder, &encoded, labels, num_classes)
    }

    /// Trains on a pre-encoded dataset.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs.
    pub fn fit_encoded(
        config: &LeHdcConfig,
        encoder: IdLevelEncoder,
        encoded: &EncodedDataset,
        labels: &[usize],
        num_classes: usize,
    ) -> hdc::Result<Self> {
        // Initialize the FP shadow weights from single-pass class vectors,
        // centered per row and scaled into [-1, 1].
        let single = hdc::train::single_pass(encoded, labels, num_classes)?;
        let dim = encoded.dim();
        let mut w = Matrix::zeros(num_classes, dim);
        for c in 0..num_classes {
            let row = single.centroid(c);
            let mean = hd_linalg::mean(row);
            let max_abs =
                row.iter().map(|v| (v - mean).abs()).fold(0.0f32, f32::max).max(f32::MIN_POSITIVE);
            for (j, &v) in row.iter().enumerate() {
                w.set(c, j, (v - mean) / max_abs);
            }
        }
        let mut velocity = Matrix::zeros(num_classes, dim);

        let scale = 1.0 / (dim as f32).sqrt();
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        let mut history = Vec::with_capacity(config.epochs);

        for epoch in 0..config.epochs {
            let mut rng = seeded(derive_seed(config.seed, 0x6c65_0000 | epoch as u64));
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }

            let mut correct = 0usize;
            for &i in &order {
                let label = labels[i];
                let q = &encoded.bin[i];
                let ones: Vec<usize> = q.iter_ones().collect();

                // Forward with *binarized* weights: s_c = Σ_{j∈ones} [w_cj > 0].
                let mut logits = vec![0.0f32; num_classes];
                for (c, logit) in logits.iter_mut().enumerate() {
                    let wr = w.row(c);
                    let s = ones.iter().filter(|&&j| wr[j] > 0.0).count();
                    *logit = s as f32 * scale;
                }

                // Softmax cross-entropy gradient: p - onehot(label).
                let max_logit = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                let exps: Vec<f32> = logits.iter().map(|&z| (z - max_logit).exp()).collect();
                let sum: f32 = exps.iter().sum();
                let pred = hd_linalg::argmax(&logits).expect("non-empty logits");
                if pred == label {
                    correct += 1;
                }

                // STE backward: gradient w.r.t. the binary weight passes
                // through to the FP shadow on active query bits.
                for (c, &e) in exps.iter().enumerate() {
                    let g = e / sum - if c == label { 1.0 } else { 0.0 };
                    if g == 0.0 {
                        continue;
                    }
                    let gv = g * scale;
                    let vr = velocity.row_mut(c);
                    for &j in &ones {
                        vr[j] = config.momentum * vr[j] - config.learning_rate * gv;
                    }
                    let vr = velocity.row(c).to_vec();
                    let wr = w.row_mut(c);
                    for &j in &ones {
                        wr[j] = (wr[j] + vr[j]).clamp(-1.0, 1.0);
                    }
                }
            }
            history.push(correct as f64 / order.len() as f64);
        }

        // Final binarization: positive shadow weight ⇒ bit 1.
        let centroids: Vec<(usize, BitVector)> =
            (0..num_classes).map(|c| (c, BitVector::from_threshold(w.row(c), 0.0))).collect();
        let am = BinaryAm::from_centroids(num_classes, centroids)?;
        Ok(LeHdc { encoder, am, train_accuracy: history })
    }

    /// Training accuracy per epoch (measured with the evolving binary
    /// weights during each epoch).
    pub fn history(&self) -> &[f64] {
        &self.train_accuracy
    }

    /// The binary associative memory (`k × D`).
    pub fn binary_am(&self) -> &BinaryAm {
        &self.am
    }
}

impl HdcClassifier for LeHdc {
    fn name(&self) -> &'static str {
        "LeHDC"
    }

    fn predict(&self, features: &[f32]) -> hdc::Result<usize> {
        let q = self.encoder.encode_binary(features)?;
        self.am.classify(&q)
    }

    // Encodes into one packed batch, then classifies with the winners-only
    // sweep of the pre-blocked AM (runtime-dispatched SIMD popcount kernel).
    fn predict_batch(&self, features: &Matrix) -> hdc::Result<Vec<usize>> {
        let batch = self.encoder.encode_binary_batch(features)?;
        self.am.classify_batch(&batch)
    }

    fn memory_report(&self) -> MemoryReport {
        MemoryReport::new(self.encoder.memory_bits(), self.am.memory_bits())
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy;

    fn quick_config(dim: usize) -> LeHdcConfig {
        LeHdcConfig { levels: 16, epochs: 15, ..LeHdcConfig::new(dim) }
    }

    #[test]
    fn learns_toy_problem() {
        let (x, y) = toy(15, 1);
        let model = LeHdc::fit(&quick_config(512), &x, &y, 3).unwrap();
        let acc = model.evaluate(&x, &y).unwrap();
        assert!(acc > 0.85, "train accuracy {acc}");
    }

    #[test]
    fn history_tracks_epochs() {
        let (x, y) = toy(8, 2);
        let model = LeHdc::fit(&quick_config(128), &x, &y, 3).unwrap();
        assert_eq!(model.history().len(), 15);
        let first = model.history()[0];
        let best = model.history().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(best >= first);
    }

    #[test]
    fn memory_report_table1() {
        let (x, y) = toy(5, 3);
        let model = LeHdc::fit(&quick_config(128), &x, &y, 3).unwrap();
        let r = model.memory_report();
        assert_eq!(r.em_bits, (12 + 16) * 128); // (f + L) × D
        assert_eq!(r.am_bits, 3 * 128); // k × D
        assert_eq!(model.name(), "LeHDC");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = toy(8, 4);
        let a = LeHdc::fit(&quick_config(128), &x, &y, 3).unwrap();
        let b = LeHdc::fit(&quick_config(128), &x, &y, 3).unwrap();
        assert_eq!(a.binary_am().as_bit_matrix(), b.binary_am().as_bit_matrix());
    }

    #[test]
    fn rejects_bad_labels() {
        let (x, mut y) = toy(5, 5);
        y[0] = 7;
        assert!(LeHdc::fit(&quick_config(64), &x, &y, 3).is_err());
    }
}
