//! SearcHD: memory-centric multi-model HDC with stochastic training.
//!
//! SearcHD \[14\] is the baseline closest in spirit to MEMHD: instead of
//! one class vector it quantizes a non-binary class vector into `N` binary
//! vectors per class (the paper's evaluation fixes `N = 64`). Training is
//! *stochastic*: on a misprediction, bits of the most-similar true-class
//! model are flipped toward the sample hypervector with a fixed
//! probability, and bits of the winning wrong model are flipped away.
//! The key difference from MEMHD is that SearcHD's `N` is a quantization
//! fan-out (all `N` vectors chase the same class prototype) rather than a
//! set of clustered intra-class modes, and its memory grows as `k × D × N`.

use crate::HdcClassifier;
use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::{BitVector, Matrix};
use hdc::{encode_dataset, BinaryAm, EncodedDataset, Encoder, IdLevelEncoder};
use memhd::MemoryReport;
use rand::Rng;

/// Configuration for [`SearcHd`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearcHdConfig {
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Quantization levels `L` for the ID-Level encoder.
    pub levels: usize,
    /// Binary models per class `N` (the paper fixes `N = 64`).
    pub models_per_class: usize,
    /// Probability of flipping a disagreeing bit during an update.
    pub flip_probability: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SearcHdConfig {
    /// Paper-style defaults: `L = 256`, `N = 64`, flip probability 0.05,
    /// 20 epochs.
    pub fn new(dim: usize) -> Self {
        SearcHdConfig {
            dim,
            levels: 256,
            models_per_class: 64,
            flip_probability: 0.05,
            epochs: 20,
            seed: 0,
        }
    }
}

/// The SearcHD baseline model (Table I row "SearcHD").
#[derive(Debug, Clone)]
pub struct SearcHd {
    encoder: IdLevelEncoder,
    am: BinaryAm,
    models_per_class: usize,
}

impl SearcHd {
    /// Trains on raw features in `[0, 1]` with labels in `0..num_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs (including a
    /// class with no samples, which leaves its models unseeded).
    pub fn fit(
        config: &SearcHdConfig,
        features: &Matrix,
        labels: &[usize],
        num_classes: usize,
    ) -> hdc::Result<Self> {
        let encoder = IdLevelEncoder::new(features.cols(), config.dim, config.levels, config.seed);
        let encoded = encode_dataset(&encoder, features)?;
        Self::fit_encoded(config, encoder, &encoded, labels, num_classes)
    }

    /// Trains on a pre-encoded dataset.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::HdcError`] for inconsistent inputs.
    pub fn fit_encoded(
        config: &SearcHdConfig,
        encoder: IdLevelEncoder,
        encoded: &EncodedDataset,
        labels: &[usize],
        num_classes: usize,
    ) -> hdc::Result<Self> {
        if config.models_per_class == 0 {
            return Err(hdc::HdcError::InvalidParameter {
                name: "models_per_class",
                reason: "must be positive".into(),
            });
        }
        if encoded.len() != labels.len() || encoded.is_empty() {
            return Err(hdc::HdcError::InvalidTrainingSet {
                reason: format!("{} samples vs {} labels", encoded.len(), labels.len()),
            });
        }
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
        for (i, &l) in labels.iter().enumerate() {
            if l >= num_classes {
                return Err(hdc::HdcError::UnknownClass { class: l, num_classes });
            }
            by_class[l].push(i);
        }
        if let Some(empty) = by_class.iter().position(Vec::is_empty) {
            return Err(hdc::HdcError::InvalidTrainingSet {
                reason: format!("class {empty} has no samples"),
            });
        }

        let mut rng = seeded(derive_seed(config.seed, 0x73_6864)); // "shd"
                                                                   // Initialize each class's N models from random samples of the class.
        let n = config.models_per_class;
        let mut rows: Vec<BitVector> = Vec::with_capacity(num_classes * n);
        let mut classes: Vec<usize> = Vec::with_capacity(num_classes * n);
        for (class, members) in by_class.iter().enumerate() {
            for _ in 0..n {
                let pick = members[rng.gen_range(0..members.len())];
                rows.push(encoded.bin[pick].clone());
                classes.push(class);
            }
        }

        // Stochastic training: flip bits of the best true-class model
        // toward the sample and bits of the winning wrong model away.
        // Rows of one class are contiguous (class c owns rows c·n..(c+1)·n).
        for _epoch in 0..config.epochs {
            let mut updates = 0usize;
            for (i, &label) in labels.iter().enumerate() {
                let q = &encoded.bin[i];
                let mut pred_row = 0usize;
                let mut pred_score = rows[0].dot(q);
                let mut true_row = label * n;
                let mut true_score = rows[true_row].dot(q);
                for (r, row) in rows.iter().enumerate() {
                    let s = row.dot(q);
                    if s > pred_score {
                        pred_score = s;
                        pred_row = r;
                    }
                    if classes[r] == label && s > true_score {
                        true_score = s;
                        true_row = r;
                    }
                }
                if classes[pred_row] == label {
                    continue;
                }
                for bit in 0..q.len() {
                    let qb = q.get(bit);
                    // Pull the true model toward the sample.
                    if rows[true_row].get(bit) != qb && rng.gen_bool(config.flip_probability) {
                        rows[true_row].set(bit, qb);
                    }
                    // Push the wrong model away from the sample.
                    if rows[pred_row].get(bit) == qb && rng.gen_bool(config.flip_probability) {
                        rows[pred_row].set(bit, !qb);
                    }
                }
                updates += 1;
            }
            if updates == 0 {
                break;
            }
        }

        let centroids: Vec<(usize, BitVector)> = classes.into_iter().zip(rows).collect();
        let am = BinaryAm::from_centroids(num_classes, centroids)?;
        Ok(SearcHd { encoder, am, models_per_class: config.models_per_class })
    }

    /// The binary associative memory (`k·N` rows of `D` bits).
    pub fn binary_am(&self) -> &BinaryAm {
        &self.am
    }

    /// Binary models per class `N`.
    pub fn models_per_class(&self) -> usize {
        self.models_per_class
    }
}

impl HdcClassifier for SearcHd {
    fn name(&self) -> &'static str {
        "SearcHD"
    }

    fn predict(&self, features: &[f32]) -> hdc::Result<usize> {
        let q = self.encoder.encode_binary(features)?;
        self.am.classify(&q)
    }

    // Encodes into one packed batch, then classifies with the winners-only
    // sweep of the pre-blocked AM (runtime-dispatched SIMD popcount kernel).
    fn predict_batch(&self, features: &Matrix) -> hdc::Result<Vec<usize>> {
        let batch = self.encoder.encode_binary_batch(features)?;
        self.am.classify_batch(&batch)
    }

    fn memory_report(&self) -> MemoryReport {
        // Table I: AM = k × D × N.
        MemoryReport::new(self.encoder.memory_bits(), self.am.memory_bits())
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy;

    fn quick_config(dim: usize) -> SearcHdConfig {
        SearcHdConfig {
            levels: 16,
            models_per_class: 4,
            epochs: 10,
            flip_probability: 0.2,
            ..SearcHdConfig::new(dim)
        }
    }

    #[test]
    fn learns_toy_problem() {
        let (x, y) = toy(15, 1);
        let model = SearcHd::fit(&quick_config(512), &x, &y, 3).unwrap();
        let acc = model.evaluate(&x, &y).unwrap();
        assert!(acc > 0.7, "train accuracy {acc}");
    }

    #[test]
    fn am_has_k_times_n_rows() {
        let (x, y) = toy(6, 2);
        let model = SearcHd::fit(&quick_config(128), &x, &y, 3).unwrap();
        assert_eq!(model.binary_am().num_centroids(), 3 * 4);
        assert_eq!(model.models_per_class(), 4);
    }

    #[test]
    fn memory_report_table1() {
        let (x, y) = toy(5, 3);
        let model = SearcHd::fit(&quick_config(128), &x, &y, 3).unwrap();
        let r = model.memory_report();
        assert_eq!(r.em_bits, (12 + 16) * 128); // (f + L) × D
        assert_eq!(r.am_bits, 3 * 128 * 4); // k × D × N
        assert_eq!(model.name(), "SearcHD");
    }

    #[test]
    fn zero_models_rejected() {
        let (x, y) = toy(5, 4);
        let cfg = SearcHdConfig { models_per_class: 0, ..quick_config(64) };
        assert!(SearcHd::fit(&cfg, &x, &y, 3).is_err());
    }

    #[test]
    fn missing_class_rejected() {
        let (x, mut y) = toy(5, 5);
        for l in y.iter_mut() {
            if *l == 2 {
                *l = 0;
            }
        }
        assert!(SearcHd::fit(&quick_config(64), &x, &y, 3).is_err());
    }
}
