//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! suites use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header), [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `any::<bool>()`,
//! `prop::collection::vec`, `prop::sample::select`, [`Just`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: failing inputs are **not shrunk** (the
//! panic message reports the case number and the test re-runs
//! deterministically, which is enough to debug), and generation is driven
//! by the workspace's deterministic [`rand`] shim.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// The RNG handed to strategies by the macro-generated runner.
pub type TestRng = StdRng;

/// Creates the deterministic per-test RNG. Public for the macro expansion.
#[doc(hidden)]
pub fn __test_rng(test_name: &str, case: u32) -> TestRng {
    // Stable hash of the test name so different properties see different
    // streams while remaining reproducible run to run.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the full-type-range strategy for simple types.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen::<bool>(rng)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen::<u64>(rng)
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::gen::<u32>(rng)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Sampling the half-open range is indistinguishable in
                // practice; the inclusive form is accepted for API parity.
                rand::Rng::gen_range(rng, *self.start()..*self.end())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// `proptest::prelude` equivalent: everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace alias so `prop::collection::vec` etc. resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Unlike real proptest (which resamples), the case is simply counted as
/// passing; case counts are sized generously enough that coverage is
/// unaffected.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests. Mirrors `proptest::proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, bits in prop::collection::vec(any::<bool>(), 8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { cases = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cases = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cases = ($cfg:expr); ) => {};
    ( cases = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::__test_rng(stringify!($name), case);
                #[allow(unused_parens)]
                let ($($pat),+) = {
                    use $crate::Strategy as _;
                    ($( ($strat).generate(&mut rng) ),+)
                };
                // The closure gives `prop_assume!` an early-exit target.
                let run = || $body;
                run();
            }
        }
        $crate::__proptest_impl! { cases = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::__test_rng("bounds", 0);
        for _ in 0..100 {
            let x = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let v = prop::collection::vec(any::<bool>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = prop::sample::select(vec![10, 20, 30]).generate(&mut rng);
            assert!([10, 20, 30].contains(&s));
            let (a, b) = (0u64..4, 1usize..=2).generate(&mut rng);
            assert!(a < 4 && (1..=2).contains(&b));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::__test_rng("flat", 1);
        let strat = (1usize..4).prop_flat_map(|n| prop::collection::vec(0u64..10, n));
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro compiles with doc comments, tuple patterns, and
        /// multiple bindings, and `prop_assume!` exits early.
        #[test]
        fn macro_smoke((a, b) in (0usize..5, 0usize..5), flag in any::<bool>()) {
            prop_assume!(a != 4);
            prop_assert!(a < 4 && b < 5);
            prop_assert_eq!(flag as usize * 2, flag as usize + flag as usize);
            prop_assert_ne!(a, 100);
        }
    }
}
