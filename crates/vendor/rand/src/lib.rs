//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in an environment with no network access to a
//! crates.io mirror, so the subset of the `rand 0.8` API the reproduction
//! uses is implemented here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast, and statistically strong enough for every stochastic stage in this
//! repository (projection matrices, dataset synthesis, k-means seeding,
//! stochastic training). The bit streams differ from the real `StdRng`
//! (ChaCha12); nothing in the workspace depends on the exact stream, only
//! on determinism under a seed.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce with a uniform "standard"
/// distribution (the analogue of `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly samples `[0, span)` without modulo bias (Lemire reduction is
/// overkill here; the 128-bit multiply keeps the bias below 2^-64).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::from_rng(rng) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
    /// cryptographically secure, which is irrelevant for simulation
    /// seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw(rng: &mut dyn super::RngCore) -> f64 {
            use super::Rng;
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
