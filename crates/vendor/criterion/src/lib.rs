//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`) with a
//! straightforward wall-clock measurement loop: warm up, auto-calibrate an
//! iteration batch to ~`SAMPLE_TARGET`, collect samples, report the
//! median.
//!
//! Results print to stdout; when the `CRITERION_JSON` environment variable
//! names a file, one JSON line per benchmark is appended to it
//! (`{"id": ..., "ns_per_iter": ..., "samples": ...}`), which is how the
//! committed `BENCH_*.json` perf-trajectory files are produced.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Wall-clock budget per collected sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Warm-up budget per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(120);

/// Opaque value barrier — re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How much work one measured element represents (affects only reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim always runs
/// one setup per measured invocation, so the variants are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (e.g. a cloned model).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    ns_per_iter: f64,
    samples: usize,
}

impl Bencher {
    /// Measures `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in SAMPLE_TARGET?
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= SAMPLE_TARGET / 4 || batch >= 1 << 30 {
                break;
            }
            batch = (batch * 4).min(1 << 30);
        }
        // Warm-up.
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_TARGET {
            black_box(routine());
        }
        // Collect samples.
        let mut samples: Vec<f64> = Vec::new();
        let budget = Instant::now();
        while samples.len() < 10 && budget.elapsed() < Duration::from_secs(3) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
        self.samples = samples.len();
    }

    /// Measures `routine` with fresh per-call state from `setup` (setup
    /// time excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut samples: Vec<f64> = Vec::new();
        // Warm-up round.
        black_box(routine(setup()));
        let budget = Instant::now();
        while samples.len() < 10 && budget.elapsed() < Duration::from_secs(3) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
        self.samples = samples.len();
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn record(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!("{id:<50} time: [{}]", human_time(b.ns_per_iter));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Elements(n) => format!("{:.1} Melem/s", n as f64 / b.ns_per_iter * 1e3),
            Throughput::Bytes(n) => format!("{:.1} MiB/s", n as f64 / b.ns_per_iter * 1e3 / 1.048),
        };
        line.push_str(&format!(" thrpt: [{per_sec}]"));
    }
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(
                f,
                "{{\"id\": \"{id}\", \"ns_per_iter\": {:.1}, \"samples\": {}}}",
                b.ns_per_iter, b.samples
            );
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    filter: &'a Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API parity; the shim sizes samples by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&self, id: String, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { ns_per_iter: f64::NAN, samples: 0 };
        f(&mut b);
        record(&full, &b, self.throughput);
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(id.to_string(), |b| f(b));
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Ends the group (reporting happens per-benchmark; kept for parity).
    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies CLI args: the first free argument is a substring filter,
    /// matching cargo-bench conventions (`--bench`/`--test` flags and
    /// flagged values are ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        let mut filter = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {
                    // Skip the value of `--flag value` style options.
                    if !s.contains('=') {
                        let _ = args.next();
                    }
                }
                free => {
                    filter = Some(free.to_string());
                    break;
                }
            }
        }
        self.filter = filter;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, filter: &self.filter }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        let skip = self.filter.as_ref().is_some_and(|flt| !id.contains(flt.as_str()));
        if !skip {
            let mut b = Bencher { ns_per_iter: f64::NAN, samples: 0 };
            f(&mut b);
            record(&id, &b, None);
        }
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` invokes bench binaries with --test;
            // there is nothing to verify beyond successful startup.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_something() {
        let mut b = Bencher { ns_per_iter: f64::NAN, samples: 0 };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(black_box(1));
            x
        });
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0);
        assert!(b.samples > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fp", 128).to_string(), "fp/128");
        assert_eq!(BenchmarkId::from_parameter("memhd").to_string(), "memhd");
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
    }
}
