//! Property coverage for the model persistence format: an arbitrary
//! (valid) configuration, trained and round-tripped through
//! `serialize::save` / `serialize::load`, must predict identically —
//! and corrupted headers must be rejected, never misparsed.

use hd_linalg::rng::{seeded, Normal};
use hd_linalg::Matrix;
use memhd::{serialize, InitMethod, MemhdConfig, MemhdModel};
use proptest::prelude::*;

/// A small multi-modal training set with `num_classes` classes.
fn dataset(num_classes: usize, per_class: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = seeded(seed);
    let noise = Normal::new(0.0, 0.08);
    let features = 4 * num_classes;
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..num_classes {
        for s in 0..per_class {
            let row: Vec<f32> = (0..features)
                .map(|j| {
                    let hot = j / 4 == class;
                    let base = if hot { 0.8 } else { 0.2 };
                    let shift = if hot && (j % 2 == s % 2) { 0.15 } else { 0.0 };
                    (base - shift + noise.sample(&mut rng)).clamp(0.0, 1.0)
                })
                .collect();
            rows.push(row);
            labels.push(class);
        }
    }
    (Matrix::from_rows(&rows).unwrap(), labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary config → fit → save → load → identical `predict_batch`
    /// outputs (and an identical re-serialization).
    #[test]
    fn roundtrip_preserves_predict_batch(
        dim in 32usize..128,
        num_classes in 2usize..5,
        extra_columns in 0usize..6,
        epochs in 0usize..4,
        ratio in 0.3f32..1.0,
        lr in 0.005f32..0.2,
        random_init in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let columns = num_classes + extra_columns;
        let config = MemhdConfig::new(dim, columns, num_classes).unwrap()
            .with_initial_cluster_ratio(ratio).unwrap()
            .with_learning_rate(lr).unwrap()
            .with_epochs(epochs)
            .with_init_method(if random_init {
                InitMethod::RandomSampling
            } else {
                InitMethod::Clustering
            })
            .with_seed(seed);
        let (features, labels) = dataset(num_classes, 8, seed ^ 0xd5);
        let model = MemhdModel::fit(&config, &features, &labels).expect("fit");

        let bytes = serialize::to_bytes(&model);
        let restored = serialize::from_bytes(&bytes).expect("load");
        prop_assert_eq!(restored.config(), model.config());
        prop_assert_eq!(
            restored.predict_batch(&features).expect("restored predict"),
            model.predict_batch(&features).expect("original predict")
        );
        // The reload is loss-free: serializing again yields the same bytes.
        prop_assert_eq!(serialize::to_bytes(&restored), bytes);
    }

    /// Flipping any single byte of the header region (magic + config)
    /// must produce an error or a model whose config/predictions are
    /// self-consistent — never a panic or a misparse that changes shape
    /// silently.
    #[test]
    fn corrupted_header_never_panics(byte in 0usize..49, flip in 1u8..=255) {
        let config = MemhdConfig::new(64, 6, 3).unwrap().with_epochs(1).with_seed(9);
        let (features, labels) = dataset(3, 8, 77);
        let model = MemhdModel::fit(&config, &features, &labels).expect("fit");
        let mut bytes = serialize::to_bytes(&model);
        bytes[byte] ^= flip;
        // Must not panic; errors are expected, silent success is allowed
        // only if the perturbed field still parses to a consistent model
        // (e.g. a flipped seed byte).
        let _ = serialize::from_bytes(&bytes);
    }
}

/// Deterministic corrupted-header rejections: magic, shape fields, and
/// the init-method tag.
#[test]
fn corrupted_header_rejected() {
    let config = MemhdConfig::new(64, 6, 3).unwrap().with_epochs(1).with_seed(3);
    let (features, labels) = dataset(3, 8, 5);
    let model = MemhdModel::fit(&config, &features, &labels).expect("fit");
    let bytes = serialize::to_bytes(&model);

    // Wrong magic (any of the 8 leading bytes).
    for i in 0..8 {
        let mut bad = bytes.clone();
        bad[i] ^= 0xff;
        assert!(serialize::from_bytes(&bad).is_err(), "magic byte {i}");
    }
    // Zeroed dim (offset 8) and zeroed num_classes (offset 16) break
    // config validation.
    for offset in [8usize, 16] {
        let mut bad = bytes.clone();
        bad[offset..offset + 4].fill(0);
        assert!(serialize::from_bytes(&bad).is_err(), "zeroed u32 at {offset}");
    }
    // Unknown init-method tag (offset 40 = 8 magic + 6 u32 + 2 f32).
    let mut bad = bytes.clone();
    bad[40] = 200;
    assert!(serialize::from_bytes(&bad).is_err(), "init tag");
    // Truncation anywhere in the header.
    for keep in [0usize, 7, 20, 40] {
        assert!(serialize::from_bytes(&bytes[..keep]).is_err(), "truncated to {keep}");
    }
    // The pristine bytes still load (the corruptions above were the only
    // problem).
    assert!(serialize::from_bytes(&bytes).is_ok());
}

/// File-level round trip through `save` / `load`.
#[test]
fn file_roundtrip_preserves_predictions() {
    let config = MemhdConfig::new(96, 8, 4).unwrap().with_epochs(2).with_seed(11);
    let (features, labels) = dataset(4, 8, 21);
    let model = MemhdModel::fit(&config, &features, &labels).expect("fit");
    let path = std::env::temp_dir().join(format!("memhd-roundtrip-{}.bin", std::process::id()));
    serialize::save(&model, &path).expect("save");
    let restored = serialize::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        restored.predict_batch(&features).expect("restored"),
        model.predict_batch(&features).expect("original")
    );
}
