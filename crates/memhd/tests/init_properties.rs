//! Property-based tests for multi-centroid AM initialization: for *any*
//! labeled dataset shape that satisfies the preconditions, initialization
//! must produce a fully-utilized, validly-labeled, normalized AM.

use hd_linalg::rng::{seeded, Normal};
use hd_linalg::Matrix;
use hdc::{encode_dataset, EncodedDataset, RandomProjectionEncoder};
use memhd::{init, InitMethod, MemhdConfig, MemhdModel};
use proptest::prelude::*;
use rand::Rng;

/// Generates a random labeled problem: `k` classes, `per_class` samples,
/// random class anchors in feature space.
fn random_problem(
    k: usize,
    per_class: usize,
    feature_dim: usize,
    seed: u64,
) -> (EncodedDataset, Vec<usize>) {
    let mut rng = seeded(seed);
    let noise = Normal::new(0.0, 0.1);
    let anchors: Vec<Vec<f32>> =
        (0..k).map(|_| (0..feature_dim).map(|_| rng.gen::<f32>()).collect()).collect();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (class, anchor) in anchors.iter().enumerate() {
        for _ in 0..per_class {
            rows.push(
                anchor
                    .iter()
                    .map(|&a| (a + noise.sample(&mut rng)).clamp(0.0, 1.0))
                    .collect::<Vec<f32>>(),
            );
            labels.push(class);
        }
    }
    let features = Matrix::from_rows(&rows).expect("consistent rows");
    let encoder = RandomProjectionEncoder::new(feature_dim, 64, seed ^ 0xabc);
    (encode_dataset(&encoder, &features).expect("encode"), labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both init methods always produce exactly C centroids, at least one
    /// per class, all rows unit-norm, for arbitrary (k, C, R) combinations
    /// satisfying the documented preconditions.
    #[test]
    fn init_always_fully_utilizes(
        k in 2usize..5,
        extra_cols in 0usize..10,
        per_class in 6usize..12,
        ratio in 0.2f32..=1.0,
        seed in 0u64..50,
    ) {
        let columns = k + extra_cols;
        prop_assume!(columns <= k * per_class);
        let (encoded, labels) = random_problem(k, per_class, 24, seed);
        let cfg = MemhdConfig::new(64, columns, k)
            .unwrap()
            .with_initial_cluster_ratio(ratio)
            .unwrap()
            .with_kmeans_max_iters(5)
            .with_seed(seed);

        for method in [InitMethod::Clustering, InitMethod::RandomSampling] {
            let am = match method {
                InitMethod::Clustering => init::clustering_init(&cfg, &encoded, &labels),
                InitMethod::RandomSampling => {
                    init::random_sampling_init(&cfg, &encoded, &labels)
                }
            }
            .expect("init succeeds under preconditions");
            prop_assert_eq!(am.num_centroids(), columns, "{:?}", method);
            for class in 0..k {
                prop_assert!(
                    !am.rows_of_class(class).is_empty(),
                    "{:?}: class {} lost all centroids",
                    method,
                    class
                );
            }
            for r in 0..am.num_centroids() {
                let norm = hd_linalg::l2_norm(am.centroid(r));
                prop_assert!((norm - 1.0).abs() < 1e-3, "row {} norm {}", r, norm);
            }
        }
    }

    /// The full fit pipeline never panics and always yields a model whose
    /// predictions are in-range, for arbitrary valid shapes.
    #[test]
    fn fit_yields_valid_predictions(
        k in 2usize..4,
        extra_cols in 0usize..6,
        seed in 0u64..20,
    ) {
        let columns = k + extra_cols;
        let per_class = 8usize;
        prop_assume!(columns <= k * per_class);
        let mut rng = seeded(seed);
        let noise = Normal::new(0.0, 0.1);
        let anchors: Vec<Vec<f32>> =
            (0..k).map(|_| (0..16).map(|_| rng.gen::<f32>()).collect()).collect();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (class, anchor) in anchors.iter().enumerate() {
            for _ in 0..per_class {
                rows.push(
                    anchor
                        .iter()
                        .map(|&a| (a + noise.sample(&mut rng)).clamp(0.0, 1.0))
                        .collect::<Vec<f32>>(),
                );
                labels.push(class);
            }
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let cfg = MemhdConfig::new(48, columns, k)
            .unwrap()
            .with_epochs(2)
            .with_kmeans_max_iters(5)
            .with_seed(seed);
        let model = MemhdModel::fit(&cfg, &features, &labels).expect("fit");
        let preds = model.predict_batch(&features).expect("predict");
        for p in preds {
            prop_assert!(p < k);
        }
    }
}
