//! The end-to-end MEMHD model (paper Fig. 2).

use crate::config::{InitMethod, MemhdConfig};
use crate::error::{MemhdError, Result};
use crate::init;
use crate::memory::MemoryReport;
use crate::train::{quantization_aware_train, TrainOptions, TrainingHistory};
use hd_linalg::rng::derive_seed;
use hd_linalg::{BitVector, CascadePlan, Matrix, QueryBatch};
use hdc::{encode_dataset, BinaryAm, EncodedDataset, Encoder, FloatAm, RandomProjectionEncoder};

/// A trained MEMHD classifier: binary projection encoder plus fully-utilized
/// multi-centroid binary associative memory.
///
/// Construct with [`MemhdModel::fit`] (raw features) or
/// [`MemhdModel::fit_encoded`] (pre-encoded hypervectors, useful when
/// sweeping AM shapes over one encoding as in the paper's Fig. 4 heatmap).
#[derive(Debug, Clone)]
pub struct MemhdModel {
    config: MemhdConfig,
    encoder: RandomProjectionEncoder,
    fp_am: FloatAm,
    binary_am: BinaryAm,
    history: TrainingHistory,
}

impl MemhdModel {
    /// Reassembles a model from its parts (used by deserialization; the
    /// training history of a reloaded model starts empty).
    pub(crate) fn from_parts(
        config: MemhdConfig,
        encoder: RandomProjectionEncoder,
        fp_am: FloatAm,
        binary_am: BinaryAm,
        history: TrainingHistory,
    ) -> Self {
        MemhdModel { config, encoder, fp_am, binary_am, history }
    }

    /// Trains a model on raw feature rows (values expected in `[0, 1]`)
    /// with labels in `0..config.num_classes()`.
    ///
    /// Runs the full pipeline: projection encoding → initialization
    /// (clustering or random sampling per the config) → 1-bit quantization
    /// → quantization-aware iterative learning.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidData`] for inconsistent inputs and
    /// propagates substrate failures.
    pub fn fit(config: &MemhdConfig, features: &Matrix, labels: &[usize]) -> Result<Self> {
        let encoder = RandomProjectionEncoder::new(
            features.cols(),
            config.dim(),
            derive_seed(config.seed(), 0x656e63), // "enc"
        );
        let encoded = encode_dataset(&encoder, features).map_err(MemhdError::Hdc)?;
        Self::fit_encoded(config, encoder, &encoded, labels)
    }

    /// Trains on an already-encoded dataset with the encoder that produced
    /// it. The encoder's dimensionality must equal `config.dim()`.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidConfig`] on a dimension mismatch plus
    /// the same errors as [`MemhdModel::fit`].
    pub fn fit_encoded(
        config: &MemhdConfig,
        encoder: RandomProjectionEncoder,
        encoded: &EncodedDataset,
        labels: &[usize],
    ) -> Result<Self> {
        Self::fit_encoded_with_eval(config, encoder, encoded, labels, None)
    }

    /// Like [`MemhdModel::fit_encoded`] but additionally evaluates a
    /// held-out set at the end of every epoch, recording the accuracy in
    /// the training history (used for the paper's Fig. 5 convergence
    /// curves).
    ///
    /// # Errors
    ///
    /// Same as [`MemhdModel::fit_encoded`].
    pub fn fit_encoded_with_eval(
        config: &MemhdConfig,
        encoder: RandomProjectionEncoder,
        encoded: &EncodedDataset,
        labels: &[usize],
        eval: Option<(&[BitVector], &[usize])>,
    ) -> Result<Self> {
        if encoder.dim() != config.dim() {
            return Err(MemhdError::InvalidConfig {
                parameter: "dim",
                reason: format!(
                    "encoder dimensionality {} != configured {}",
                    encoder.dim(),
                    config.dim()
                ),
            });
        }
        if encoded.dim() != config.dim() {
            return Err(MemhdError::InvalidConfig {
                parameter: "dim",
                reason: format!(
                    "encoded dimensionality {} != configured {}",
                    encoded.dim(),
                    config.dim()
                ),
            });
        }

        let mut fp_am = match config.init_method() {
            InitMethod::Clustering => init::clustering_init(config, encoded, labels)?,
            InitMethod::RandomSampling => init::random_sampling_init(config, encoded, labels)?,
        };

        let (binary_am, history) = quantization_aware_train(
            &mut fp_am,
            encoded,
            labels,
            config.learning_rate(),
            config.epochs(),
            derive_seed(config.seed(), 0x747261), // "tra"
            TrainOptions { eval, stop_on_zero_updates: true },
        )?;

        Ok(MemhdModel { config: config.clone(), encoder, fp_am, binary_am, history })
    }

    /// Assembles a model from independently produced parts — an encoder,
    /// a floating-point shadow AM, and its quantized binary AM — without
    /// running the training pipeline. This is the import path for
    /// externally trained or hand-constructed memories (the bench
    /// harness uses it to wrap synthetic AMs); the assembled model
    /// behaves exactly like a fitted one, with an empty training
    /// history.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidConfig`] when the parts disagree
    /// with the config or each other: encoder/AM dimensionality vs.
    /// `config.dim()`, centroid count vs. `config.columns()`, class
    /// count vs. `config.num_classes()`, or FP/binary class labels that
    /// differ.
    pub fn assemble(
        config: MemhdConfig,
        encoder: RandomProjectionEncoder,
        fp_am: FloatAm,
        binary_am: BinaryAm,
    ) -> Result<Self> {
        let check = |parameter: &'static str, expected: usize, found: usize| {
            if expected != found {
                return Err(MemhdError::InvalidConfig {
                    parameter,
                    reason: format!("configured {expected}, supplied {found}"),
                });
            }
            Ok(())
        };
        check("dim", config.dim(), encoder.dim())?;
        check("dim", config.dim(), fp_am.dim())?;
        check("dim", config.dim(), binary_am.dim())?;
        check("columns", config.columns(), fp_am.num_centroids())?;
        check("columns", config.columns(), binary_am.num_centroids())?;
        check("num_classes", config.num_classes(), fp_am.num_classes())?;
        check("num_classes", config.num_classes(), binary_am.num_classes())?;
        if fp_am.class_labels() != binary_am.class_labels() {
            return Err(MemhdError::InvalidConfig {
                parameter: "columns",
                reason: "FP and binary AM class labels disagree".into(),
            });
        }
        Ok(MemhdModel::from_parts(
            config,
            encoder,
            fp_am,
            binary_am,
            crate::train::TrainingHistory::default(),
        ))
    }

    /// Continues quantization-aware training on additional labeled data —
    /// the "few-shot" adaptation path: refine an already-deployed model
    /// with new samples without re-running initialization.
    ///
    /// The new data is encoded with the model's existing encoder, the FP
    /// shadow AM picks up where training left off, and the binary AM is
    /// replaced by the best snapshot of the refinement run. Returns the
    /// refinement history (also appended to [`MemhdModel::history`] with
    /// continued epoch numbering).
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidData`] for inconsistent inputs and
    /// propagates substrate failures.
    pub fn refine(
        &mut self,
        features: &Matrix,
        labels: &[usize],
        epochs: usize,
    ) -> Result<TrainingHistory> {
        let encoded = encode_dataset(&self.encoder, features).map_err(MemhdError::Hdc)?;
        let (binary_am, history) = quantization_aware_train(
            &mut self.fp_am,
            &encoded,
            labels,
            self.config.learning_rate(),
            epochs,
            derive_seed(self.config.seed(), 0x726566), // "ref"
            TrainOptions { eval: None, stop_on_zero_updates: true },
        )?;
        self.binary_am = binary_am;
        self.history.append_continued(&history);
        Ok(history)
    }

    /// Encodes one feature vector and classifies it with a single
    /// associative search.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::Hdc`] if the feature width does not match the
    /// encoder.
    pub fn predict(&self, features: &[f32]) -> Result<usize> {
        let hb = self.encoder.encode_binary(features).map_err(MemhdError::Hdc)?;
        self.binary_am.classify(&hb).map_err(MemhdError::Hdc)
    }

    /// Classifies every row of `features` — encodes into a packed
    /// [`hd_linalg::QueryBatch`] and answers all queries with one batched
    /// associative sweep. This is the preferred inference entry point.
    ///
    /// # Errors
    ///
    /// Same as [`MemhdModel::predict`].
    pub fn predict_batch(&self, features: &Matrix) -> Result<Vec<usize>> {
        if features.rows() == 0 {
            return Ok(Vec::new());
        }
        let batch = self.encoder.encode_binary_batch(features).map_err(MemhdError::Hdc)?;
        self.binary_am.classify_batch(&batch).map_err(MemhdError::Hdc)
    }

    /// The k best classes per row of `features`, ordered by descending
    /// associative-search score (centroid ties break toward the lower
    /// row, and a class repeats when several of its centroids place).
    /// `predict_topk(features, 1)` agrees with
    /// [`MemhdModel::predict_batch`] query for query; larger `k` serves
    /// rankers and top-k-accuracy evaluation. `k` is clamped to the
    /// centroid count.
    ///
    /// # Errors
    ///
    /// Same as [`MemhdModel::predict`], plus [`MemhdError::Hdc`] for
    /// `k == 0`.
    pub fn predict_topk(&self, features: &Matrix, k: usize) -> Result<Vec<Vec<usize>>> {
        // Validate k before the empty-batch shortcut, mirroring the
        // cascade entry points' plan validation.
        if k == 0 {
            return Err(MemhdError::Hdc(hdc::HdcError::Linalg(hd_linalg::LinalgError::Empty {
                op: "MemhdModel::predict_topk",
            })));
        }
        if features.rows() == 0 {
            return Ok(Vec::new());
        }
        let batch = self.encoder.encode_binary_batch(features).map_err(MemhdError::Hdc)?;
        self.binary_am.classify_batch_topk(&batch, k).map_err(MemhdError::Hdc)
    }

    /// Like [`MemhdModel::predict_batch`] but answers the associative
    /// searches through the progressive-precision cascade: a dimension
    /// prefix is scored for every centroid and provably-losing centroids
    /// are pruned before the remaining dimensions are spent. Predictions
    /// are bit-identical to [`MemhdModel::predict_batch`]; only the
    /// activation cost differs (see [`hd_linalg::CascadeStats`]).
    ///
    /// # Errors
    ///
    /// Same as [`MemhdModel::predict_batch`], plus
    /// [`MemhdError::Hdc`] when the plan dimensionality differs from the
    /// model's.
    pub fn predict_batch_cascade(
        &self,
        features: &Matrix,
        plan: &CascadePlan,
    ) -> Result<Vec<usize>> {
        // Validate the plan before the empty-batch shortcut: a
        // misconfigured plan must surface even when the first batch
        // happens to be empty.
        if plan.dim() != self.binary_am.dim() {
            return Err(MemhdError::Hdc(hdc::HdcError::DimensionMismatch {
                expected: self.binary_am.dim(),
                found: plan.dim(),
            }));
        }
        if features.rows() == 0 {
            return Ok(Vec::new());
        }
        let batch = self.encoder.encode_binary_batch(features).map_err(MemhdError::Hdc)?;
        self.predict_encoded_batch_cascade(&batch, plan)
    }

    /// The encoded-query slice of [`MemhdModel::predict_batch_cascade`]:
    /// classifies pre-binarized hypervectors through the cascade,
    /// skipping re-encoding — the fast path for sweeps and repeated-batch
    /// loops over one encoding (the [`MemhdModel::evaluate_encoded`]
    /// convention). The plan's derived artifacts are cached on the binary
    /// AM, so a loop of batches pays the bound derivation once, not per
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::Hdc`] if the batch or plan dimensionality
    /// differs from the model's.
    pub fn predict_encoded_batch_cascade(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
    ) -> Result<Vec<usize>> {
        self.binary_am.classify_batch_cascade(batch, plan).map_err(MemhdError::Hdc)
    }

    /// Auto-tunes a cascade stage plan for this model from a sample of
    /// real feature vectors: the sample is encoded with the model's
    /// encoder and handed to [`hdc::BinaryAm::tuned_cascade_plan`], so
    /// the returned plan reflects both the trained AM's popcount profile
    /// and the traffic the deployment will actually see. Use the result
    /// with [`MemhdModel::predict_batch_cascade`].
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidData`] for an empty sample and
    /// [`MemhdError::Hdc`] if the feature width differs from the
    /// encoder's.
    pub fn tuned_cascade_plan(&self, features: &Matrix) -> Result<CascadePlan> {
        if features.rows() == 0 {
            return Err(MemhdError::InvalidData {
                reason: "cascade plan tuning needs a non-empty feature sample".into(),
            });
        }
        let batch = self.encoder.encode_binary_batch(features).map_err(MemhdError::Hdc)?;
        self.binary_am.tuned_cascade_plan(&batch).map_err(MemhdError::Hdc)
    }

    /// Accuracy on a labeled feature set.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidData`] on a length mismatch plus
    /// prediction errors.
    pub fn evaluate(&self, features: &Matrix, labels: &[usize]) -> Result<f64> {
        if features.rows() != labels.len() || labels.is_empty() {
            return Err(MemhdError::InvalidData {
                reason: format!("{} rows vs {} labels", features.rows(), labels.len()),
            });
        }
        let preds = self.predict_batch(features)?;
        Ok(hd_linalg::stats::accuracy(&preds, labels))
    }

    /// Accuracy on pre-binarized queries (avoids re-encoding in sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::Hdc`] on dimension mismatches.
    pub fn evaluate_encoded(&self, queries: &[BitVector], labels: &[usize]) -> Result<f64> {
        hdc::train::evaluate(&self.binary_am, queries, labels).map_err(MemhdError::Hdc)
    }

    /// The configuration this model was trained with.
    pub fn config(&self) -> &MemhdConfig {
        &self.config
    }

    /// The binary projection encoder (the EM mapped onto IMC arrays).
    pub fn encoder(&self) -> &RandomProjectionEncoder {
        &self.encoder
    }

    /// The floating-point shadow AM (training state).
    pub fn float_am(&self) -> &FloatAm {
        &self.fp_am
    }

    /// The quantized associative memory used for inference.
    pub fn binary_am(&self) -> &BinaryAm {
        &self.binary_am
    }

    /// The training trajectory, including the epoch-0 snapshot.
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// Memory requirements per Table I: EM `f × D` bits, AM `C × D` bits.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport::new(self.encoder.memory_bits(), self.binary_am.memory_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::{seeded, Normal};

    fn toy_features(per_class: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = seeded(seed);
        let noise = Normal::new(0.0, 0.06);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for s in 0..per_class {
                let mode = s % 2;
                let row: Vec<f32> = (0..12)
                    .map(|j| {
                        let hot = j / 4 == class;
                        let base = if hot { 0.8 } else { 0.2 };
                        let shift = if hot && (j % 2 == mode) { 0.2 } else { 0.0 };
                        (base - shift + noise.sample(&mut rng)).clamp(0.0, 1.0)
                    })
                    .collect();
                rows.push(row);
                labels.push(class);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fit_and_predict_end_to_end() {
        let (x, y) = toy_features(20, 1);
        let cfg = MemhdConfig::new(256, 9, 3).unwrap().with_epochs(10).with_seed(3);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let acc = model.evaluate(&x, &y).unwrap();
        assert!(acc > 0.8, "train accuracy {acc}");
        assert_eq!(model.binary_am().num_centroids(), 9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = toy_features(10, 2);
        let cfg = MemhdConfig::new(128, 6, 3).unwrap().with_epochs(3).with_seed(7);
        let a = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let b = MemhdModel::fit(&cfg, &x, &y).unwrap();
        assert_eq!(a.binary_am().as_bit_matrix(), b.binary_am().as_bit_matrix());
        assert_eq!(a.history(), b.history());
    }

    #[test]
    fn topk_predictions_rank_classes() {
        let (x, y) = toy_features(15, 13);
        let cfg = MemhdConfig::new(256, 9, 3).unwrap().with_epochs(5).with_seed(8);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let top1 = model.predict_topk(&x, 1).unwrap();
        let exact = model.predict_batch(&x).unwrap();
        assert_eq!(top1.iter().map(|t| t[0]).collect::<Vec<_>>(), exact);
        assert!(top1.iter().all(|t| t.len() == 1));
        // k is clamped to the centroid count; the slate is the per-row
        // class sequence of the AM's own full top-k ranking.
        let slates = model.predict_topk(&x, 12).unwrap();
        let batch = model.encoder().encode_binary_batch(&x).unwrap();
        let want = model.binary_am().classify_batch_topk(&batch, 12).unwrap();
        assert_eq!(slates, want);
        assert!(slates.iter().all(|t| t.len() == 9));
        // Top-k accuracy is monotone in k and hits 100% at k == rows.
        let hit_at = |k: usize| {
            let pred = model.predict_topk(&x, k).unwrap();
            pred.iter().zip(&y).filter(|(slate, &label)| slate.contains(&label)).count() as f64
                / y.len() as f64
        };
        assert!(hit_at(1) <= hit_at(3));
        assert_eq!(hit_at(9), 1.0);
        assert!(model.predict_topk(&x, 0).is_err());
        assert!(model.predict_topk(&Matrix::zeros(0, x.cols()), 3).unwrap().is_empty());
    }

    #[test]
    fn cascade_predictions_match_exact() {
        let (x, y) = toy_features(15, 11);
        let cfg = MemhdConfig::new(256, 9, 3).unwrap().with_epochs(5).with_seed(6);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let exact = model.predict_batch(&x).unwrap();
        for plan in [
            CascadePlan::exact(256),
            CascadePlan::prefix(256, 64).unwrap(),
            CascadePlan::uniform(256, 4).unwrap(),
        ] {
            assert_eq!(model.predict_batch_cascade(&x, &plan).unwrap(), exact, "{plan:?}");
        }
        // A plan of the wrong dimensionality is rejected — even when
        // the feature batch is empty.
        assert!(model.predict_batch_cascade(&x, &CascadePlan::exact(128)).is_err());
        let empty_bad = Matrix::zeros(0, x.cols());
        assert!(model.predict_batch_cascade(&empty_bad, &CascadePlan::exact(128)).is_err());
        // An empty feature set short-circuits like predict_batch.
        let empty = Matrix::zeros(0, x.cols());
        assert!(model.predict_batch_cascade(&empty, &CascadePlan::exact(256)).unwrap().is_empty());
    }

    #[test]
    fn memory_report_formulas() {
        let (x, y) = toy_features(10, 3);
        let cfg = MemhdConfig::new(128, 6, 3).unwrap().with_epochs(1);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let r = model.memory_report();
        assert_eq!(r.em_bits, 12 * 128); // f × D
        assert_eq!(r.am_bits, 6 * 128); // C × D
    }

    #[test]
    fn fit_encoded_dim_mismatch_rejected() {
        let (x, y) = toy_features(10, 4);
        let enc = RandomProjectionEncoder::new(12, 64, 1);
        let encoded = encode_dataset(&enc, &x).unwrap();
        let cfg = MemhdConfig::new(128, 6, 3).unwrap();
        assert!(matches!(
            MemhdModel::fit_encoded(&cfg, enc, &encoded, &y),
            Err(MemhdError::InvalidConfig { parameter: "dim", .. })
        ));
    }

    #[test]
    fn evaluate_validates_lengths() {
        let (x, y) = toy_features(10, 5);
        let cfg = MemhdConfig::new(128, 6, 3).unwrap().with_epochs(1);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        assert!(model.evaluate(&x, &y[..5]).is_err());
    }

    #[test]
    fn random_sampling_init_also_trains() {
        let (x, y) = toy_features(15, 6);
        let cfg = MemhdConfig::new(256, 9, 3)
            .unwrap()
            .with_epochs(10)
            .with_init_method(InitMethod::RandomSampling)
            .with_seed(5);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let acc = model.evaluate(&x, &y).unwrap();
        assert!(acc > 0.6, "train accuracy {acc}");
    }

    #[test]
    fn refine_continues_training() {
        let (x, y) = toy_features(15, 8);
        let cfg = MemhdConfig::new(256, 9, 3).unwrap().with_epochs(3).with_seed(4);
        let mut model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let before_records = model.history().records().len();
        let before_acc = model.evaluate(&x, &y).unwrap();

        // Refine on fresh samples from the same distribution.
        let (x2, y2) = toy_features(10, 9);
        let refinement = model.refine(&x2, &y2, 5).unwrap();
        assert!(refinement.records().len() > 1);
        // History extended with continued epoch numbers.
        let records = model.history().records();
        assert!(records.len() > before_records);
        for pair in records.windows(2) {
            assert!(pair[1].epoch > pair[0].epoch, "epochs must stay monotone");
        }
        // Refinement never breaks the model (best-snapshot semantics).
        let after_acc = model.evaluate(&x, &y).unwrap();
        assert!(after_acc >= before_acc - 0.2, "before {before_acc} after {after_acc}");
    }

    #[test]
    fn tuned_plan_and_encoded_cascade_match_exact() {
        let (x, y) = toy_features(15, 12);
        let cfg = MemhdConfig::new(256, 9, 3).unwrap().with_epochs(5).with_seed(8);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let plan = model.tuned_cascade_plan(&x).unwrap();
        assert_eq!(plan.dim(), 256);
        let exact = model.predict_batch(&x).unwrap();
        assert_eq!(model.predict_batch_cascade(&x, &plan).unwrap(), exact);
        // The encoded-query slice agrees with the feature-level path.
        let encoded = model.encoder().encode_binary_batch(&x).unwrap();
        assert_eq!(model.predict_encoded_batch_cascade(&encoded, &plan).unwrap(), exact);
        // An empty tuning sample is rejected.
        let empty = Matrix::zeros(0, x.cols());
        assert!(matches!(model.tuned_cascade_plan(&empty), Err(MemhdError::InvalidData { .. })));
    }

    #[test]
    fn assemble_wraps_pretrained_parts() {
        let (x, y) = toy_features(10, 13);
        let cfg = MemhdConfig::new(128, 6, 3).unwrap().with_epochs(1).with_seed(9);
        let trained = MemhdModel::fit(&cfg, &x, &y).unwrap();
        let rebuilt = MemhdModel::assemble(
            trained.config().clone(),
            trained.encoder().clone(),
            trained.float_am().clone(),
            trained.binary_am().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt.predict_batch(&x).unwrap(), trained.predict_batch(&x).unwrap());
        assert!(rebuilt.history().records().is_empty(), "assembled history starts empty");
        // Mismatched parts are rejected with the offending parameter.
        let narrow_cfg = MemhdConfig::new(64, 6, 3).unwrap();
        assert!(matches!(
            MemhdModel::assemble(
                narrow_cfg,
                trained.encoder().clone(),
                trained.float_am().clone(),
                trained.binary_am().clone(),
            ),
            Err(MemhdError::InvalidConfig { parameter: "dim", .. })
        ));
        let fat_cfg = MemhdConfig::new(128, 9, 3).unwrap();
        assert!(matches!(
            MemhdModel::assemble(
                fat_cfg,
                trained.encoder().clone(),
                trained.float_am().clone(),
                trained.binary_am().clone(),
            ),
            Err(MemhdError::InvalidConfig { parameter: "columns", .. })
        ));
    }

    #[test]
    fn history_has_epoch_zero() {
        let (x, y) = toy_features(10, 7);
        let cfg = MemhdConfig::new(128, 6, 3).unwrap().with_epochs(2);
        let model = MemhdModel::fit(&cfg, &x, &y).unwrap();
        assert_eq!(model.history().records()[0].epoch, 0);
    }
}
