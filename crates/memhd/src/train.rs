//! Quantization-aware iterative learning for the multi-centroid AM
//! (paper §III-C, Fig. 2c).
//!
//! Each epoch walks the training set (in a seeded shuffle) and, for every
//! sample, runs an associative search of the **binary** query against the
//! **binary** AM — the exact comparison inference performs. On a
//! misprediction the update targets are chosen per the paper:
//!
//! * **Predicted side (Eq. 4):** the winning centroid itself — the
//!   `(class, sub-label)` pair with the globally highest similarity.
//! * **True side (Eq. 5):** among the true class's centroids, the one most
//!   similar to the query, so each sample consistently trains "its" mode.
//!
//! The floating-point shadow AM is then updated (Eq. 6):
//! `Cⁿ_l += α·Ĥ`, `Cᵐ_l' −= α·Ĥ`, where `Ĥ` is the sample hypervector
//! scaled to unit norm so one update moves every centroid by a comparable
//! amount. After the epoch the FP AM is re-normalized per centroid
//! (§III-C-4) and re-binarized at its mean to refresh the binary AM.

use crate::error::Result;
use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::{BitVector, QueryBatch};
use hdc::{BinaryAm, EncodedDataset, FloatAm};
use rand::Rng;

/// One epoch's worth of training telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch number; 0 is the pre-training state of the initialized AM.
    pub epoch: usize,
    /// Mispredictions (= centroid update pairs) during the epoch. Zero for
    /// the pre-training record.
    pub updates: usize,
    /// Training accuracy of the binary AM *at the end of* the epoch.
    pub train_accuracy: f64,
    /// Accuracy on the optional held-out set at the end of the epoch.
    pub eval_accuracy: Option<f64>,
}

/// The full training trajectory (Fig. 5 plots these curves).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingHistory {
    records: Vec<EpochRecord>,
}

impl TrainingHistory {
    /// All per-epoch records, starting with the epoch-0 (pre-training)
    /// snapshot.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Number of *training* epochs executed (excludes the epoch-0 record).
    pub fn epochs_run(&self) -> usize {
        self.records.len().saturating_sub(1)
    }

    /// Accuracy of the initialized AM before any updates — the quantity
    /// Fig. 5 compares between clustering and random-sampling init.
    pub fn initial_accuracy(&self) -> Option<f64> {
        self.records.first().map(|r| r.train_accuracy)
    }

    /// Final training accuracy.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.records.last().map(|r| r.train_accuracy)
    }

    /// Appends another history (e.g. from [`refinement`]) with epoch
    /// numbers continued after this history's last epoch. The appended
    /// history's epoch-0 snapshot is skipped — it describes the same state
    /// as this history's final record.
    ///
    /// [`refinement`]: crate::MemhdModel::refine
    pub fn append_continued(&mut self, other: &TrainingHistory) {
        let offset = self.records.last().map(|r| r.epoch).unwrap_or(0);
        for r in other.records.iter().skip(usize::from(!self.records.is_empty())) {
            self.records.push(EpochRecord { epoch: offset + r.epoch, ..*r });
        }
    }

    /// The first epoch whose training accuracy is within `tolerance` of
    /// the best observed — a convergence-speed proxy.
    pub fn convergence_epoch(&self, tolerance: f64) -> Option<usize> {
        let best = self.records.iter().map(|r| r.train_accuracy).fold(f64::NEG_INFINITY, f64::max);
        self.records.iter().find(|r| r.train_accuracy >= best - tolerance).map(|r| r.epoch)
    }
}

/// Options for [`quantization_aware_train`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainOptions<'a> {
    /// Optional held-out queries evaluated at the end of every epoch.
    pub eval: Option<(&'a [BitVector], &'a [usize])>,
    /// Stop early when an epoch performs zero updates.
    pub stop_on_zero_updates: bool,
}

fn measure(am: &BinaryAm, batch: &QueryBatch, labels: &[usize]) -> Result<f64> {
    hdc::train::evaluate_batch(am, batch, labels).map_err(crate::MemhdError::Hdc)
}

/// Runs quantization-aware iterative learning for up to `epochs` epochs.
///
/// `fp_am` is updated in place; the returned [`BinaryAm`] is the quantized
/// snapshot with the **best training accuracy** across the run (including
/// the pre-training state). Pass the training-set encodings in
/// `encoded`/`labels`.
///
/// # Errors
///
/// Returns an error if the encoded set, labels, and AM disagree on shape
/// or labeling.
pub fn quantization_aware_train(
    fp_am: &mut FloatAm,
    encoded: &EncodedDataset,
    labels: &[usize],
    alpha: f32,
    epochs: usize,
    seed: u64,
    options: TrainOptions<'_>,
) -> Result<(BinaryAm, TrainingHistory)> {
    if encoded.len() != labels.len() || encoded.is_empty() {
        return Err(crate::MemhdError::InvalidData {
            reason: format!("{} samples vs {} labels", encoded.len(), labels.len()),
        });
    }

    // Update vectors are *centered* (their mean removed) and unit-norm
    // scaled. Raw projection hypervectors carry a large common-mode
    // component (every entry is a sum of non-negative features), and the
    // informative signal is the variation around that mean — which is also
    // exactly what the mean-threshold binarization keeps. Updating with the
    // raw vector would shift whole centroids uniformly and saturate the
    // global-mean quantizer; updating with the centered vector moves only
    // the bits.
    let centered: Vec<Vec<f32>> = (0..encoded.len())
        .map(|i| {
            let row = encoded.fp.row(i);
            let mean = hd_linalg::mean(row);
            let mut v: Vec<f32> = row.iter().map(|x| x - mean).collect();
            hd_linalg::normalize_l2(&mut v);
            v
        })
        .collect();

    // Pack the training (and optional eval) queries once; every epoch's
    // searches and accuracy measurements then run the batched kernel.
    let train_batch = encoded.to_query_batch().map_err(crate::MemhdError::Hdc)?;
    let eval_batch = match options.eval {
        Some((q, l)) => {
            if q.is_empty() || q.len() != l.len() {
                return Err(crate::MemhdError::InvalidData {
                    reason: format!("{} eval queries vs {} labels", q.len(), l.len()),
                });
            }
            Some((
                QueryBatch::from_vectors(q)
                    .map_err(|e| crate::MemhdError::InvalidData { reason: e.to_string() })?,
                l,
            ))
        }
        None => None,
    };

    let mut binary = fp_am.quantize();
    let mut history = TrainingHistory::default();
    // Epoch-loop score scratch, allocated once and reused.
    let mut scores = hd_linalg::ScoreMatrix::zeros(0, 0);

    // Epoch-0 snapshot: accuracy of the initialized AM.
    let initial_accuracy = measure(&binary, &train_batch, labels)?;
    history.records.push(EpochRecord {
        epoch: 0,
        updates: 0,
        train_accuracy: initial_accuracy,
        eval_accuracy: match &eval_batch {
            Some((q, l)) => Some(measure(&binary, q, l)?),
            None => None,
        },
    });

    // The returned AM is the best-training-accuracy quantized snapshot:
    // the paper trains for a fixed 100 epochs, and keeping the best
    // snapshot makes the fixed horizon robust to late-epoch oscillation.
    let mut best = (binary.clone(), initial_accuracy);

    let mut order: Vec<usize> = (0..encoded.len()).collect();
    for epoch in 1..=epochs {
        // Deterministic per-epoch shuffle.
        let mut rng = seeded(derive_seed(seed, 0x7472_0000 | epoch as u64));
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }

        // The binary AM is constant across the epoch (updates land on the
        // FP shadow AM; re-quantization happens at the epoch boundary), so
        // every sample's associative search batches into one tiled sweep
        // into the reused score scratch. Updates then replay in the
        // shuffled order.
        binary.scores_batch_into(&train_batch, &mut scores).map_err(crate::MemhdError::Hdc)?;

        let mut updates = 0usize;
        for &i in &order {
            let label = labels[i];
            let sample_scores = scores.scores(i);

            // Global argmax (Eq. 4): ties toward the lower row.
            let (pred_row, _) = hd_linalg::argmax_u32(sample_scores);
            if binary.class_of(pred_row) == label {
                continue;
            }

            // True-side target (Eq. 5): best centroid within the class.
            let true_rows = binary.rows_of_class(label);
            let true_row = *true_rows
                .iter()
                .max_by_key(|&&r| (sample_scores[r], std::cmp::Reverse(r)))
                .expect("every class has at least one centroid");

            let h = &centered[i];
            fp_am.update(true_row, alpha, h).map_err(crate::MemhdError::Hdc)?;
            fp_am.update(pred_row, -alpha, h).map_err(crate::MemhdError::Hdc)?;
            updates += 1;
        }

        // §III-C-4: center + normalize every centroid, then refresh the
        // binary AM by re-quantizing.
        fp_am.center_and_normalize();
        binary = fp_am.quantize();

        let train_accuracy = measure(&binary, &train_batch, labels)?;
        history.records.push(EpochRecord {
            epoch,
            updates,
            train_accuracy,
            eval_accuracy: match &eval_batch {
                Some((q, l)) => Some(measure(&binary, q, l)?),
                None => None,
            },
        });
        if train_accuracy > best.1 {
            best = (binary.clone(), train_accuracy);
        }

        if options.stop_on_zero_updates && updates == 0 {
            break;
        }
    }

    Ok((best.0, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemhdConfig;
    use crate::init::clustering_init;
    use hd_linalg::rng::Normal;
    use hd_linalg::Matrix;
    use hdc::{encode_dataset, RandomProjectionEncoder};

    fn toy(per_class: usize, seed: u64) -> (EncodedDataset, Vec<usize>) {
        let mut rng = seeded(seed);
        let noise = Normal::new(0.0, 0.06);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for s in 0..per_class {
                let mode = s % 2;
                let row: Vec<f32> = (0..12)
                    .map(|j| {
                        let hot = j / 4 == class;
                        let base = if hot { 0.8 } else { 0.2 };
                        let shift = if hot && (j % 2 == mode) { 0.2 } else { 0.0 };
                        (base - shift + noise.sample(&mut rng)).clamp(0.0, 1.0)
                    })
                    .collect();
                rows.push(row);
                labels.push(class);
            }
        }
        let feats = Matrix::from_rows(&rows).unwrap();
        let enc = RandomProjectionEncoder::new(12, 256, 7);
        (encode_dataset(&enc, &feats).unwrap(), labels)
    }

    #[test]
    fn training_improves_or_holds_accuracy() {
        let (encoded, labels) = toy(25, 1);
        let cfg = MemhdConfig::new(256, 9, 3).unwrap().with_seed(2);
        let mut fp = clustering_init(&cfg, &encoded, &labels).unwrap();
        let (_bam, hist) = quantization_aware_train(
            &mut fp,
            &encoded,
            &labels,
            0.05,
            15,
            2,
            TrainOptions::default(),
        )
        .unwrap();
        let initial = hist.initial_accuracy().unwrap();
        let best =
            hist.records().iter().map(|r| r.train_accuracy).fold(f64::NEG_INFINITY, f64::max);
        assert!(best >= initial, "best {best} < initial {initial}");
        assert!(best > 0.8, "best accuracy {best}");
    }

    #[test]
    fn history_structure() {
        let (encoded, labels) = toy(10, 3);
        let cfg = MemhdConfig::new(256, 6, 3).unwrap().with_seed(1);
        let mut fp = clustering_init(&cfg, &encoded, &labels).unwrap();
        let (_bam, hist) = quantization_aware_train(
            &mut fp,
            &encoded,
            &labels,
            0.05,
            4,
            1,
            TrainOptions::default(),
        )
        .unwrap();
        assert_eq!(hist.records()[0].epoch, 0);
        assert_eq!(hist.records()[0].updates, 0);
        assert_eq!(hist.epochs_run(), 4);
        assert!(hist.convergence_epoch(0.0).is_some());
    }

    #[test]
    fn eval_set_recorded() {
        let (encoded, labels) = toy(10, 4);
        let cfg = MemhdConfig::new(256, 6, 3).unwrap().with_seed(1);
        let mut fp = clustering_init(&cfg, &encoded, &labels).unwrap();
        let (_bam, hist) = quantization_aware_train(
            &mut fp,
            &encoded,
            &labels,
            0.05,
            2,
            1,
            TrainOptions { eval: Some((&encoded.bin, &labels)), stop_on_zero_updates: false },
        )
        .unwrap();
        for r in hist.records() {
            let e = r.eval_accuracy.expect("eval recorded");
            assert!((r.train_accuracy - e).abs() < 1e-12, "eval==train when same set");
        }
    }

    #[test]
    fn early_stop_on_zero_updates() {
        let (encoded, labels) = toy(12, 5);
        // One centroid per class, trivially separable: converges quickly.
        let cfg = MemhdConfig::new(256, 3, 3).unwrap().with_seed(1);
        let mut fp = clustering_init(&cfg, &encoded, &labels).unwrap();
        let (_bam, hist) = quantization_aware_train(
            &mut fp,
            &encoded,
            &labels,
            0.05,
            50,
            1,
            TrainOptions { eval: None, stop_on_zero_updates: true },
        )
        .unwrap();
        if hist.records().iter().any(|r| r.epoch > 0 && r.updates == 0) {
            assert!(hist.epochs_run() < 50, "should have stopped early");
        }
    }

    #[test]
    fn updates_target_correct_rows() {
        // Hand-built scenario: 2 classes, 2 centroids each; the query is
        // closest to class 1's first centroid but labeled class 0.
        let centroids = vec![
            (0usize, vec![0.1f32, 0.1, 0.9, 0.9]),
            (0, vec![0.9, 0.9, 0.1, 0.1]),
            (1, vec![1.0, 1.0, 0.6, 0.2]),
            (1, vec![0.0, 0.0, 0.0, 1.0]),
        ];
        let mut fp = FloatAm::from_centroids(2, centroids).unwrap();
        let before = fp.as_matrix().clone();

        // Query strongly matching row 2 (class 1) but labeled class 0.
        let fp_q = vec![1.0f32, 1.0, 1.0, 0.0];
        let bin_q = BitVector::from_bools(&[true, true, true, false]);
        let encoded = EncodedDataset {
            fp: Matrix::from_rows(std::slice::from_ref(&fp_q)).unwrap(),
            bin: vec![bin_q],
        };
        let (_bam, hist) = quantization_aware_train(
            &mut fp,
            &encoded,
            &[0usize],
            0.5,
            1,
            0,
            TrainOptions::default(),
        )
        .unwrap();
        assert_eq!(hist.records()[1].updates, 1);

        // Row 2 (mispredicted winner) must have moved away from the query
        // and some class-0 row toward it. Updates and the epoch-end
        // normalization both operate in centered space (the mean component
        // carries no information after mean-threshold binarization), so
        // compare *centered* cosines: there the update is exactly
        // `row ∓ α·q̂` and the direction change is deterministic.
        fn centered_cos(a: &[f32], b: &[f32]) -> f32 {
            let center = |v: &[f32]| {
                let m = hd_linalg::mean(v);
                let mut c: Vec<f32> = v.iter().map(|x| x - m).collect();
                hd_linalg::normalize_l2(&mut c);
                c
            };
            hd_linalg::dot(&center(a), &center(b))
        }
        let q = &fp_q;
        assert!(
            centered_cos(fp.centroid(2), q) < centered_cos(before.row(2), q) - 1e-4,
            "mispredicted centroid did not move away from the query"
        );
        let gained =
            (0..2).any(|r| centered_cos(fp.centroid(r), q) > centered_cos(before.row(r), q) + 1e-4);
        assert!(gained, "no class-0 centroid moved toward the query");
    }

    #[test]
    fn append_continued_renumbers_epochs() {
        let mut a = TrainingHistory {
            records: vec![
                EpochRecord { epoch: 0, updates: 0, train_accuracy: 0.5, eval_accuracy: None },
                EpochRecord { epoch: 1, updates: 3, train_accuracy: 0.6, eval_accuracy: None },
            ],
        };
        let b = TrainingHistory {
            records: vec![
                EpochRecord { epoch: 0, updates: 0, train_accuracy: 0.6, eval_accuracy: None },
                EpochRecord { epoch: 1, updates: 2, train_accuracy: 0.7, eval_accuracy: None },
                EpochRecord { epoch: 2, updates: 1, train_accuracy: 0.8, eval_accuracy: None },
            ],
        };
        a.append_continued(&b);
        let epochs: Vec<usize> = a.records().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2, 3]);
        assert_eq!(a.final_accuracy(), Some(0.8));
        // Appending into an empty history keeps everything.
        let mut empty = TrainingHistory::default();
        empty.append_continued(&b);
        assert_eq!(empty.records().len(), 3);
        assert_eq!(empty.initial_accuracy(), Some(0.6));
    }

    #[test]
    fn rejects_mismatched_labels() {
        let (encoded, labels) = toy(5, 6);
        let cfg = MemhdConfig::new(256, 3, 3).unwrap();
        let mut fp = clustering_init(&cfg, &encoded, &labels).unwrap();
        let r = quantization_aware_train(
            &mut fp,
            &encoded,
            &labels[..3],
            0.05,
            1,
            0,
            TrainOptions::default(),
        );
        assert!(r.is_err());
    }
}
