//! MEMHD hyperparameter configuration.

use crate::error::{MemhdError, Result};

/// How the multi-centroid AM is seeded before quantization-aware learning
/// (paper §III-A and Fig. 5's ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitMethod {
    /// Clustering-based initialization (the paper's method): classwise
    /// k-means under dot similarity plus confusion-matrix-driven allocation
    /// of the remaining columns.
    Clustering,
    /// Random sampling: centroids are random training hypervectors, with
    /// columns distributed evenly across classes. The Fig. 5 baseline.
    RandomSampling,
}

/// Configuration for a [`crate::MemhdModel`].
///
/// The two structural hyperparameters mirror the target IMC array
/// (paper Fig. 1c): `dim` (`D`) should match the array's **rows** and
/// `columns` (`C`) its **columns**, e.g. `128×128` for a 128×128 array.
///
/// # Example
///
/// ```
/// use memhd::MemhdConfig;
///
/// # fn main() -> Result<(), memhd::MemhdError> {
/// let config = MemhdConfig::new(128, 128, 10)?
///     .with_initial_cluster_ratio(0.8)?
///     .with_learning_rate(0.05)?
///     .with_epochs(100)
///     .with_seed(1);
/// assert_eq!(config.dim(), 128);
/// assert_eq!(config.initial_clusters_per_class(), 10); // max(1, ⌊C·R/k⌋)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemhdConfig {
    dim: usize,
    columns: usize,
    num_classes: usize,
    initial_cluster_ratio: f32,
    learning_rate: f32,
    epochs: usize,
    allocation_rounds: usize,
    init_method: InitMethod,
    kmeans_max_iters: usize,
    seed: u64,
}

impl MemhdConfig {
    /// Creates a configuration for a `dim × columns` AM over `num_classes`
    /// classes, with the paper's default hyperparameters: `R = 0.8`,
    /// `α = 0.01`, 20 epochs, clustering-based initialization.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidConfig`] if any dimension is zero or
    /// `columns < num_classes` (every class needs at least one centroid).
    pub fn new(dim: usize, columns: usize, num_classes: usize) -> Result<Self> {
        if dim == 0 {
            return Err(MemhdError::InvalidConfig {
                parameter: "dim",
                reason: "must be positive".into(),
            });
        }
        if num_classes == 0 {
            return Err(MemhdError::InvalidConfig {
                parameter: "num_classes",
                reason: "must be positive".into(),
            });
        }
        if columns < num_classes {
            return Err(MemhdError::InvalidConfig {
                parameter: "columns",
                reason: format!(
                    "{columns} columns cannot represent {num_classes} classes \
                     (need at least one centroid per class)"
                ),
            });
        }
        Ok(MemhdConfig {
            dim,
            columns,
            num_classes,
            initial_cluster_ratio: 0.8,
            learning_rate: 0.01,
            epochs: 20,
            allocation_rounds: 4,
            init_method: InitMethod::Clustering,
            kmeans_max_iters: 25,
            seed: 0,
        })
    }

    /// Sets the initial cluster ratio `R` (§III-A-1): the fraction of the
    /// `C` columns seeded by classwise clustering before confusion-driven
    /// allocation distributes the rest.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidConfig`] unless `0 < ratio <= 1`.
    pub fn with_initial_cluster_ratio(mut self, ratio: f32) -> Result<Self> {
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(MemhdError::InvalidConfig {
                parameter: "initial_cluster_ratio",
                reason: format!("{ratio} outside (0, 1]"),
            });
        }
        self.initial_cluster_ratio = ratio;
        Ok(self)
    }

    /// Sets the learning rate `α` (§III-C-3; the paper uses 0.01–0.1).
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidConfig`] unless `rate` is positive and
    /// finite.
    pub fn with_learning_rate(mut self, rate: f32) -> Result<Self> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(MemhdError::InvalidConfig {
                parameter: "learning_rate",
                reason: format!("{rate} must be positive and finite"),
            });
        }
        self.learning_rate = rate;
        Ok(self)
    }

    /// Sets the number of quantization-aware training epochs (the paper
    /// trains for 100).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the initialization method (Fig. 5 compares the two).
    pub fn with_init_method(mut self, method: InitMethod) -> Self {
        self.init_method = method;
        self
    }

    /// Sets how many validate-allocate-recluster rounds distribute the
    /// remaining `C(1−R)` columns (§III-A-2). The paper repeats until no
    /// columns remain; batching the allocation into a fixed number of
    /// rounds bounds the number of full validation passes while preserving
    /// the miss-rate-driven distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MemhdError::InvalidConfig`] if `rounds == 0`.
    pub fn with_allocation_rounds(mut self, rounds: usize) -> Result<Self> {
        if rounds == 0 {
            return Err(MemhdError::InvalidConfig {
                parameter: "allocation_rounds",
                reason: "must be positive".into(),
            });
        }
        self.allocation_rounds = rounds;
        Ok(self)
    }

    /// Sets the Lloyd-iteration cap for each classwise k-means run.
    pub fn with_kmeans_max_iters(mut self, iters: usize) -> Self {
        self.kmeans_max_iters = iters;
        self
    }

    /// Sets the RNG seed. Everything downstream (projection matrix,
    /// clustering, epoch shuffles) derives from it, so a fixed seed makes
    /// the whole pipeline reproducible.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Hypervector dimensionality `D` (IMC array rows).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of centroids `C` (IMC array columns).
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Initial cluster ratio `R`.
    pub fn initial_cluster_ratio(&self) -> f32 {
        self.initial_cluster_ratio
    }

    /// Learning rate `α`.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Training epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Validate-allocate-recluster rounds.
    pub fn allocation_rounds(&self) -> usize {
        self.allocation_rounds
    }

    /// Initialization method.
    pub fn init_method(&self) -> InitMethod {
        self.init_method
    }

    /// Lloyd-iteration cap per classwise k-means run.
    pub fn kmeans_max_iters(&self) -> usize {
        self.kmeans_max_iters
    }

    /// RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Initial clusters per class: `n = max(1, ⌊C·R/k⌋)` (§III-A-1).
    pub fn initial_clusters_per_class(&self) -> usize {
        let n = (self.columns as f32 * self.initial_cluster_ratio) as usize / self.num_classes;
        n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MemhdConfig::new(128, 128, 10).unwrap();
        assert_eq!(c.initial_cluster_ratio(), 0.8);
        assert_eq!(c.learning_rate(), 0.01);
        assert_eq!(c.init_method(), InitMethod::Clustering);
    }

    #[test]
    fn initial_clusters_formula() {
        // 128 columns, R=0.8, k=10 -> floor(102.4 / 10) = 10
        let c = MemhdConfig::new(128, 128, 10).unwrap();
        assert_eq!(c.initial_clusters_per_class(), 10);
        // Small C with many classes clamps to 1.
        let c = MemhdConfig::new(64, 26, 26).unwrap();
        assert_eq!(c.initial_clusters_per_class(), 1);
        // R = 1.0, 128 cols, 26 classes -> floor(128/26) = 4
        let c = MemhdConfig::new(512, 128, 26).unwrap().with_initial_cluster_ratio(1.0).unwrap();
        assert_eq!(c.initial_clusters_per_class(), 4);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(MemhdConfig::new(0, 10, 2).is_err());
        assert!(MemhdConfig::new(64, 0, 2).is_err());
        assert!(MemhdConfig::new(64, 10, 0).is_err());
        assert!(MemhdConfig::new(64, 9, 10).is_err()); // C < k
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let c = MemhdConfig::new(64, 16, 4).unwrap();
        assert!(c.clone().with_initial_cluster_ratio(0.0).is_err());
        assert!(c.clone().with_initial_cluster_ratio(1.5).is_err());
        assert!(c.clone().with_learning_rate(0.0).is_err());
        assert!(c.clone().with_learning_rate(f32::NAN).is_err());
        assert!(c.clone().with_allocation_rounds(0).is_err());
        assert!(c.with_initial_cluster_ratio(1.0).is_ok());
    }

    #[test]
    fn builders_chain() {
        let c = MemhdConfig::new(256, 64, 8)
            .unwrap()
            .with_epochs(7)
            .with_seed(99)
            .with_kmeans_max_iters(5)
            .with_init_method(InitMethod::RandomSampling);
        assert_eq!(c.epochs(), 7);
        assert_eq!(c.seed(), 99);
        assert_eq!(c.kmeans_max_iters(), 5);
        assert_eq!(c.init_method(), InitMethod::RandomSampling);
    }
}
