//! Model persistence: a compact, versioned binary format for trained
//! MEMHD models.
//!
//! A deployed MEMHD model is two binary matrices (projection encoder and
//! quantized AM) plus the FP shadow AM (kept so [`MemhdModel::refine`]
//! works after reload) and the configuration. The format is self-contained
//! little-endian:
//!
//! ```text
//! magic  "MEMHDv1\0"                                  8 bytes
//! config dim, columns, num_classes, epochs,
//!        allocation_rounds, kmeans_max_iters          u32 × 6
//!        initial_cluster_ratio, learning_rate         f32 × 2
//!        init_method (0 = clustering, 1 = random)     u8
//!        seed                                         u64
//! encoder input_width u32, then D rows × ⌈f/64⌉ u64 words
//! am      centroids u32, then per row: class u32,
//!         ⌈D/64⌉ u64 words (binary), D f32 (shadow)
//! ```
//!
//! No external serialization crate is used — the format is a few dozen
//! lines and has no schema-evolution needs beyond the version magic.

use crate::config::{InitMethod, MemhdConfig};
use crate::error::{MemhdError, Result};
use crate::model::MemhdModel;
use crate::train::TrainingHistory;
use hd_linalg::{BitMatrix, BitVector};
use hdc::{BinaryAm, Encoder, FloatAm, RandomProjectionEncoder};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MEMHDv1\0";

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(MemhdError::InvalidData {
                reason: format!("model file truncated: wanted {n} bytes at offset {}", self.pos),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
}

/// Serializes a trained model to bytes.
pub fn to_bytes(model: &MemhdModel) -> Vec<u8> {
    let cfg = model.config();
    let encoder = model.encoder();
    let binary = model.binary_am();
    let shadow = model.float_am();
    let dim = cfg.dim();

    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, dim as u32);
    put_u32(&mut buf, cfg.columns() as u32);
    put_u32(&mut buf, cfg.num_classes() as u32);
    put_u32(&mut buf, cfg.epochs() as u32);
    put_u32(&mut buf, cfg.allocation_rounds() as u32);
    put_u32(&mut buf, cfg.kmeans_max_iters() as u32);
    put_f32(&mut buf, cfg.initial_cluster_ratio());
    put_f32(&mut buf, cfg.learning_rate());
    buf.push(match cfg.init_method() {
        InitMethod::Clustering => 0,
        InitMethod::RandomSampling => 1,
    });
    put_u64(&mut buf, cfg.seed());

    put_u32(&mut buf, encoder.input_width() as u32);
    let proj = encoder.projection_t();
    for r in 0..proj.rows() {
        for &w in proj.row(r).as_words() {
            put_u64(&mut buf, w);
        }
    }

    put_u32(&mut buf, binary.num_centroids() as u32);
    for r in 0..binary.num_centroids() {
        put_u32(&mut buf, binary.class_of(r) as u32);
        for &w in binary.centroid(r).as_words() {
            put_u64(&mut buf, w);
        }
        for &v in shadow.centroid(r) {
            put_f32(&mut buf, v);
        }
    }
    buf
}

/// Deserializes a model from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`MemhdError::InvalidData`] for a bad magic number, truncation,
/// or internally inconsistent shapes.
pub fn from_bytes(data: &[u8]) -> Result<MemhdModel> {
    let mut r = Reader { data, pos: 0 };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(MemhdError::InvalidData { reason: format!("bad model magic {magic:02x?}") });
    }
    let dim = r.u32()? as usize;
    let columns = r.u32()? as usize;
    let num_classes = r.u32()? as usize;
    let epochs = r.u32()? as usize;
    let allocation_rounds = r.u32()? as usize;
    let kmeans_max_iters = r.u32()? as usize;
    let ratio = r.f32()?;
    let lr = r.f32()?;
    let init_method = match r.u8()? {
        0 => InitMethod::Clustering,
        1 => InitMethod::RandomSampling,
        other => {
            return Err(MemhdError::InvalidData {
                reason: format!("unknown init method tag {other}"),
            })
        }
    };
    let seed = r.u64()?;
    let config = MemhdConfig::new(dim, columns, num_classes)?
        .with_initial_cluster_ratio(ratio)?
        .with_learning_rate(lr)?
        .with_epochs(epochs)
        .with_allocation_rounds(allocation_rounds)?
        .with_kmeans_max_iters(kmeans_max_iters)
        .with_init_method(init_method)
        .with_seed(seed);

    let input_width = r.u32()? as usize;
    if input_width == 0 {
        return Err(MemhdError::InvalidData { reason: "zero encoder width".into() });
    }
    let words_per_proj_row = input_width.div_ceil(64);
    let mut proj = BitMatrix::zeros(dim, input_width);
    for row in 0..dim {
        let mut words = Vec::with_capacity(words_per_proj_row);
        for _ in 0..words_per_proj_row {
            words.push(r.u64()?);
        }
        let bits = BitVector::from_words(input_width, words)
            .map_err(|e| MemhdError::InvalidData { reason: e.to_string() })?;
        proj.set_row(row, &bits).map_err(|e| MemhdError::InvalidData { reason: e.to_string() })?;
    }
    let encoder = RandomProjectionEncoder::from_projection_t(proj).map_err(MemhdError::Hdc)?;

    let centroids = r.u32()? as usize;
    if centroids != columns {
        return Err(MemhdError::InvalidData {
            reason: format!("{centroids} centroids but config says {columns} columns"),
        });
    }
    let words_per_am_row = dim.div_ceil(64);
    let mut bin_centroids = Vec::with_capacity(centroids);
    let mut fp_centroids = Vec::with_capacity(centroids);
    for _ in 0..centroids {
        let class = r.u32()? as usize;
        if class >= num_classes {
            return Err(MemhdError::InvalidData {
                reason: format!("class {class} out of range for {num_classes}"),
            });
        }
        let mut words = Vec::with_capacity(words_per_am_row);
        for _ in 0..words_per_am_row {
            words.push(r.u64()?);
        }
        let bits = BitVector::from_words(dim, words)
            .map_err(|e| MemhdError::InvalidData { reason: e.to_string() })?;
        bin_centroids.push((class, bits));
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(r.f32()?);
        }
        fp_centroids.push((class, row));
    }
    if r.pos != data.len() {
        return Err(MemhdError::InvalidData {
            reason: format!("{} trailing bytes after model payload", data.len() - r.pos),
        });
    }
    let binary_am =
        BinaryAm::from_centroids(num_classes, bin_centroids).map_err(MemhdError::Hdc)?;
    let fp_am = FloatAm::from_centroids(num_classes, fp_centroids).map_err(MemhdError::Hdc)?;

    Ok(MemhdModel::from_parts(config, encoder, fp_am, binary_am, TrainingHistory::default()))
}

/// Writes a model to a file.
///
/// # Errors
///
/// Returns [`MemhdError::InvalidData`] wrapping the I/O failure.
pub fn save(model: &MemhdModel, path: impl AsRef<Path>) -> Result<()> {
    let bytes = to_bytes(model);
    let mut file = std::fs::File::create(path)
        .map_err(|e| MemhdError::InvalidData { reason: format!("create: {e}") })?;
    file.write_all(&bytes).map_err(|e| MemhdError::InvalidData { reason: format!("write: {e}") })
}

/// Reads a model from a file written by [`save`].
///
/// # Errors
///
/// Returns [`MemhdError::InvalidData`] for I/O failures or a malformed
/// payload.
pub fn load(path: impl AsRef<Path>) -> Result<MemhdModel> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(|e| MemhdError::InvalidData { reason: format!("open: {e}") })?
        .read_to_end(&mut bytes)
        .map_err(|e| MemhdError::InvalidData { reason: format!("read: {e}") })?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::{seeded, Normal};
    use hd_linalg::Matrix;

    fn trained_model() -> (MemhdModel, Matrix, Vec<usize>) {
        let mut rng = seeded(4);
        let noise = Normal::new(0.0, 0.08);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for _ in 0..10 {
                let row: Vec<f32> = (0..12)
                    .map(|j| {
                        let base = if j / 4 == class { 0.8 } else { 0.2 };
                        (base + noise.sample(&mut rng)).clamp(0.0, 1.0)
                    })
                    .collect();
                rows.push(row);
                labels.push(class);
            }
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let cfg = MemhdConfig::new(64, 9, 3).unwrap().with_epochs(3).with_seed(2);
        let model = MemhdModel::fit(&cfg, &features, &labels).unwrap();
        (model, features, labels)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let (model, features, _) = trained_model();
        let bytes = to_bytes(&model);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.config(), model.config());
        assert_eq!(restored.binary_am().as_bit_matrix(), model.binary_am().as_bit_matrix());
        for i in 0..features.rows() {
            assert_eq!(
                restored.predict(features.row(i)).unwrap(),
                model.predict(features.row(i)).unwrap()
            );
        }
    }

    #[test]
    fn roundtrip_preserves_shadow_am_for_refinement() {
        let (model, features, labels) = trained_model();
        let restored = from_bytes(&to_bytes(&model)).unwrap();
        assert_eq!(restored.float_am().as_matrix(), model.float_am().as_matrix());
        // Refinement still works after reload.
        let mut restored = restored;
        restored.refine(&features, &labels, 2).unwrap();
    }

    #[test]
    fn file_roundtrip() {
        let (model, features, _) = trained_model();
        let path = std::env::temp_dir().join(format!("memhd-test-{}.bin", std::process::id()));
        save(&model, &path).unwrap();
        let restored = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            restored.predict(features.row(0)).unwrap(),
            model.predict(features.row(0)).unwrap()
        );
    }

    #[test]
    fn rejects_corruption() {
        let (model, _, _) = trained_model();
        let bytes = to_bytes(&model);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
        // Truncation.
        assert!(from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(from_bytes(&long).is_err());
        // Unknown init-method tag (offset: 8 magic + 24 u32s + 8 f32s = 40).
        let mut tagged = bytes;
        tagged[40] = 9;
        assert!(from_bytes(&tagged).is_err());
    }
}
