//! Memory accounting (paper Table I).
//!
//! MEMHD's footprint is `f × D` bits for the projection encoding module
//! plus `C × D` bits for the multi-centroid associative memory — both
//! binary, both sized to the IMC array rather than to a 10k-dimensional
//! hypervector space.

use std::fmt;

/// Memory requirements of a model, split by module (all in bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryReport {
    /// Encoding-module bits (`f × D` for projection encoding).
    pub em_bits: u64,
    /// Associative-memory bits (`C × D`).
    pub am_bits: u64,
}

impl MemoryReport {
    /// Creates a report from per-module bit counts.
    pub fn new(em_bits: u64, am_bits: u64) -> Self {
        MemoryReport { em_bits, am_bits }
    }

    /// Total bits across both modules.
    pub fn total_bits(&self) -> u64 {
        self.em_bits + self.am_bits
    }

    /// Encoding-module size in kilobytes (1 KB = 8192 bits).
    pub fn em_kb(&self) -> f64 {
        self.em_bits as f64 / 8192.0
    }

    /// Associative-memory size in kilobytes.
    pub fn am_kb(&self) -> f64 {
        self.am_bits as f64 / 8192.0
    }

    /// Total size in kilobytes — the x-axis of the paper's Fig. 3.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EM {:.2} KB + AM {:.2} KB = {:.2} KB",
            self.em_kb(),
            self.am_kb(),
            self.total_kb()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        // MEMHD 128x128 on MNIST: EM = 784*128 bits, AM = 128*128 bits.
        let r = MemoryReport::new(784 * 128, 128 * 128);
        assert_eq!(r.total_bits(), 784 * 128 + 128 * 128);
        assert!((r.em_kb() - 784.0 * 128.0 / 8192.0).abs() < 1e-9);
        assert!((r.total_kb() - (784.0 + 128.0) * 128.0 / 8192.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_parts() {
        let r = MemoryReport::new(8192, 8192);
        let s = r.to_string();
        assert!(s.contains("EM 1.00 KB"));
        assert!(s.contains("2.00 KB"));
    }
}
