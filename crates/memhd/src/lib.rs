//! # MEMHD: Memory-Efficient Multi-Centroid Hyperdimensional Computing
//!
//! A from-scratch reproduction of *MEMHD: Memory-Efficient Multi-Centroid
//! Hyperdimensional Computing for Fully-Utilized In-Memory Computing
//! Architectures* (DATE 2025).
//!
//! Traditional HDC stores **one** class vector per class in its associative
//! memory (AM), which leaves most columns of an in-memory-computing (IMC)
//! array idle and forces hypervector dimensions (≈10k) far beyond array row
//! counts. MEMHD instead sizes the AM to the array: hypervector dimension
//! `D` matches the array's rows and the **total number of centroids `C`**
//! matches its columns, with each class represented by *multiple centroids*.
//! The result is a fully-utilized array and one-shot associative search.
//!
//! Training has three phases (paper §III):
//!
//! 1. **Clustering-based initialization** ([`init`]) — classwise k-means
//!    under dot similarity seeds `⌊CR/k⌋` centroids per class; the
//!    remaining `C(1−R)` columns are allocated to the classes with the most
//!    validation mispredictions (confusion-matrix driven), re-clustering as
//!    counts grow, until every column is used.
//! 2. **AM quantization** — 1-bit quantization of the FP AM at its mean.
//! 3. **Quantization-aware iterative learning** ([`train`]) — mispredicted
//!    samples update a floating-point shadow AM with paper Eqs. (4)–(6)
//!    (global-argmax update target on the predicted side, within-class
//!    argmax on the true side), followed by per-centroid normalization and
//!    re-binarization each epoch.
//!
//! The one-stop entry point is [`MemhdModel::fit`]:
//!
//! ```
//! use memhd::{MemhdConfig, MemhdModel};
//! use hd_linalg::Matrix;
//!
//! # fn main() -> Result<(), memhd::MemhdError> {
//! // A tiny two-class problem (use real feature data in practice).
//! let features = Matrix::from_rows(&[
//!     &[0.9f32, 0.1, 0.8, 0.2][..], &[0.8, 0.2, 0.9, 0.1][..],
//!     &[0.1, 0.9, 0.2, 0.8][..], &[0.2, 0.8, 0.1, 0.9][..],
//! ]).unwrap();
//! let labels = vec![0, 0, 1, 1];
//!
//! let config = MemhdConfig::new(64, 4, 2)?.with_epochs(5);
//! let model = MemhdModel::fit(&config, &features, &labels)?;
//! let pred = model.predict(&[0.85, 0.15, 0.85, 0.15])?;
//! assert_eq!(pred, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod init;
mod memory;
mod model;
pub mod serialize;
pub mod train;

pub use config::{InitMethod, MemhdConfig};
pub use error::{MemhdError, Result};
pub use memory::MemoryReport;
pub use model::MemhdModel;
pub use train::{EpochRecord, TrainingHistory};
