//! Multi-centroid AM initialization (paper §III-A).
//!
//! Unlike single-centroid HDC — where random initialization is fine because
//! every update for a class lands on the same vector — a multi-centroid AM
//! learns each centroid independently, so *where the centroids start*
//! decides which intra-class modes they can represent. MEMHD therefore
//! seeds the AM in two stages:
//!
//! 1. **Classwise clustering** ([`clustering_init`]): split the encoded
//!    training hypervectors by class and k-means each class into
//!    `n = max(1, ⌊C·R/k⌋)` clusters under **dot similarity** (the same
//!    metric associative search uses). Each cluster centroid becomes an
//!    initial class vector.
//! 2. **Cluster allocation** ([`clustering_init`], continued): the
//!    remaining `C(1−R)` columns are handed out by validating on the
//!    training set, building a confusion matrix, and granting extra
//!    centroids to the classes with the highest misprediction mass —
//!    re-clustering those classes — until every column is used and the IMC
//!    array is fully utilized.
//!
//! [`random_sampling_init`] implements the Fig. 5 baseline: centroids are
//! random training hypervectors with columns spread evenly across classes.

use crate::config::MemhdConfig;
use crate::error::{MemhdError, Result};
use hd_clustering::{kmeans, KmeansConfig, KmeansDistance};
use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::stats::ConfusionMatrix;
use hd_linalg::Matrix;
use hdc::{EncodedDataset, FloatAm};
use rand::Rng;

/// Per-class view of the encoded training set.
#[derive(Debug)]
struct ClassSamples {
    /// Sample indices (into the encoded set) per class.
    indices: Vec<Vec<usize>>,
    /// FP hypervectors per class, one matrix per class (rows = samples).
    fp: Vec<Matrix>,
}

fn split_by_class(
    encoded: &EncodedDataset,
    labels: &[usize],
    num_classes: usize,
) -> Result<ClassSamples> {
    if encoded.len() != labels.len() {
        return Err(MemhdError::InvalidData {
            reason: format!("{} samples but {} labels", encoded.len(), labels.len()),
        });
    }
    let mut indices = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        if l >= num_classes {
            return Err(MemhdError::InvalidData {
                reason: format!("label {l} out of range for {num_classes} classes"),
            });
        }
        indices[l].push(i);
    }
    if let Some(empty) = indices.iter().position(|v| v.is_empty()) {
        return Err(MemhdError::InvalidData {
            reason: format!("class {empty} has no training samples"),
        });
    }
    let dim = encoded.dim();
    // Hypervectors are *centered* (their own mean removed) before
    // clustering: the associative search operates on mean-threshold
    // binarized vectors, so the clustering similarity (paper §III-A-1:
    // "the same metric employed in associative search") must act on the
    // same informative component. Raw projection hypervectors carry a
    // dominant common-mode term that would make every dot-similarity
    // assignment collapse onto one centroid.
    let fp = indices
        .iter()
        .map(|idx| {
            let mut flat = Vec::with_capacity(idx.len() * dim);
            for &i in idx {
                let row = encoded.fp.row(i);
                let mean = hd_linalg::mean(row);
                flat.extend(row.iter().map(|v| v - mean));
            }
            Matrix::from_vec(idx.len(), dim, flat).expect("consistent dims")
        })
        .collect::<Vec<_>>();
    Ok(ClassSamples { indices, fp })
}

/// Runs k-means for one class and returns `n` centroids (rows).
fn cluster_class(
    class_fp: &Matrix,
    n: usize,
    config: &MemhdConfig,
    class: usize,
    round: usize,
) -> Result<Vec<Vec<f32>>> {
    let cfg = KmeansConfig::new(n)
        .with_distance(KmeansDistance::DotSimilarity)
        .with_max_iters(config.kmeans_max_iters())
        .with_seed(derive_seed(config.seed(), (class as u64) << 8 | round as u64));
    let result = kmeans(class_fp, &cfg)?;
    Ok((0..n).map(|c| result.centroids.row(c).to_vec()).collect())
}

/// Builds a [`FloatAm`] from per-class centroid lists, L2-normalizing every
/// centroid so learning influence is balanced across siblings (§III-C-4).
fn build_am(num_classes: usize, per_class: &[Vec<Vec<f32>>]) -> Result<FloatAm> {
    let mut centroids = Vec::new();
    for (class, list) in per_class.iter().enumerate() {
        for v in list {
            centroids.push((class, v.clone()));
        }
    }
    let mut am = FloatAm::from_centroids(num_classes, centroids)?;
    am.center_and_normalize();
    Ok(am)
}

/// Validates the current AM on the training set and returns the confusion
/// matrix.
///
/// Validation uses the *quantized* AM with binarized queries — the same
/// comparison inference will perform — so allocation reacts to the errors
/// that actually matter after 1-bit quantization.
fn validate(
    am: &FloatAm,
    encoded: &EncodedDataset,
    labels: &[usize],
    num_classes: usize,
) -> Result<ConfusionMatrix> {
    let binary = am.quantize();
    let mut cm = ConfusionMatrix::new(num_classes);
    for (i, &label) in labels.iter().enumerate() {
        let hit = binary.search(&encoded.bin[i]).map_err(MemhdError::Hdc)?;
        cm.record(label, hit.class);
    }
    Ok(cm)
}

/// Distributes `batch` extra centroids across classes proportionally to
/// their misprediction counts (largest-remainder method), respecting the
/// per-class capacity `cap[c] - current[c]`. Falls back to even
/// distribution when there are no misses.
fn distribute(batch: usize, misses: &[u64], current: &[usize], cap: &[usize]) -> Vec<usize> {
    let k = misses.len();
    let headroom: Vec<usize> = (0..k).map(|c| cap[c].saturating_sub(current[c])).collect();
    let total_miss: u64 = misses.iter().sum();
    let mut grant = vec![0usize; k];

    // Ideal (possibly fractional) share per class.
    let shares: Vec<f64> = if total_miss == 0 {
        vec![batch as f64 / k as f64; k]
    } else {
        misses.iter().map(|&m| batch as f64 * m as f64 / total_miss as f64).collect()
    };

    // Integer part first, capped by headroom.
    let mut assigned = 0usize;
    for c in 0..k {
        let g = (shares[c].floor() as usize).min(headroom[c]);
        grant[c] = g;
        assigned += g;
    }
    // Hand out the remainder by descending fractional share (then by
    // descending miss count for determinism).
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(misses[b].cmp(&misses[a]))
            .then(a.cmp(&b))
    });
    let mut cursor = 0usize;
    while assigned < batch && cursor < 2 * k {
        let c = order[cursor % k];
        if grant[c] < headroom[c] {
            grant[c] += 1;
            assigned += 1;
        }
        cursor += 1;
    }
    // If still short (most classes at capacity), sweep any headroom left.
    if assigned < batch {
        for c in 0..k {
            while assigned < batch && grant[c] < headroom[c] {
                grant[c] += 1;
                assigned += 1;
            }
        }
    }
    grant
}

/// Clustering-based initialization with confusion-driven cluster allocation
/// (paper §III-A, Fig. 2a).
///
/// Returns a [`FloatAm`] with exactly `config.columns()` centroids — a
/// fully-utilized AM.
///
/// # Errors
///
/// Returns [`MemhdError::InvalidData`] if labels are inconsistent, a class
/// has no samples, or the training set is too small to populate all
/// `C` columns (each centroid needs at least one sample to cluster on).
pub fn clustering_init(
    config: &MemhdConfig,
    encoded: &EncodedDataset,
    labels: &[usize],
) -> Result<FloatAm> {
    let k = config.num_classes();
    let columns = config.columns();
    let samples = split_by_class(encoded, labels, k)?;
    let cap: Vec<usize> = samples.indices.iter().map(Vec::len).collect();
    if cap.iter().sum::<usize>() < columns {
        return Err(MemhdError::InvalidData {
            reason: format!(
                "{} training samples cannot seed {columns} centroids",
                cap.iter().sum::<usize>()
            ),
        });
    }

    // Stage 1: classwise clustering at ratio R.
    let n = config.initial_clusters_per_class();
    let mut counts: Vec<usize> = cap.iter().map(|&c| n.min(c)).collect();
    let mut per_class: Vec<Vec<Vec<f32>>> = Vec::with_capacity(k);
    for (class, &count) in counts.iter().enumerate() {
        per_class.push(cluster_class(&samples.fp[class], count, config, class, 0)?);
    }

    // Stage 2: allocate the remaining columns by misprediction mass.
    let mut round = 1usize;
    loop {
        let used: usize = counts.iter().sum();
        if used >= columns {
            break;
        }
        let remaining = columns - used;
        let rounds_left = config.allocation_rounds().saturating_sub(round - 1).max(1);
        let batch = remaining.div_ceil(rounds_left);

        let am = build_am(k, &per_class)?;
        let cm = validate(&am, encoded, labels, k)?;
        let misses: Vec<u64> = (0..k).map(|c| cm.misses_for_class(c)).collect();
        let grants = distribute(batch, &misses, &counts, &cap);
        if grants.iter().all(|&g| g == 0) {
            // All classes at sample capacity: cannot fill further.
            return Err(MemhdError::InvalidData {
                reason: format!(
                    "cannot allocate {remaining} more centroids: every class \
                     is at its sample capacity"
                ),
            });
        }
        for class in 0..k {
            if grants[class] > 0 {
                counts[class] += grants[class];
                per_class[class] =
                    cluster_class(&samples.fp[class], counts[class], config, class, round)?;
            }
        }
        round += 1;
    }

    let am = build_am(k, &per_class)?;
    debug_assert_eq!(am.num_centroids(), columns);
    Ok(am)
}

/// Random-sampling initialization — the Fig. 5 baseline.
///
/// Columns are distributed as evenly as possible across classes and each
/// centroid is a randomly chosen training hypervector of that class
/// (sampled without replacement while samples last).
///
/// # Errors
///
/// Returns [`MemhdError::InvalidData`] under the same conditions as
/// [`clustering_init`].
pub fn random_sampling_init(
    config: &MemhdConfig,
    encoded: &EncodedDataset,
    labels: &[usize],
) -> Result<FloatAm> {
    let k = config.num_classes();
    let columns = config.columns();
    let samples = split_by_class(encoded, labels, k)?;
    let cap: Vec<usize> = samples.indices.iter().map(Vec::len).collect();
    if cap.iter().sum::<usize>() < columns {
        return Err(MemhdError::InvalidData {
            reason: format!(
                "{} training samples cannot seed {columns} centroids",
                cap.iter().sum::<usize>()
            ),
        });
    }

    // Even distribution, then round-robin the remainder over classes with
    // headroom.
    let mut counts = vec![columns / k; k];
    for (c, count) in counts.iter_mut().enumerate() {
        *count = (*count).min(cap[c]);
    }
    let mut assigned: usize = counts.iter().sum();
    let mut class = 0usize;
    let mut stall = 0usize;
    while assigned < columns {
        if counts[class] < cap[class] {
            counts[class] += 1;
            assigned += 1;
            stall = 0;
        } else {
            stall += 1;
            if stall > k {
                return Err(MemhdError::InvalidData {
                    reason: "cannot fill all columns: classes exhausted".into(),
                });
            }
        }
        class = (class + 1) % k;
    }

    let mut rng = seeded(derive_seed(config.seed(), 0x72616e64)); // "rand"
    let mut per_class: Vec<Vec<Vec<f32>>> = Vec::with_capacity(k);
    for c in 0..k {
        // Partial Fisher–Yates to pick counts[c] distinct samples.
        let mut idx = samples.indices[c].clone();
        for i in 0..counts[c] {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        per_class.push(idx[..counts[c]].iter().map(|&i| encoded.fp.row(i).to_vec()).collect());
    }
    build_am(k, &per_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::{encode_dataset, RandomProjectionEncoder};

    /// Multi-modal 3-class toy set: class anchors on distinct feature
    /// groups, two modes per class.
    fn toy(per_class: usize, seed: u64) -> (EncodedDataset, Vec<usize>) {
        use hd_linalg::rng::Normal;
        let mut rng = seeded(seed);
        let noise = Normal::new(0.0, 0.05);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for s in 0..per_class {
                let mode = s % 2;
                let row: Vec<f32> = (0..12)
                    .map(|j| {
                        let hot = j / 4 == class;
                        let base = if hot { 0.8 } else { 0.2 };
                        let shift = if hot && (j % 2 == mode) { 0.15 } else { 0.0 };
                        (base - shift + noise.sample(&mut rng)).clamp(0.0, 1.0)
                    })
                    .collect();
                rows.push(row);
                labels.push(class);
            }
        }
        let feats = Matrix::from_rows(&rows).unwrap();
        let enc = RandomProjectionEncoder::new(12, 128, 7);
        (encode_dataset(&enc, &feats).unwrap(), labels)
    }

    fn config(columns: usize) -> MemhdConfig {
        MemhdConfig::new(128, columns, 3).unwrap().with_seed(5)
    }

    #[test]
    fn clustering_init_fills_all_columns() {
        let (encoded, labels) = toy(20, 1);
        for columns in [3, 8, 12, 17] {
            let am = clustering_init(&config(columns), &encoded, &labels).unwrap();
            assert_eq!(am.num_centroids(), columns, "columns {columns}");
            // Every class keeps at least one centroid.
            for class in 0..3 {
                assert!(!am.rows_of_class(class).is_empty(), "class {class} lost all centroids");
            }
        }
    }

    #[test]
    fn clustering_init_rows_are_normalized() {
        let (encoded, labels) = toy(15, 2);
        let am = clustering_init(&config(9), &encoded, &labels).unwrap();
        for r in 0..am.num_centroids() {
            let n = hd_linalg::l2_norm(am.centroid(r));
            assert!((n - 1.0).abs() < 1e-4, "row {r} norm {n}");
        }
    }

    #[test]
    fn clustering_init_deterministic() {
        let (encoded, labels) = toy(15, 3);
        let a = clustering_init(&config(10), &encoded, &labels).unwrap();
        let b = clustering_init(&config(10), &encoded, &labels).unwrap();
        assert_eq!(a.as_matrix(), b.as_matrix());
        assert_eq!(a.class_labels(), b.class_labels());
    }

    #[test]
    fn random_sampling_init_fills_and_balances() {
        let (encoded, labels) = toy(20, 4);
        let am = random_sampling_init(&config(12), &encoded, &labels).unwrap();
        assert_eq!(am.num_centroids(), 12);
        for class in 0..3 {
            assert_eq!(am.rows_of_class(class).len(), 4);
        }
    }

    #[test]
    fn random_sampling_remainder_round_robin() {
        let (encoded, labels) = toy(20, 4);
        let am = random_sampling_init(&config(11), &encoded, &labels).unwrap();
        let sizes: Vec<usize> = (0..3).map(|c| am.rows_of_class(c).len()).collect();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 11);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "sizes {sizes:?}");
    }

    #[test]
    fn init_rejects_missing_class() {
        let (encoded, mut labels) = toy(10, 5);
        for l in labels.iter_mut() {
            if *l == 2 {
                *l = 1;
            }
        }
        // Class 2 now empty.
        assert!(matches!(
            clustering_init(&config(6), &encoded, &labels),
            Err(MemhdError::InvalidData { .. })
        ));
    }

    #[test]
    fn init_rejects_too_many_columns() {
        let (encoded, labels) = toy(2, 6); // 6 samples total
        let cfg = MemhdConfig::new(128, 10, 3).unwrap();
        assert!(matches!(
            clustering_init(&cfg, &encoded, &labels),
            Err(MemhdError::InvalidData { .. })
        ));
        assert!(matches!(
            random_sampling_init(&cfg, &encoded, &labels),
            Err(MemhdError::InvalidData { .. })
        ));
    }

    #[test]
    fn init_rejects_label_out_of_range() {
        let (encoded, mut labels) = toy(10, 7);
        labels[0] = 99;
        assert!(clustering_init(&config(6), &encoded, &labels).is_err());
    }

    #[test]
    fn distribute_proportional_to_misses() {
        let grants = distribute(4, &[30, 10, 0], &[2, 2, 2], &[100, 100, 100]);
        assert_eq!(grants.iter().sum::<usize>(), 4);
        assert!(grants[0] >= grants[1]);
        assert!(grants[1] >= grants[2]);
    }

    #[test]
    fn distribute_even_when_no_misses() {
        let grants = distribute(6, &[0, 0, 0], &[1, 1, 1], &[10, 10, 10]);
        assert_eq!(grants, vec![2, 2, 2]);
    }

    #[test]
    fn distribute_respects_capacity() {
        let grants = distribute(5, &[100, 1, 1], &[3, 0, 0], &[3, 10, 10]);
        assert_eq!(grants[0], 0, "class 0 is at capacity");
        assert_eq!(grants.iter().sum::<usize>(), 5);
    }

    #[test]
    fn clustering_beats_random_on_multimodal_toy() {
        // The paper's Fig. 5 claim, miniaturized: initial accuracy of
        // clustering-based init exceeds (or at least matches) random
        // sampling on a multi-modal problem, averaged over seeds.
        let (encoded, labels) = toy(30, 8);
        let mut clu = 0.0;
        let mut ran = 0.0;
        for seed in 0..5u64 {
            let cfg = MemhdConfig::new(128, 9, 3).unwrap().with_seed(seed);
            let am_c = clustering_init(&cfg, &encoded, &labels).unwrap().quantize();
            let am_r = random_sampling_init(&cfg, &encoded, &labels).unwrap().quantize();
            clu += hdc::train::evaluate(&am_c, &encoded.bin, &labels).unwrap();
            ran += hdc::train::evaluate(&am_r, &encoded.bin, &labels).unwrap();
        }
        assert!(clu >= ran - 0.25, "clustering {clu} vs random {ran} (5-seed sums)");
    }
}
