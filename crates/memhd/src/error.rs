//! Error types for the MEMHD crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MemhdError>;

/// Errors produced by MEMHD configuration, initialization, and training.
#[derive(Debug)]
#[non_exhaustive]
pub enum MemhdError {
    /// A configuration constraint was violated.
    InvalidConfig {
        /// Parameter that failed validation.
        parameter: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The training data was unusable (empty, mislabeled, too small for
    /// the requested column count, ...).
    InvalidData {
        /// Description of the problem.
        reason: String,
    },
    /// An underlying HDC substrate operation failed.
    Hdc(hdc::HdcError),
    /// Classwise clustering failed.
    Clustering(hd_clustering::ClusteringError),
}

impl fmt::Display for MemhdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemhdError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid config parameter {parameter}: {reason}")
            }
            MemhdError::InvalidData { reason } => write!(f, "invalid data: {reason}"),
            MemhdError::Hdc(e) => write!(f, "hdc error: {e}"),
            MemhdError::Clustering(e) => write!(f, "clustering error: {e}"),
        }
    }
}

impl std::error::Error for MemhdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemhdError::Hdc(e) => Some(e),
            MemhdError::Clustering(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdc::HdcError> for MemhdError {
    fn from(e: hdc::HdcError) -> Self {
        MemhdError::Hdc(e)
    }
}

impl From<hd_clustering::ClusteringError> for MemhdError {
    fn from(e: hd_clustering::ClusteringError) -> Self {
        MemhdError::Clustering(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MemhdError::InvalidConfig { parameter: "columns", reason: "must be >= k".into() };
        assert!(e.to_string().contains("columns"));
        let e = MemhdError::InvalidData { reason: "empty".into() };
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e: MemhdError = hdc::HdcError::DimensionMismatch { expected: 1, found: 2 }.into();
        assert!(e.source().is_some());
        let e: MemhdError =
            hd_clustering::ClusteringError::TooFewPoints { points: 1, clusters: 2 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemhdError>();
    }
}
