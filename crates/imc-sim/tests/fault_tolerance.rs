//! Property-based coverage of the fault-tolerance layers: replicated
//! majority readout and online scrubbing. Each property pins an
//! equivalence the serving stack relies on (replication degenerates
//! correctly, scrubbing is exact and idempotent, repairs invalidate
//! cached cascade bounds).

use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::{BitVector, CascadePlan, QueryBatch};
use hdc::BinaryAm;
use imc_sim::{
    AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy, ReplicatedAmMapping,
    ScrubConfig, Scrubber,
};
use proptest::prelude::*;
use rand::Rng;

/// Builds a deterministic random mapping: `vectors` centroids of
/// dimensionality `dim`, partitioned `P` ways (1 = basic layout).
fn mapping(dim: usize, vectors: usize, partitions: usize, seed: u64) -> AmMapping {
    let mut rng = seeded(seed);
    let centroids: Vec<(usize, BitVector)> = (0..vectors)
        .map(|v| {
            let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            (v % 3, BitVector::from_bools(&bits))
        })
        .collect();
    let am = BinaryAm::from_centroids(3, centroids).unwrap();
    let strategy = if partitions == 1 {
        MappingStrategy::Basic
    } else {
        MappingStrategy::Partitioned { partitions }
    };
    AmMapping::new(&am, ArraySpec::default(), strategy).unwrap()
}

fn query_batch(dim: usize, queries: usize, seed: u64) -> QueryBatch {
    let mut rng = seeded(seed);
    let qs: Vec<BitVector> = (0..queries)
        .map(|_| BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))
        .collect();
    QueryBatch::from_vectors(&qs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Majority readout with a single replica is exactly the plain
    /// faulty mapping programmed from the same seed stream.
    #[test]
    fn single_replica_majority_equals_plain_mapping(
        seed in 0u64..1000,
        ber in prop::sample::select(vec![0.0, 0.01, 0.1, 0.5]),
        partitions in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let ideal = mapping(256, 6, partitions, 11);
        let model = FaultModel::bit_flip(ber);
        let rep = ReplicatedAmMapping::program(&ideal, model, 1, seed).unwrap();
        let plain = FaultyAmMapping::program(&ideal, model, derive_seed(seed, 0)).unwrap();
        prop_assert_eq!(
            rep.majority_mapping().diff_cells(plain.as_mapping()).unwrap(),
            0
        );
    }

    /// Ideal replicas vote back the ideal mapping bit-for-bit, for any
    /// replica count and layout.
    #[test]
    fn ideal_replicas_equal_ideal_mapping(
        replicas in 1usize..6,
        partitions in prop::sample::select(vec![1usize, 2, 4]),
        seed in 0u64..1000,
    ) {
        let ideal = mapping(256, 5, partitions, 7);
        let rep =
            ReplicatedAmMapping::program(&ideal, FaultModel::ideal(), replicas, seed).unwrap();
        prop_assert_eq!(rep.residual_flipped(&ideal).unwrap(), 0);
        for v in 0..ideal.num_vectors() {
            prop_assert_eq!(
                rep.majority_mapping().logical_row(v).unwrap(),
                ideal.logical_row(v).unwrap()
            );
        }
    }

    /// Scrubbing an unfaulted memory is a no-op: zero dirty rows, zero
    /// cells healed, regardless of tick budget.
    #[test]
    fn scrub_of_clean_memory_repairs_nothing(
        seed in 0u64..1000,
        cells_per_tick in prop::sample::select(vec![0usize, 1, 300, 4096]),
        partitions in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let golden = mapping(256, 6, partitions, 3);
        let scrubber = Scrubber::new(&golden, ScrubConfig { cells_per_tick }, seed).unwrap();
        let mut clean = FaultyAmMapping::program(&golden, FaultModel::ideal(), seed).unwrap();
        let report = scrubber.scrub_full(&mut clean).unwrap();
        prop_assert_eq!(report.rows_scanned, 6);
        prop_assert_eq!(report.rows_dirty, 0);
        prop_assert_eq!(report.cells_healed, 0);
        prop_assert!(report.completed_pass);
        prop_assert_eq!(clean.effective_flipped(&golden).unwrap(), 0);
    }

    /// After a full scrub the repaired mapping's cascade and top-k
    /// searches are bit-identical to exact search on the golden bits —
    /// i.e. repair really restored the cells AND invalidated any cascade
    /// bound cached against the corrupted ones.
    #[test]
    fn repaired_mapping_searches_bit_identical_to_golden(
        seed in 0u64..1000,
        ber in prop::sample::select(vec![0.02, 0.1, 0.3]),
        partitions in prop::sample::select(vec![1usize, 4]),
    ) {
        let golden = mapping(512, 8, partitions, 5);
        let batch = query_batch(512, 6, derive_seed(seed, 99));
        let plan = CascadePlan::prefix(512, 128).unwrap();
        let scrubber = Scrubber::new(&golden, ScrubConfig::default(), 13).unwrap();

        let mut deployed =
            FaultyAmMapping::program(&golden, FaultModel::bit_flip(ber), seed).unwrap();
        // Warm the corrupted mapping's cascade bound cache so the repair
        // path must invalidate it.
        let _ = deployed.search_batch_cascade(&batch, &plan).unwrap();
        let corrupted = deployed.effective_flipped(&golden).unwrap();
        let report = scrubber.scrub_full(&mut deployed).unwrap();
        prop_assert_eq!(report.cells_healed, corrupted);
        prop_assert_eq!(deployed.effective_flipped(&golden).unwrap(), 0);

        let exact = golden.search_batch(&batch).unwrap();
        let cascade = deployed.search_batch_cascade(&batch, &plan).unwrap();
        prop_assert_eq!(&cascade.predicted_rows, &exact.predicted_rows);
        prop_assert_eq!(&cascade.predicted_classes, &exact.predicted_classes);

        let golden_topk = golden.search_batch_topk(&batch, 3).unwrap();
        let repaired_topk = deployed.search_batch_topk(&batch, 3).unwrap();
        for (g, r) in golden_topk.hits.iter().zip(&repaired_topk.hits) {
            for (gh, rh) in g.iter().zip(r) {
                prop_assert_eq!(gh.row, rh.row);
                prop_assert_eq!(gh.score, rh.score);
            }
        }
    }

    /// Replication strictly reduces residual corruption at moderate BER:
    /// the R=3 majority never leaves more corrupted cells than the worst
    /// single replica, and scrubbing the majority's replicas converges to
    /// the golden bits.
    #[test]
    fn replication_and_scrub_compose(
        seed in 0u64..500,
    ) {
        let golden = mapping(512, 6, 1, 9);
        let model = FaultModel::bit_flip(0.05);
        let rep = ReplicatedAmMapping::program(&golden, model, 3, seed).unwrap();
        let residual = rep.residual_flipped(&golden).unwrap();
        for i in 0..3 {
            let single = rep.replica(i).unwrap().effective_flipped(&golden).unwrap();
            prop_assert!(residual <= single, "residual {residual} vs replica {i}: {single}");
        }
        // A scrubbed replica is exactly golden again.
        let scrubber = Scrubber::new(&golden, ScrubConfig::default(), 21).unwrap();
        let mut replica = rep.replica(0).unwrap().clone();
        scrubber.scrub_full(&mut replica).unwrap();
        prop_assert_eq!(replica.effective_flipped(&golden).unwrap(), 0);
    }
}

/// The fault-tolerance acceptance point, pinned deterministically (same
/// construction as `crates/bench/benches/fault_tolerance.rs`): at BER
/// 5e-2 on a tight-margin task, plain programming loses accuracy while
/// 3-replica majority readout recovers at least 90% of the ideal.
#[test]
fn replication_recovers_accuracy_at_ber_5e2() {
    const DIM: usize = 96;
    const CLASSES: usize = 16;
    const QUERIES: usize = 400;
    const QUERY_FLIP: f64 = 0.34;
    let mut rng = seeded(90);
    let centroids: Vec<(usize, BitVector)> = (0..CLASSES)
        .map(|c| (c, BitVector::from_bools(&(0..DIM).map(|_| rng.gen()).collect::<Vec<_>>())))
        .collect();
    let am = BinaryAm::from_centroids(CLASSES, centroids).unwrap();
    let golden = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
    let mut rng = seeded(91);
    let mut queries = Vec::with_capacity(QUERIES);
    let mut labels = Vec::with_capacity(QUERIES);
    for q in 0..QUERIES {
        let class = q % CLASSES;
        let row = golden.logical_row(class).unwrap();
        queries.push(BitVector::from_bools(
            &(0..DIM).map(|d| row.get(d) ^ (rng.gen::<f64>() < QUERY_FLIP)).collect::<Vec<_>>(),
        ));
        labels.push(class);
    }
    let batch = QueryBatch::from_vectors(&queries).unwrap();
    let accuracy = |predicted: &[usize]| {
        predicted.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64 / QUERIES as f64
    };
    let ideal = accuracy(&golden.search_batch(&batch).unwrap().predicted_classes);
    let model = FaultModel::bit_flip(0.05);
    let plain = FaultyAmMapping::program(&golden, model, 92).unwrap();
    let plain_acc = accuracy(&plain.search_batch(&batch).unwrap().predicted_classes);
    let rep = ReplicatedAmMapping::program(&golden, model, 3, 92).unwrap();
    let rep_acc = accuracy(&rep.search_batch(&batch).unwrap().predicted_classes);
    assert!(plain_acc < 0.91 * ideal, "plain must degrade: {plain_acc} vs ideal {ideal}");
    assert!(rep_acc >= 0.90 * ideal, "R=3 must recover >=90% of ideal: {rep_acc} vs {ideal}");
}
