//! Array non-ideality modeling: cell faults and readout noise.
//!
//! The paper's intro motivates HDC on IMC partly by HDC's inherent noise
//! robustness; real SRAM/NVM arrays suffer programming errors, stuck-at
//! cells, and noisy column readouts. This module injects those effects
//! into a mapped associative memory so the robustness claim can be
//! measured rather than assumed (see the `ablation` bench binary, which
//! sweeps bit-error rate against accuracy for MEMHD and BasicHDC).

use crate::error::{ImcError, Result};
use crate::mapping::{AmMapping, InferenceStats};
use hd_linalg::rng::{derive_seed, seeded};
use hd_linalg::BitVector;
use rand::Rng;

/// Stochastic fault model for programmed IMC cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability that a programmed cell reads back flipped (bit-error
    /// rate). Applied independently per cell, once, at programming time.
    pub bit_error_rate: f64,
    /// Probability that a cell is stuck at 0 (always reads 0 regardless of
    /// the programmed value).
    pub stuck_at_zero_rate: f64,
    /// Probability that a cell is stuck at 1.
    pub stuck_at_one_rate: f64,
}

impl FaultModel {
    /// A fault-free array.
    pub fn ideal() -> Self {
        FaultModel { bit_error_rate: 0.0, stuck_at_zero_rate: 0.0, stuck_at_one_rate: 0.0 }
    }

    /// A pure bit-flip model with the given error rate.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]`.
    pub fn bit_flip(ber: f64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "bit error rate must be in [0, 1]");
        FaultModel { bit_error_rate: ber, ..Self::ideal() }
    }

    /// Validates all rates.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if any rate is outside `[0, 1]`
    /// or the stuck-at rates sum above 1.
    pub fn validate(&self) -> Result<()> {
        for (name, r) in [
            ("bit_error_rate", self.bit_error_rate),
            ("stuck_at_zero_rate", self.stuck_at_zero_rate),
            ("stuck_at_one_rate", self.stuck_at_one_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(ImcError::InvalidSpec {
                    reason: format!("{name} = {r} outside [0, 1]"),
                });
            }
        }
        if self.stuck_at_zero_rate + self.stuck_at_one_rate > 1.0 {
            return Err(ImcError::InvalidSpec { reason: "stuck-at rates sum above 1".into() });
        }
        Ok(())
    }

    /// Whether the model injects no faults at all.
    pub fn is_ideal(&self) -> bool {
        self.bit_error_rate == 0.0
            && self.stuck_at_zero_rate == 0.0
            && self.stuck_at_one_rate == 0.0
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::ideal()
    }
}

/// An [`AmMapping`] programmed onto faulty arrays.
///
/// Faults are sampled once at construction (they model manufacturing and
/// programming defects, which are static per chip); every subsequent search
/// sees the same perturbed cells.
///
/// # Example
///
/// ```
/// use hd_linalg::BitVector;
/// use hdc::BinaryAm;
/// use imc_sim::{AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let am = BinaryAm::from_centroids(2, vec![
///     (0, BitVector::from_bools(&[true; 64])),
///     (1, BitVector::from_bools(&[false; 64])),
/// ])?;
/// let ideal = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic)?;
/// let faulty = FaultyAmMapping::program(&ideal, FaultModel::bit_flip(0.0), 1)?;
/// let q = BitVector::from_bools(&[true; 64]);
/// // Zero BER: identical to the ideal mapping.
/// assert_eq!(faulty.search(&q)?.scores, ideal.search(&q)?.scores);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultyAmMapping {
    mapping: AmMapping,
    model: FaultModel,
    flipped_cells: usize,
}

impl FaultyAmMapping {
    /// Programs the cells of `ideal` onto arrays with the given fault
    /// model, sampling faults deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] for invalid fault rates.
    pub fn program(ideal: &AmMapping, model: FaultModel, seed: u64) -> Result<Self> {
        model.validate()?;
        if model.is_ideal() {
            return Ok(FaultyAmMapping { mapping: ideal.clone(), model, flipped_cells: 0 });
        }
        let mut rng = seeded(derive_seed(seed, 0x6661756c)); // "faul"
        let mut mapping = ideal.clone();
        let mut flipped = 0usize;
        mapping.for_each_cell_mut(|bit| {
            let original = *bit;
            // Stuck-at faults take precedence over transient flips.
            let r: f64 = rng.gen();
            if r < model.stuck_at_zero_rate {
                *bit = false;
            } else if r < model.stuck_at_zero_rate + model.stuck_at_one_rate {
                *bit = true;
            } else if rng.gen_bool(model.bit_error_rate) {
                *bit = !*bit;
            }
            if *bit != original {
                flipped += 1;
            }
        });
        Ok(FaultyAmMapping { mapping, model, flipped_cells: flipped })
    }

    /// Injects *additional* faults into the already-perturbed cells —
    /// modeling in-field degradation (retention loss, drift) on top of the
    /// programming-time defects sampled by [`FaultyAmMapping::program`].
    ///
    /// Returns a new mapping; the original is untouched, so a serving
    /// layer can keep answering queries from the old snapshot while the
    /// degraded one is prepared and then republished atomically.
    /// `flipped_cells` of the result counts perturbation events across
    /// both rounds (a double-flipped cell counts twice); use
    /// [`FaultyAmMapping::effective_flipped`] against a reference mapping
    /// for the net corruption.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] for invalid fault rates.
    pub fn inject(&self, model: FaultModel, seed: u64) -> Result<Self> {
        let degraded = FaultyAmMapping::program(&self.mapping, model, seed)?;
        Ok(FaultyAmMapping {
            mapping: degraded.mapping,
            model,
            flipped_cells: self.flipped_cells + degraded.flipped_cells,
        })
    }

    /// The fault model of the **most recent** programming or injection
    /// round: [`FaultyAmMapping::program`]'s model for a fresh array,
    /// the last [`FaultyAmMapping::inject`]'s model afterwards. Earlier
    /// rounds' perturbations remain in the cells (see
    /// [`FaultyAmMapping::flipped_cells`] for the cumulative count) but
    /// are not described by this value.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// Number of perturbation **events** accumulated across
    /// [`FaultyAmMapping::program`] and every subsequent
    /// [`FaultyAmMapping::inject`] round. A cell flipped in two rounds
    /// counts **twice** even though its final value may equal the
    /// programmed one — this is a wear/activity counter, not a corruption
    /// measure. For the number of cells that currently differ from a
    /// reference mapping, use [`FaultyAmMapping::effective_flipped`].
    pub fn flipped_cells(&self) -> usize {
        self.flipped_cells
    }

    /// Number of cells whose **current** value differs from `ideal` — the
    /// effective corruption, where an even number of flips on the same
    /// cell cancels out. Contrast with [`FaultyAmMapping::flipped_cells`],
    /// which counts perturbation events and can exceed this after
    /// multiple injection rounds.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if `ideal`'s logical shape
    /// differs from this mapping's.
    pub fn effective_flipped(&self, ideal: &AmMapping) -> Result<usize> {
        self.mapping.diff_cells(ideal)
    }

    /// Associative search on the faulty arrays.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] on a bad query width.
    pub fn search(&self, query: &BitVector) -> Result<InferenceStats> {
        self.mapping.search(query)
    }

    /// Batched associative search on the faulty arrays (the preferred
    /// path for accuracy sweeps over whole test sets).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] on a bad batch width.
    pub fn search_batch(
        &self,
        batch: &hd_linalg::QueryBatch,
    ) -> Result<crate::mapping::BatchInferenceStats> {
        self.mapping.search_batch(batch)
    }

    /// Batched top-k associative search on the faulty arrays.
    ///
    /// # Errors
    ///
    /// As [`AmMapping::search_batch_topk`].
    pub fn search_batch_topk(
        &self,
        batch: &hd_linalg::QueryBatch,
        k: usize,
    ) -> Result<crate::mapping::TopKBatchStats> {
        self.mapping.search_batch_topk(batch, k)
    }

    /// Batched cascade search on the faulty arrays: predictions are
    /// bit-exact against [`FaultyAmMapping::search_batch`] on the same
    /// perturbed cells (fault injection invalidates any cascade bound
    /// artifacts cached before the flips, so the pruning bound always
    /// describes the bits actually programmed).
    ///
    /// # Errors
    ///
    /// As [`AmMapping::search_batch_cascade`].
    pub fn search_batch_cascade(
        &self,
        batch: &hd_linalg::QueryBatch,
        plan: &hd_linalg::CascadePlan,
    ) -> Result<crate::mapping::CascadeBatchStats> {
        self.mapping.search_batch_cascade(batch, plan)
    }

    /// The underlying (perturbed) mapping.
    pub fn as_mapping(&self) -> &AmMapping {
        &self.mapping
    }

    /// Mutable access for the scrubbing layer, which reprograms corrupted
    /// rows in place from a golden reference.
    pub(crate) fn mapping_mut(&mut self) -> &mut AmMapping {
        &mut self.mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArraySpec, MappingStrategy};
    use hdc::BinaryAm;

    fn small_am(dim: usize, seed: u64) -> BinaryAm {
        let mut rng = seeded(seed);
        let centroids: Vec<(usize, BitVector)> = (0..4)
            .map(|v| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                (v % 2, BitVector::from_bools(&bits))
            })
            .collect();
        BinaryAm::from_centroids(2, centroids).unwrap()
    }

    fn mapping(dim: usize, seed: u64) -> AmMapping {
        AmMapping::new(&small_am(dim, seed), ArraySpec::default(), MappingStrategy::Basic).unwrap()
    }

    #[test]
    fn zero_ber_is_identity() {
        let ideal = mapping(96, 1);
        let faulty = FaultyAmMapping::program(&ideal, FaultModel::ideal(), 7).unwrap();
        assert_eq!(faulty.flipped_cells(), 0);
        let mut rng = seeded(3);
        let bits: Vec<bool> = (0..96).map(|_| rng.gen()).collect();
        let q = BitVector::from_bools(&bits);
        assert_eq!(faulty.search(&q).unwrap().scores, ideal.search(&q).unwrap().scores);
    }

    #[test]
    fn full_ber_flips_everything() {
        let ideal = mapping(64, 2);
        let faulty = FaultyAmMapping::program(&ideal, FaultModel::bit_flip(1.0), 7).unwrap();
        assert_eq!(faulty.flipped_cells(), 4 * 64);
    }

    #[test]
    fn ber_flip_fraction_approximate() {
        let ideal = mapping(512, 3);
        let faulty = FaultyAmMapping::program(&ideal, FaultModel::bit_flip(0.1), 11).unwrap();
        let total = 4 * 512;
        let frac = faulty.flipped_cells() as f64 / total as f64;
        assert!((frac - 0.1).abs() < 0.04, "flip fraction {frac}");
    }

    #[test]
    fn stuck_at_one_saturates() {
        let ideal = mapping(64, 4);
        let model =
            FaultModel { bit_error_rate: 0.0, stuck_at_zero_rate: 0.0, stuck_at_one_rate: 1.0 };
        let faulty = FaultyAmMapping::program(&ideal, model, 5).unwrap();
        // Every query now scores popcount(query) against every centroid.
        let q = BitVector::from_bools(&[true; 64]);
        let scores = faulty.search(&q).unwrap().scores;
        assert!(scores.iter().all(|&s| s == 64));
    }

    #[test]
    fn deterministic_under_seed() {
        let ideal = mapping(128, 5);
        let a = FaultyAmMapping::program(&ideal, FaultModel::bit_flip(0.2), 9).unwrap();
        let b = FaultyAmMapping::program(&ideal, FaultModel::bit_flip(0.2), 9).unwrap();
        let mut rng = seeded(6);
        let bits: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
        let q = BitVector::from_bools(&bits);
        assert_eq!(a.search(&q).unwrap().scores, b.search(&q).unwrap().scores);
        assert_eq!(a.flipped_cells(), b.flipped_cells());
    }

    #[test]
    fn inject_degrades_cumulatively() {
        let ideal = mapping(256, 7);
        let first = FaultyAmMapping::program(&ideal, FaultModel::bit_flip(0.05), 3).unwrap();
        let degraded = first.inject(FaultModel::bit_flip(0.05), 4).unwrap();
        assert!(degraded.flipped_cells() >= first.flipped_cells());
        // The original snapshot is untouched (serve layers rely on this
        // for hot republish).
        let mut rng = seeded(8);
        let bits: Vec<bool> = (0..256).map(|_| rng.gen()).collect();
        let q = BitVector::from_bools(&bits);
        let before = first.search(&q).unwrap().scores.clone();
        let _ = degraded.search(&q).unwrap();
        assert_eq!(first.search(&q).unwrap().scores, before);
        // Zero-rate injection is an identity on the cells.
        let same = first.inject(FaultModel::ideal(), 9).unwrap();
        assert_eq!(same.search(&q).unwrap().scores, before);
        assert_eq!(same.flipped_cells(), first.flipped_cells());
    }

    #[test]
    fn invalid_rates_rejected() {
        let ideal = mapping(64, 6);
        let bad =
            FaultModel { bit_error_rate: 0.0, stuck_at_zero_rate: 0.7, stuck_at_one_rate: 0.7 };
        assert!(FaultyAmMapping::program(&ideal, bad, 1).is_err());
        let bad = FaultModel { bit_error_rate: 1.5, ..FaultModel::ideal() };
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "bit error rate")]
    fn bit_flip_constructor_panics_out_of_range() {
        FaultModel::bit_flip(2.0);
    }

    #[test]
    fn fault_injection_invalidates_cascade_bounds_and_stays_exact() {
        use hd_linalg::{CascadePlan, QueryBatch};
        let mut rng = seeded(21);
        let queries: Vec<BitVector> = (0..9)
            .map(|_| BitVector::from_bools(&(0..512).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let am = small_am(512, 20);
        for strategy in [MappingStrategy::Basic, MappingStrategy::Partitioned { partitions: 4 }] {
            let ideal = AmMapping::new(&am, ArraySpec::default(), strategy).unwrap();
            let plan = CascadePlan::prefix(512, 128).unwrap();
            // Warm the ideal mapping's cascade bound caches, then degrade
            // through two injection rounds: the cached prefix sub-memory
            // and row-suffix tables describe the pre-fault bits and MUST
            // be re-derived, or the pruning bound would silently lie.
            let warm = ideal.search_batch_cascade(&batch, &plan).unwrap();
            assert_eq!(warm.predicted_rows, ideal.search_batch(&batch).unwrap().predicted_rows);
            let mut faulty =
                FaultyAmMapping::program(&ideal, FaultModel::bit_flip(0.2), 13).unwrap();
            for round in 0..2 {
                let exact = faulty.search_batch(&batch).unwrap();
                let cascade = faulty.search_batch_cascade(&batch, &plan).unwrap();
                assert_eq!(
                    cascade.predicted_rows, exact.predicted_rows,
                    "{strategy:?} round {round}: cascade must track the faulty bits"
                );
                assert_eq!(cascade.predicted_classes, exact.predicted_classes);
                faulty = faulty.inject(FaultModel::bit_flip(0.2), 14 + round).unwrap();
            }
        }
    }
}
