//! IMC array geometry.

use crate::error::{ImcError, Result};

/// Physical dimensions of one IMC array (wordlines × bitlines).
///
/// The paper's evaluation standardizes on 128×128 SRAM arrays
/// ([`ArraySpec::default`]).
///
/// # Example
///
/// ```
/// use imc_sim::ArraySpec;
///
/// let spec = ArraySpec::default();
/// assert_eq!((spec.rows(), spec.cols()), (128, 128));
/// let big = ArraySpec::new(256, 512).unwrap();
/// assert_eq!(big.cells(), 256 * 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArraySpec {
    rows: usize,
    cols: usize,
}

impl ArraySpec {
    /// Creates an array specification.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(ImcError::InvalidSpec {
                reason: format!("{rows}x{cols} has a zero dimension"),
            });
        }
        Ok(ArraySpec { rows, cols })
    }

    /// Rows (wordlines) per array.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (bitlines) per array.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total cells per array.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for ArraySpec {
    /// The paper's 128×128 SRAM array.
    fn default() -> Self {
        ArraySpec { rows: 128, cols: 128 }
    }
}

impl std::fmt::Display for ArraySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// The tile decomposition of a `rows × cols` logical matrix over arrays of
/// a given [`ArraySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    /// Tiles along the row (wordline) dimension.
    pub row_tiles: usize,
    /// Tiles along the column (bitline) dimension.
    pub col_tiles: usize,
}

impl TileGrid {
    /// Total number of tiles (= arrays needed, = cycles when serialized
    /// onto one physical array and every tile is driven once).
    pub fn tiles(&self) -> usize {
        self.row_tiles * self.col_tiles
    }
}

/// Computes the tile grid for mapping a `rows × cols` logical matrix.
///
/// This is the arithmetic behind every arrays/cycles entry in Table II:
/// `ceil(rows / spec.rows) × ceil(cols / spec.cols)`.
///
/// # Example
///
/// ```
/// use imc_sim::{tile_grid, ArraySpec};
///
/// // BasicHDC EM on MNIST: 784 × 10240 over 128×128 arrays = 7 × 80.
/// let g = tile_grid(784, 10240, ArraySpec::default());
/// assert_eq!(g.tiles(), 560);
/// ```
pub fn tile_grid(rows: usize, cols: usize, spec: ArraySpec) -> TileGrid {
    TileGrid { row_tiles: rows.div_ceil(spec.rows()), col_tiles: cols.div_ceil(spec.cols()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_128x128() {
        let s = ArraySpec::default();
        assert_eq!(s.rows(), 128);
        assert_eq!(s.cols(), 128);
        assert_eq!(s.cells(), 16384);
        assert_eq!(s.to_string(), "128x128");
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(ArraySpec::new(0, 128).is_err());
        assert!(ArraySpec::new(128, 0).is_err());
    }

    #[test]
    fn table2_em_grids() {
        let spec = ArraySpec::default();
        // MNIST/FMNIST EM: 784 × 10240 -> 7 × 80 = 560 (Table II basic).
        assert_eq!(tile_grid(784, 10240, spec).tiles(), 560);
        // ISOLET EM: 617 × 10240 -> 5 × 80 = 400.
        assert_eq!(tile_grid(617, 10240, spec).tiles(), 400);
        // MEMHD MNIST EM: 784 × 128 -> 7 × 1 = 7.
        assert_eq!(tile_grid(784, 128, spec).tiles(), 7);
        // MEMHD ISOLET EM: 617 × 512 -> 5 × 4 = 20.
        assert_eq!(tile_grid(617, 512, spec).tiles(), 20);
    }

    #[test]
    fn table2_am_grids() {
        let spec = ArraySpec::default();
        // BasicHDC AM: 10240 × 10 -> 80 × 1 = 80.
        assert_eq!(tile_grid(10240, 10, spec).tiles(), 80);
        // Partitioned P=5: 2048 × 50 -> 16 × 1 = 16 arrays.
        assert_eq!(tile_grid(2048, 50, spec).tiles(), 16);
        // Partitioned P=10: 1024 × 100 -> 8 × 1 = 8 arrays.
        assert_eq!(tile_grid(1024, 100, spec).tiles(), 8);
        // MEMHD 128×128 -> exactly 1.
        assert_eq!(tile_grid(128, 128, spec).tiles(), 1);
        // MEMHD ISOLET 512 × 128 -> 4.
        assert_eq!(tile_grid(512, 128, spec).tiles(), 4);
    }

    #[test]
    fn exact_fit_has_no_padding_tiles() {
        let g = tile_grid(256, 256, ArraySpec::default());
        assert_eq!(g.row_tiles, 2);
        assert_eq!(g.col_tiles, 2);
    }
}
