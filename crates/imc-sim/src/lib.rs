//! SRAM-based in-memory-computing (IMC) array simulator.
//!
//! Models the hardware side of the MEMHD paper: binary matrices (encoding
//! module and associative memory) are **mapped onto fixed-size IMC arrays**
//! (default 128×128), and inference is executed tile by tile, counting
//! the three metrics of Table II —
//!
//! * **computation cycles** — tile-MVM activations needed per inference
//!   when the design is serialized onto a single physical array;
//! * **array usage** — number of arrays required to hold the whole
//!   structure;
//! * **AM utilization** — fraction of mapped column capacity actually
//!   holding class vectors;
//!
//! plus the energy model behind Fig. 7 ([`EnergyModel`]).
//!
//! The simulation is **functional**: [`AmMapping::search`] computes real
//! popcount MVMs over the programmed tiles, so mapped inference is
//! bit-exact against the software associative search — a property the test
//! suite checks — while also reporting cycle/energy telemetry.
//!
//! Three mapping strategies are modeled (paper Fig. 1):
//!
//! * [`MappingStrategy::Basic`] — class vectors as columns of a `D × k`
//!   logical matrix; high array usage, tiny column utilization.
//! * [`MappingStrategy::Partitioned`] — hypervectors split into `P`
//!   segments mapped across unused columns (the method of Karunaratne et
//!   al.); fewer arrays, same cycle count (each array is re-driven once per
//!   partition with only that partition's columns active).
//! * MEMHD's fully-utilized mapping is simply `Basic` applied to its
//!   `D × C` multi-centroid AM, which fits the array exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod energy;
mod error;
mod faults;
mod mapping;
mod replicate;
mod scrub;
mod spec;
mod system;

pub use adc::AdcModel;
pub use energy::EnergyModel;
pub use error::{ImcError, Result};
pub use faults::{FaultModel, FaultyAmMapping};
pub use mapping::{
    AmMapping, BatchInferenceStats, CascadeBatchStats, InferenceStats, MappingStats,
    MappingStrategy, TopKBatchStats,
};
pub use replicate::ReplicatedAmMapping;
pub use scrub::{ScrubConfig, ScrubReport, Scrubber};
pub use spec::{tile_grid, ArraySpec, TileGrid};
pub use system::{batch_system_report, system_report, BatchSystemReport, SystemReport};
