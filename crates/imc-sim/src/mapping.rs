//! Mapping associative memories onto IMC arrays (paper Fig. 1, Table II).
//!
//! The logical AM is a `D × V` binary matrix: hypervector dimensions on
//! wordlines, class vectors on bitlines. [`AmMapping`] programs that matrix
//! into fixed-size tiles and executes associative searches tile by tile,
//! counting cycles exactly as the paper does: one cycle per tile
//! activation, with partitioned layouts re-driving each array once per
//! partition (only that partition's columns active).

use crate::energy::EnergyModel;
use crate::error::{ImcError, Result};
use crate::spec::{tile_grid, ArraySpec};
use hd_linalg::{
    BitMatrix, BitVector, CascadePlan, CascadeStats, QueryBatch, ScoreMatrix, SearchMemory,
    SegmentedCascade,
};
use hdc::{BinaryAm, SearchHit};
use std::sync::{Arc, Mutex};

/// How the AM is laid out across arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingStrategy {
    /// One logical `D × V` matrix tiled directly (paper Fig. 1a).
    ///
    /// MEMHD's fully-utilized mapping (Fig. 1c) is this strategy applied to
    /// an AM whose `D` and `V = C` match the array dimensions.
    #[default]
    Basic,
    /// Hypervectors split into `partitions` segments of `D/P` dimensions,
    /// mapped across otherwise-unused columns (paper Fig. 1b). Uses fewer
    /// arrays but needs `P` activations per array, so the cycle count does
    /// not drop.
    Partitioned {
        /// Number of segments `P`. Must divide `D`.
        partitions: usize,
    },
}

impl MappingStrategy {
    fn partitions(&self) -> usize {
        match self {
            MappingStrategy::Basic => 1,
            MappingStrategy::Partitioned { partitions } => *partitions,
        }
    }
}

/// Static cost metrics of a mapping — one row of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingStats {
    /// Arrays required to hold the structure.
    pub arrays: usize,
    /// Tile activations per inference (serialized onto one physical array).
    pub cycles: usize,
    /// Mapped columns / total column capacity of the occupied arrays.
    pub utilization: f64,
}

/// Result of one mapped associative search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceStats {
    /// Per-centroid dot-similarity scores, identical to the software
    /// associative search.
    pub scores: Vec<u32>,
    /// Winning centroid row.
    pub predicted_row: usize,
    /// Class owning the winning centroid.
    pub predicted_class: usize,
    /// Tile activations consumed.
    pub cycles: usize,
}

/// Result of a batched mapped associative search
/// ([`AmMapping::search_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInferenceStats {
    /// `Q × V` dot-similarity scores, bit-exact against the software
    /// batched search.
    pub scores: ScoreMatrix,
    /// Winning centroid row per query.
    pub predicted_rows: Vec<usize>,
    /// Class owning the winning centroid, per query.
    pub predicted_classes: Vec<usize>,
    /// Tile activations consumed **per query**; the array answers queries
    /// independently, so a batch of `Q` costs `Q × cycles_per_query`.
    pub cycles_per_query: usize,
}

impl BatchInferenceStats {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.predicted_rows.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.predicted_rows.is_empty()
    }

    /// Total tile activations for the whole batch.
    pub fn total_cycles(&self) -> usize {
        self.cycles_per_query * self.len()
    }
}

/// Result of a batched top-k mapped associative search
/// ([`AmMapping::search_batch_topk`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKBatchStats {
    /// Per-query k-best centroids, sorted by score descending then row
    /// ascending — bit-exact against sorting the full
    /// [`AmMapping::search_batch`] score row. Each inner list holds
    /// `min(k, V)` hits.
    pub hits: Vec<Vec<SearchHit>>,
    /// Tile activations consumed per query (top-k reads the same tiles
    /// an argmax search does).
    pub cycles_per_query: usize,
}

impl TopKBatchStats {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Total tile activations for the whole batch.
    pub fn total_cycles(&self) -> usize {
        self.cycles_per_query * self.len()
    }
}

/// Result of a batched **cascade** search on the mapped arrays
/// ([`AmMapping::search_batch_cascade`]): the same predictions the exact
/// mapped search produces, plus the activated-dimension telemetry the
/// paper's Fig. 7 energy ladder is proportional to.
///
/// The array evaluates an associative search column group by column
/// group; a cascade gates the bitlines of centroids that provably cannot
/// win, so the energy of the batch scales with `activated_dims` instead
/// of `queries × centroids × D`. With a one-stage plan no pruning can
/// fire and [`CascadeBatchStats::activation_fraction`] is exactly 1 — the
/// exact search's energy is recovered, which is how the Fig. 7 ladder
/// re-derives from this telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeBatchStats {
    /// Winning centroid row per query — bit-exact against
    /// [`AmMapping::search_batch`].
    pub predicted_rows: Vec<usize>,
    /// Class owning the winning centroid, per query.
    pub predicted_classes: Vec<usize>,
    /// Activation telemetry of the prefix-pruned sweep.
    pub cascade: CascadeStats,
    /// Tile activations an **exact** search costs per query (the Fig. 7
    /// denominator this mapping contributes).
    pub exact_cycles_per_query: usize,
}

impl CascadeBatchStats {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.predicted_rows.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.predicted_rows.is_empty()
    }

    /// Total `(centroid, dimension)` products activated across the
    /// batch.
    pub fn activated_dims(&self) -> u64 {
        self.cascade.activated_dims()
    }

    /// `(centroid, dimension)` products an exact search would activate:
    /// `queries × centroids × D`.
    pub fn exact_dims(&self) -> u64 {
        self.cascade.exact_dims()
    }

    /// Activated fraction in `(0, 1]` — the batch's relative energy
    /// under the activation-proportional model (1.0 when no pruning
    /// fired).
    pub fn activation_fraction(&self) -> f64 {
        self.cascade.activation_fraction()
    }

    /// Equivalent whole-batch tile activations: the exact batch cost
    /// scaled by the activated fraction. Fractional because a partially
    /// gated activation costs a fraction of a full one.
    pub fn equivalent_cycles(&self) -> f64 {
        (self.exact_cycles_per_query * self.len()) as f64 * self.activation_fraction()
    }

    /// Whole-batch inference energy under `model`: the exact batch
    /// energy scaled by the activated fraction.
    pub fn inference_energy_pj(&self, model: &EnergyModel) -> f64 {
        model.scaled_inference_energy_pj(
            self.exact_cycles_per_query * self.len(),
            self.activation_fraction(),
        )
    }
}

/// A binary associative memory programmed onto IMC arrays.
///
/// # Example
///
/// ```
/// use hd_linalg::BitVector;
/// use hdc::BinaryAm;
/// use imc_sim::{AmMapping, ArraySpec, MappingStrategy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let am = BinaryAm::from_centroids(2, vec![
///     (0, BitVector::from_bools(&[true, true, false, false])),
///     (1, BitVector::from_bools(&[false, false, true, true])),
/// ])?;
/// let mapping = AmMapping::new(&am, ArraySpec::new(2, 2)?, MappingStrategy::Basic)?;
/// let hit = mapping.search(&BitVector::from_bools(&[true, true, false, false]))?;
/// assert_eq!(hit.predicted_class, 0);
/// assert_eq!(hit.scores, vec![2, 0]); // bit-exact vs. software search
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AmMapping {
    spec: ArraySpec,
    strategy: MappingStrategy,
    /// Full hypervector dimensionality `D`.
    dim: usize,
    /// Number of stored class vectors `V`.
    num_vectors: usize,
    classes: Vec<usize>,
    /// Segment length `D / P`.
    seg_len: usize,
    /// Packed logical columns, one memory per partition: row `v` of
    /// `partitions[p]` holds segment `p` of class vector `v` (`seg_len`
    /// bits). Physically these are the bitline columns of the arrays; the
    /// per-partition split lets batched searches run the shared kernel
    /// dispatch directly on each partition, and holding a
    /// [`SearchMemory`] keeps each partition's SIMD-blocked mirror packed
    /// once instead of per batch.
    partitions: Vec<SearchMemory>,
    /// Most-recent partitioned cascade handle (the logical row-suffix
    /// table), keyed by its plan. Rebuilt when a different plan arrives
    /// and dropped whenever fault injection flips a programmed cell —
    /// basic layouts instead ride the [`SearchMemory`]-internal bound
    /// cache of their single partition.
    segmented_bound: Mutex<Option<Arc<SegmentedCascade>>>,
}

impl Clone for AmMapping {
    fn clone(&self) -> Self {
        AmMapping {
            spec: self.spec,
            strategy: self.strategy,
            dim: self.dim,
            num_vectors: self.num_vectors,
            classes: self.classes.clone(),
            seg_len: self.seg_len,
            partitions: self.partitions.clone(),
            // The handle describes the (identical) cloned bits; sharing
            // the Arc is safe because invalidation replaces, never
            // mutates, the pointee.
            segmented_bound: Mutex::new(
                self.segmented_bound.lock().map(|g| g.clone()).unwrap_or(None),
            ),
        }
    }
}

impl AmMapping {
    /// Programs `am` onto arrays of the given spec with the given layout.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidPartitioning`] if the partition count is
    /// zero or does not divide the AM's dimensionality.
    pub fn new(am: &BinaryAm, spec: ArraySpec, strategy: MappingStrategy) -> Result<Self> {
        let dim = am.dim();
        let num_vectors = am.num_centroids();
        let p = strategy.partitions();
        if p == 0 {
            return Err(ImcError::InvalidPartitioning {
                dim,
                partitions: p,
                reason: "partition count must be positive".into(),
            });
        }
        if !dim.is_multiple_of(p) {
            return Err(ImcError::InvalidPartitioning {
                dim,
                partitions: p,
                reason: "partition count must divide the dimensionality".into(),
            });
        }
        let seg_len = dim / p;

        let mut matrices = vec![BitMatrix::zeros(num_vectors, seg_len); p];
        for v in 0..num_vectors {
            let row = am.centroid(v);
            for (part, matrix) in matrices.iter_mut().enumerate() {
                matrix
                    .set_row(v, &row.slice(part * seg_len, seg_len))
                    .expect("segment width matches partition matrix");
            }
        }
        let partitions = matrices.into_iter().map(SearchMemory::new).collect();

        Ok(AmMapping {
            spec,
            strategy,
            dim,
            num_vectors,
            classes: am.class_labels().to_vec(),
            seg_len,
            partitions,
            segmented_bound: Mutex::new(None),
        })
    }

    /// The array geometry this mapping targets.
    pub fn spec(&self) -> ArraySpec {
        self.spec
    }

    /// The layout strategy.
    pub fn strategy(&self) -> MappingStrategy {
        self.strategy
    }

    /// Full hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored class vectors `V` (searchable centroids),
    /// independent of the partition layout.
    pub fn num_vectors(&self) -> usize {
        self.num_vectors
    }

    /// Logical AM shape as mapped: `(rows, cols) = (D/P, V·P)` — the
    /// "AM Structure" row of Table II.
    pub fn logical_shape(&self) -> (usize, usize) {
        (self.seg_len, self.num_vectors * self.strategy.partitions())
    }

    /// Static cost metrics (Table II row).
    pub fn stats(&self) -> MappingStats {
        let (rows, cols) = self.logical_shape();
        let grid = tile_grid(rows, cols, self.spec);
        let p = self.strategy.partitions();

        // Cycles: each partition drives every row tile once, activating
        // only the column tiles that contain that partition's columns.
        let row_tiles = grid.row_tiles;
        let mut cycles = 0usize;
        for part in 0..p {
            let first_col = part * self.num_vectors;
            let last_col = (part + 1) * self.num_vectors - 1;
            let first_tile = first_col / self.spec.cols();
            let last_tile = last_col / self.spec.cols();
            cycles += row_tiles * (last_tile - first_tile + 1);
        }

        let capacity = grid.col_tiles * self.spec.cols();
        MappingStats { arrays: grid.tiles(), cycles, utilization: cols as f64 / capacity as f64 }
    }

    /// Executes one associative search on the mapped arrays.
    ///
    /// Functionally identical to [`BinaryAm::search`] on the original
    /// memory — the tiles hold the same bits — while counting tile
    /// activations.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] if the query length is
    /// not `D`.
    pub fn search(&self, query: &BitVector) -> Result<InferenceStats> {
        if query.len() != self.dim {
            return Err(ImcError::QueryDimensionMismatch {
                expected: self.dim,
                found: query.len(),
            });
        }
        let mut scores = vec![0u32; self.num_vectors];
        for (part, memory) in self.partitions.iter().enumerate() {
            let seg = query.slice(part * self.seg_len, self.seg_len);
            for (v, slot) in scores.iter_mut().enumerate() {
                *slot += memory.row_dot(v, &seg);
            }
        }

        let (best, _) = hd_linalg::argmax_u32(&scores);
        Ok(InferenceStats {
            predicted_row: best,
            predicted_class: self.classes[best],
            cycles: self.stats().cycles,
            scores,
        })
    }

    /// Executes a batched associative search on the mapped arrays: every
    /// query's per-partition segment MVMs run through the shared tiled
    /// popcount kernel, and partial scores accumulate digitally — exactly
    /// `Q` independent copies of [`AmMapping::search`], bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] if the batch width is
    /// not `D`.
    pub fn search_batch(&self, batch: &QueryBatch) -> Result<BatchInferenceStats> {
        if batch.dim() != self.dim {
            return Err(ImcError::QueryDimensionMismatch {
                expected: self.dim,
                found: batch.dim(),
            });
        }
        let q = batch.len();
        let mut scores = ScoreMatrix::zeros(q, self.num_vectors);
        if self.partitions.len() == 1 {
            // Basic / MEMHD layout: the batch drives the one partition
            // directly — no segment extraction at all.
            self.partitions[0]
                .dot_batch_into(batch, &mut scores)
                .expect("basic layout matches the full query width");
        } else {
            // Partitioned layout: drive every partition with the batch's
            // cached segmented view (zero-copy windows on the word grid,
            // one-time packs off it) and accumulate the partials —
            // repeat batches stop rebuilding their segments every call.
            let seg_batches =
                batch.segments(self.seg_len).expect("mapping width is partitions x seg_len");
            let mut scratch = ScoreMatrix::zeros(0, 0);
            for (part, memory) in self.partitions.iter().enumerate() {
                memory
                    .dot_batch_into(&seg_batches[part], &mut scratch)
                    .expect("segment width matches partition matrix");
                for i in 0..q {
                    let partials = scratch.scores(i);
                    for (dst, &s) in scores.scores_mut(i).iter_mut().zip(partials) {
                        *dst += s;
                    }
                }
            }
        }

        let mut predicted_rows = Vec::with_capacity(q);
        let mut predicted_classes = Vec::with_capacity(q);
        for i in 0..q {
            let (best, _) = scores.argmax(i);
            predicted_rows.push(best);
            predicted_classes.push(self.classes[best]);
        }
        Ok(BatchInferenceStats {
            scores,
            predicted_rows,
            predicted_classes,
            cycles_per_query: self.stats().cycles,
        })
    }

    /// Executes a batched **top-k** associative search on the mapped
    /// arrays: per query, the `min(k, V)` best centroids sorted by score
    /// descending then row ascending — bit-exact against stably sorting
    /// the full [`AmMapping::search_batch`] score row. The basic layout
    /// runs the fused bounded k-best sweep directly on its one partition;
    /// a partitioned layout accumulates per-segment partials and selects
    /// at the end (every column must be driven through every partition
    /// regardless, so there is nothing for a threshold to skip).
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] when `k == 0` and
    /// [`ImcError::QueryDimensionMismatch`] if the batch width is not
    /// `D`.
    pub fn search_batch_topk(&self, batch: &QueryBatch, k: usize) -> Result<TopKBatchStats> {
        if k == 0 {
            return Err(ImcError::InvalidSpec { reason: "top-k search requires k >= 1".into() });
        }
        if batch.dim() != self.dim {
            return Err(ImcError::QueryDimensionMismatch {
                expected: self.dim,
                found: batch.dim(),
            });
        }
        let q = batch.len();
        let hits = if self.partitions.len() == 1 {
            let raw = self.partitions[0]
                .topk_batch(batch, k)
                .expect("dimensions validated above and mappings store at least one vector");
            (0..raw.len())
                .map(|i| {
                    raw.hits(i)
                        .iter()
                        .map(|&(row, score)| SearchHit { row, class: self.classes[row], score })
                        .collect()
                })
                .collect()
        } else {
            let mut scores = ScoreMatrix::zeros(q, self.num_vectors);
            let seg_batches =
                batch.segments(self.seg_len).expect("mapping width is partitions x seg_len");
            let mut scratch = ScoreMatrix::zeros(0, 0);
            for (part, memory) in self.partitions.iter().enumerate() {
                memory
                    .dot_batch_into(&seg_batches[part], &mut scratch)
                    .expect("segment width matches partition matrix");
                for i in 0..q {
                    let partials = scratch.scores(i);
                    for (dst, &s) in scores.scores_mut(i).iter_mut().zip(partials) {
                        *dst += s;
                    }
                }
            }
            (0..q)
                .map(|i| {
                    select_topk(scores.scores(i), k)
                        .into_iter()
                        .map(|(row, score)| SearchHit { row, class: self.classes[row], score })
                        .collect()
                })
                .collect()
        };
        Ok(TopKBatchStats { hits, cycles_per_query: self.stats().cycles })
    }

    /// Executes a batched **cascade** search on the mapped arrays:
    /// dimension prefixes are driven first, centroid columns that
    /// provably cannot win are gated off (Hamming bound), and only the
    /// survivors see the remaining wordlines. Predictions are bit-exact
    /// against [`AmMapping::search_batch`]; the returned telemetry
    /// reports the activated-dimension count the paper's Fig. 7 energy
    /// ladder is proportional to.
    ///
    /// Both layouts cascade. The basic (MEMHD fully-utilized) layout
    /// prunes at arbitrary stage boundaries; a partitioned layout drives
    /// each array once per segment, so stages can only end where
    /// segments do — every interior stage boundary must be a multiple of
    /// the segment length `D / P` (snap a tuned plan with
    /// [`CascadePlan::snapped`]). Pruned centroids carry their shortlist
    /// across partitions: a column gated off after one segment's
    /// activation stays off for every later segment.
    ///
    /// The plan's derived artifacts (prefix sub-memory or logical
    /// row-suffix table) are cached on the mapping and reused across
    /// batches; fault injection invalidates them.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] if the batch or plan
    /// width is not `D`, and [`ImcError::CascadeStageMisaligned`] when a
    /// partitioned layout gets a plan whose stage boundary misses every
    /// segment boundary.
    pub fn search_batch_cascade(
        &self,
        batch: &QueryBatch,
        plan: &CascadePlan,
    ) -> Result<CascadeBatchStats> {
        if batch.dim() != self.dim {
            return Err(ImcError::QueryDimensionMismatch {
                expected: self.dim,
                found: batch.dim(),
            });
        }
        if plan.dim() != self.dim {
            return Err(ImcError::QueryDimensionMismatch { expected: self.dim, found: plan.dim() });
        }
        let results = if self.partitions.len() == 1 {
            self.partitions[0].search_cascade(batch, plan).expect("dimensions validated above")
        } else {
            for (stage, &end) in plan.ends()[..plan.stages() - 1].iter().enumerate() {
                if !end.is_multiple_of(self.seg_len) {
                    return Err(ImcError::CascadeStageMisaligned {
                        stage,
                        end,
                        seg_len: self.seg_len,
                    });
                }
            }
            let bound = self.segmented_bound(plan);
            bound.search(&self.partitions, batch).expect("layout and plan validated above")
        };
        let predicted_rows: Vec<usize> = results.winners().iter().map(|&(row, _)| row).collect();
        let predicted_classes = predicted_rows.iter().map(|&r| self.classes[r]).collect();
        let cascade = results.stats().clone();
        Ok(CascadeBatchStats {
            predicted_rows,
            predicted_classes,
            cascade,
            exact_cycles_per_query: self.stats().cycles,
        })
    }

    /// The cached partitioned cascade handle for `plan`, re-derived when
    /// the plan differs from the cached one. Callers must have validated
    /// the plan's dimensionality and stage alignment.
    fn segmented_bound(&self, plan: &CascadePlan) -> Arc<SegmentedCascade> {
        let mut guard =
            self.segmented_bound.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(bound) = guard.as_ref() {
            if bound.plan() == plan {
                return Arc::clone(bound);
            }
        }
        let bound = Arc::new(
            SegmentedCascade::new(&self.partitions, plan).expect("caller validated the plan"),
        );
        *guard = Some(Arc::clone(&bound));
        bound
    }

    /// Auto-tunes a cascade stage plan for this mapping from a sample of
    /// real queries (see [`CascadePlan::tuned`]). For a partitioned
    /// layout the logical memory is reassembled once and tuning runs
    /// directly on the segment-aligned candidate grid
    /// ([`CascadePlan::tuned_aligned`] with `unit = D / P`), so the
    /// returned plan is always valid for
    /// [`AmMapping::search_batch_cascade`] on this mapping **and** the
    /// tuner's exact-fallback guarantee holds: a layout too coarse to
    /// cascade profitably gets the exact one-stage plan back.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] when the sample
    /// width is not `D` and [`ImcError::InvalidSpec`] for an empty
    /// sample.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::{BitVector, QueryBatch};
    /// use hdc::BinaryAm;
    /// use imc_sim::{AmMapping, ArraySpec, MappingStrategy};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let am = BinaryAm::from_centroids(2, vec![
    ///     (0, BitVector::from_bools(&[true; 256])),
    ///     (1, BitVector::from_bools(&[false; 256])),
    /// ])?;
    /// let mapping = AmMapping::new(
    ///     &am,
    ///     ArraySpec::default(),
    ///     MappingStrategy::Partitioned { partitions: 2 },
    /// )?;
    /// let sample = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 256])])?;
    /// let plan = mapping.tuned_cascade_plan(&sample)?;
    /// let out = mapping.search_batch_cascade(&sample, &plan)?; // always aligned
    /// assert_eq!(out.predicted_rows, vec![0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn tuned_cascade_plan(&self, sample: &QueryBatch) -> Result<CascadePlan> {
        if sample.dim() != self.dim {
            return Err(ImcError::QueryDimensionMismatch {
                expected: self.dim,
                found: sample.dim(),
            });
        }
        let tune_on = |memory: &SearchMemory, unit: usize| {
            CascadePlan::tuned_aligned(memory, sample, unit).map_err(|e| ImcError::InvalidSpec {
                reason: format!("cascade plan tuning failed: {e}"),
            })
        };
        if self.partitions.len() == 1 {
            // Basic layout: any word-aligned boundary is legal.
            return tune_on(&self.partitions[0], 64);
        }
        // Reassemble the logical D-bit rows once: tuning is a
        // per-deployment derivation, and replaying candidate plans wants
        // the contiguous layout the tuner's cost model describes.
        // Word-aligned segments (every power-of-two partitioning)
        // concatenate as whole packed words; only unaligned segment
        // lengths fall back to per-bit assembly.
        let rows: Vec<BitVector> = (0..self.num_vectors)
            .map(|v| {
                if self.seg_len.is_multiple_of(64) {
                    let mut words = Vec::with_capacity(self.dim / 64);
                    for memory in &self.partitions {
                        words.extend_from_slice(memory.matrix().row(v).as_words());
                    }
                    BitVector::from_words(self.dim, words).expect("aligned segments concatenate")
                } else {
                    let mut bools = vec![false; self.dim];
                    for (part, memory) in self.partitions.iter().enumerate() {
                        let m = memory.matrix();
                        for c in 0..self.seg_len {
                            bools[part * self.seg_len + c] = m.get(v, c);
                        }
                    }
                    BitVector::from_bools(&bools)
                }
            })
            .collect();
        let logical = BitMatrix::from_rows(&rows).expect("mappings store at least one vector");
        tune_on(&SearchMemory::new(logical), self.seg_len)
    }

    /// Executes one associative search with per-cycle ADC readout.
    ///
    /// Each tile activation's column sums pass through `adc` before being
    /// accumulated digitally — the physical signal path of an analog IMC
    /// array. Partitioned mappings therefore quantize `P` partial sums per
    /// column (error compounds), while a one-shot MEMHD mapping quantizes
    /// each score exactly once: an architectural advantage of the
    /// fully-utilized layout that [`AmMapping::search`] (ideal readout)
    /// does not show.
    ///
    /// The ADC's full scale should normally be the segment length
    /// (`dim / P`), the largest possible column sum per activation.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] if the query length is
    /// not `D`.
    pub fn search_with_adc(
        &self,
        query: &BitVector,
        adc: &crate::AdcModel,
    ) -> Result<InferenceStats> {
        if query.len() != self.dim {
            return Err(ImcError::QueryDimensionMismatch {
                expected: self.dim,
                found: query.len(),
            });
        }
        let mut scores = vec![0u32; self.num_vectors];
        for (part, memory) in self.partitions.iter().enumerate() {
            let seg = query.slice(part * self.seg_len, self.seg_len);
            for (v, slot) in scores.iter_mut().enumerate() {
                *slot += adc.quantize(memory.row_dot(v, &seg));
            }
        }
        let (best, _) = hd_linalg::argmax_u32(&scores);
        Ok(InferenceStats {
            predicted_row: best,
            predicted_class: self.classes[best],
            cycles: self.stats().cycles,
            scores,
        })
    }

    /// Visits every programmed cell, allowing the fault-injection layer to
    /// perturb it. Cells are visited in a fixed (column-major by logical
    /// column, then bit) order so fault sampling is reproducible. Each
    /// partition's SIMD-blocked mirror is rebuilt once after its sweep —
    /// and only if the sweep actually flipped a bit. Any flip also drops
    /// the cached cascade bound artifacts (the per-partition
    /// [`SearchMemory`] caches invalidate themselves; the partitioned
    /// handle is dropped here), so the next cascade re-derives against
    /// the faulty bits and stays bit-exact vs. the faulty exact search.
    pub(crate) fn for_each_cell_mut<F: FnMut(&mut bool)>(&mut self, mut f: F) {
        let mut any_changed = false;
        for memory in &mut self.partitions {
            any_changed |= memory.modify_reporting(|matrix| {
                let mut changed = false;
                for r in 0..matrix.rows() {
                    for c in 0..matrix.cols() {
                        let mut bit = matrix.get(r, c);
                        let before = bit;
                        f(&mut bit);
                        if bit != before {
                            matrix.set(r, c, bit);
                            changed = true;
                        }
                    }
                }
                changed
            });
        }
        if any_changed {
            *self.segmented_bound.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
        }
    }

    /// Reassembles the full `D`-bit logical row for stored vector `v`
    /// from its per-partition segments. This is the programmed (possibly
    /// faulted) content as the search kernels see it — the fault-tolerance
    /// layers diff and repair through this view.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if `v` is out of range.
    pub fn logical_row(&self, v: usize) -> Result<BitVector> {
        if v >= self.num_vectors {
            return Err(ImcError::InvalidSpec {
                reason: format!("row {v} out of range for {} stored vectors", self.num_vectors),
            });
        }
        if self.partitions.len() == 1 {
            return Ok(self.partitions[0].matrix().row(v));
        }
        Ok(if self.seg_len.is_multiple_of(64) {
            let mut words = Vec::with_capacity(self.dim / 64);
            for memory in &self.partitions {
                words.extend_from_slice(memory.matrix().row(v).as_words());
            }
            BitVector::from_words(self.dim, words).expect("aligned segments concatenate")
        } else {
            let mut bools = vec![false; self.dim];
            for (part, memory) in self.partitions.iter().enumerate() {
                let m = memory.matrix();
                for c in 0..self.seg_len {
                    bools[part * self.seg_len + c] = m.get(v, c);
                }
            }
            BitVector::from_bools(&bools)
        })
    }

    /// Counts the programmed cells whose value differs from `other` — the
    /// *effective* corruption between two mappings of the same model,
    /// regardless of how many perturbation events produced it.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if the mappings' logical shapes
    /// (dimensionality, stored-vector count, or partitioning) differ.
    pub fn diff_cells(&self, other: &AmMapping) -> Result<usize> {
        if self.dim != other.dim
            || self.num_vectors != other.num_vectors
            || self.seg_len != other.seg_len
        {
            return Err(ImcError::InvalidSpec {
                reason: format!(
                    "cannot diff mappings of different shapes: {}x{} (seg {}) vs {}x{} (seg {})",
                    self.num_vectors,
                    self.dim,
                    self.seg_len,
                    other.num_vectors,
                    other.dim,
                    other.seg_len
                ),
            });
        }
        let mut diff = 0usize;
        for (a, b) in self.partitions.iter().zip(&other.partitions) {
            for v in 0..self.num_vectors {
                diff += a.matrix().row(v).hamming(&b.matrix().row(v)) as usize;
            }
        }
        Ok(diff)
    }

    /// Per-partition [`SearchMemory`] handles, in partition order. The
    /// replication layer votes over these matrices word-by-word.
    pub(crate) fn partition_memories(&self) -> &[SearchMemory] {
        &self.partitions
    }

    /// Builds a mapping with this one's metadata (spec, strategy, classes)
    /// but freshly supplied partition matrices — the majority-vote readout
    /// constructs its digital view this way. The bound cache starts empty.
    pub(crate) fn clone_with_partition_matrices(&self, matrices: Vec<BitMatrix>) -> Result<Self> {
        if matrices.len() != self.partitions.len() {
            return Err(ImcError::InvalidSpec {
                reason: format!(
                    "expected {} partition matrices, got {}",
                    self.partitions.len(),
                    matrices.len()
                ),
            });
        }
        for m in &matrices {
            if m.shape() != (self.num_vectors, self.seg_len) {
                return Err(ImcError::InvalidSpec {
                    reason: format!(
                        "partition matrix shape {:?} does not match mapping ({}, {})",
                        m.shape(),
                        self.num_vectors,
                        self.seg_len
                    ),
                });
            }
        }
        Ok(AmMapping {
            spec: self.spec,
            strategy: self.strategy,
            dim: self.dim,
            num_vectors: self.num_vectors,
            classes: self.classes.clone(),
            seg_len: self.seg_len,
            partitions: matrices.into_iter().map(SearchMemory::new).collect(),
            segmented_bound: Mutex::new(None),
        })
    }

    /// Reprograms logical row `v` to `bits`, touching only partitions
    /// whose segment actually changed (each rebuilds its SIMD mirror at
    /// most once). Returns the number of cells that flipped; any flip
    /// drops the cached cascade bound artifacts so subsequent cascade
    /// searches re-derive against the repaired bits.
    pub(crate) fn overwrite_logical_row(&mut self, v: usize, bits: &BitVector) -> usize {
        debug_assert_eq!(bits.len(), self.dim);
        debug_assert!(v < self.num_vectors);
        let mut flipped = 0usize;
        for (part, memory) in self.partitions.iter_mut().enumerate() {
            let segment = bits.slice(part * self.seg_len, self.seg_len);
            let distance = memory.matrix().row(v).hamming(&segment) as usize;
            if distance == 0 {
                continue;
            }
            flipped += distance;
            memory.modify_reporting(|matrix| {
                matrix.set_row(v, &segment).expect("segment width matches partition matrix");
                true
            });
        }
        if flipped > 0 {
            *self.segmented_bound.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
        }
        flipped
    }

    /// Energy of one inference under `model` (Fig. 7's y-axis before
    /// normalization).
    pub fn inference_energy_pj(&self, model: &EnergyModel) -> f64 {
        model.inference_energy_pj(self.stats().cycles)
    }

    /// One-time programming energy for all mapped cells.
    pub fn program_energy_pj(&self, model: &EnergyModel) -> f64 {
        let (rows, cols) = self.logical_shape();
        model.program_energy_pj(rows * cols)
    }
}

/// Bounded k-best selection over one query's score row: scan rows
/// ascending, keep a sorted slate of the `min(k, rows)` best. Equal
/// scores insert after their peers, so the ascending scan yields the
/// workspace tie-break (score descending, then row ascending) exactly.
fn select_topk(scores: &[u32], k: usize) -> Vec<(usize, u32)> {
    let k = k.min(scores.len());
    let mut slots: Vec<(usize, u32)> = Vec::with_capacity(k);
    for (row, &score) in scores.iter().enumerate() {
        if slots.len() == k {
            if score <= slots[k - 1].1 {
                continue;
            }
            slots.pop();
        }
        let pos = slots.partition_point(|&(_, s)| s >= score);
        slots.insert(pos, (row, score));
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_linalg::rng::seeded;
    use rand::Rng;

    fn random_am(num_classes: usize, per_class: usize, dim: usize, seed: u64) -> BinaryAm {
        let mut rng = seeded(seed);
        let centroids: Vec<(usize, BitVector)> = (0..num_classes)
            .flat_map(|c| {
                (0..per_class)
                    .map(|_| {
                        let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                        (c, BitVector::from_bools(&bits))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        BinaryAm::from_centroids(num_classes, centroids).unwrap()
    }

    fn random_query(dim: usize, seed: u64) -> BitVector {
        let mut rng = seeded(seed);
        let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
        BitVector::from_bools(&bits)
    }

    #[test]
    fn basic_mapping_is_bit_exact() {
        let am = random_am(4, 3, 300, 1);
        let mapping = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        for s in 0..5 {
            let q = random_query(300, 100 + s);
            let hw = mapping.search(&q).unwrap();
            let sw = am.scores(&q).unwrap();
            assert_eq!(hw.scores, sw);
            assert_eq!(hw.predicted_class, am.search(&q).unwrap().class);
        }
    }

    #[test]
    fn partitioned_mapping_is_bit_exact() {
        let am = random_am(3, 2, 320, 2);
        for p in [2usize, 4, 5, 8] {
            let mapping = AmMapping::new(
                &am,
                ArraySpec::default(),
                MappingStrategy::Partitioned { partitions: p },
            )
            .unwrap();
            let q = random_query(320, 50 + p as u64);
            let hw = mapping.search(&q).unwrap();
            assert_eq!(hw.scores, am.scores(&q).unwrap(), "P={p}");
        }
    }

    #[test]
    fn topk_matches_sorted_scores_across_layouts() {
        let am = random_am(3, 2, 320, 9);
        let queries: Vec<BitVector> = (0..7).map(|s| random_query(320, 900 + s)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let strategies = [
            MappingStrategy::Basic,
            MappingStrategy::Partitioned { partitions: 2 },
            MappingStrategy::Partitioned { partitions: 5 },
        ];
        for strategy in strategies {
            let mapping = AmMapping::new(&am, ArraySpec::default(), strategy).unwrap();
            for k in [1usize, 3, 6, 9] {
                let topk = mapping.search_batch_topk(&batch, k).unwrap();
                assert_eq!(topk.len(), queries.len(), "{strategy:?} k {k}");
                // Top-k reads the same tiles an argmax sweep does.
                assert_eq!(topk.cycles_per_query, mapping.stats().cycles);
                assert_eq!(topk.total_cycles(), mapping.stats().cycles * queries.len());
                for (q, query) in queries.iter().enumerate() {
                    let mut rows: Vec<(usize, u32)> =
                        am.scores(query).unwrap().into_iter().enumerate().collect();
                    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    rows.truncate(k.min(am.num_centroids()));
                    let got: Vec<(usize, u32)> =
                        topk.hits[q].iter().map(|h| (h.row, h.score)).collect();
                    assert_eq!(got, rows, "{strategy:?} query {q} k {k}");
                    for hit in &topk.hits[q] {
                        assert_eq!(hit.class, am.class_of(hit.row), "{strategy:?}");
                    }
                }
            }
            assert!(mapping.search_batch_topk(&batch, 0).is_err());
            let skinny = QueryBatch::from_vectors(&[random_query(64, 77)]).unwrap();
            assert!(mapping.search_batch_topk(&skinny, 2).is_err());
        }
    }

    #[test]
    fn unaligned_partitioned_batches_reuse_segment_views_bit_exactly() {
        // seg_len = 300 / 3 = 100 (off the word grid): the per-bit
        // segment re-pack now happens once per batch via
        // QueryBatch::segments, so repeated searches of the same batch
        // must stay bit-identical to the basic layout and to each other.
        let am = random_am(4, 2, 300, 11);
        let basic = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let part = AmMapping::new(
            &am,
            ArraySpec::default(),
            MappingStrategy::Partitioned { partitions: 3 },
        )
        .unwrap();
        let queries: Vec<BitVector> = (0..9).map(|s| random_query(300, 700 + s)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();

        let reference = basic.search_batch(&batch).unwrap();
        let first = part.search_batch(&batch).unwrap();
        assert_eq!(first.scores, reference.scores);
        assert_eq!(first.predicted_classes, reference.predicted_classes);
        // The repeat call hits the batch's cached segment views.
        let second = part.search_batch(&batch).unwrap();
        assert_eq!(second.scores, first.scores);
        assert_eq!(second.predicted_classes, first.predicted_classes);

        let topk_ref = basic.search_batch_topk(&batch, 3).unwrap();
        for _ in 0..2 {
            let topk = part.search_batch_topk(&batch, 3).unwrap();
            assert_eq!(topk.hits, topk_ref.hits);
        }

        let plan = CascadePlan::from_widths(300, &[100, 200]).unwrap();
        for _ in 0..2 {
            let cascade = part.search_batch_cascade(&batch, &plan).unwrap();
            assert_eq!(cascade.predicted_rows, reference.predicted_rows);
            assert_eq!(cascade.predicted_classes, reference.predicted_classes);
        }
    }

    #[test]
    fn table2_mnist_basic() {
        // BasicHDC on MNIST: AM 10240 × 10 over 128×128 arrays.
        let am = random_am(10, 1, 10240, 3);
        let m = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let s = m.stats();
        assert_eq!(m.logical_shape(), (10240, 10));
        assert_eq!(s.arrays, 80);
        assert_eq!(s.cycles, 80);
        assert!((s.utilization - 10.0 / 128.0).abs() < 1e-9); // 7.81%
    }

    #[test]
    fn table2_mnist_partitioned() {
        let am = random_am(10, 1, 10240, 4);
        // P=5 -> 2048 × 50: 16 arrays, still 80 cycles, 39.06% util.
        let m5 = AmMapping::new(
            &am,
            ArraySpec::default(),
            MappingStrategy::Partitioned { partitions: 5 },
        )
        .unwrap();
        assert_eq!(m5.logical_shape(), (2048, 50));
        let s5 = m5.stats();
        assert_eq!(s5.arrays, 16);
        assert_eq!(s5.cycles, 80);
        assert!((s5.utilization - 50.0 / 128.0).abs() < 1e-9);
        // P=10 -> 1024 × 100: 8 arrays, 80 cycles, 78.13% util.
        let m10 = AmMapping::new(
            &am,
            ArraySpec::default(),
            MappingStrategy::Partitioned { partitions: 10 },
        )
        .unwrap();
        let s10 = m10.stats();
        assert_eq!(s10.arrays, 8);
        assert_eq!(s10.cycles, 80);
        assert!((s10.utilization - 100.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn table2_memhd_one_shot() {
        // MEMHD 128×128: exactly one array, one cycle, 100% utilization.
        let am = random_am(10, 12, 128, 5); // 120 centroids
                                            // Pad to exactly 128 columns with 8 more of class 9.
        let mut centroids: Vec<(usize, BitVector)> =
            (0..am.num_centroids()).map(|r| (am.class_of(r), am.centroid(r))).collect();
        let mut rng = seeded(9);
        for _ in 0..8 {
            let bits: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
            centroids.push((9, BitVector::from_bools(&bits)));
        }
        let am = BinaryAm::from_centroids(10, centroids).unwrap();
        let m = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let s = m.stats();
        assert_eq!(s.arrays, 1);
        assert_eq!(s.cycles, 1);
        assert!((s.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table2_isolet_shapes() {
        let spec = ArraySpec::default();
        // Basic: 10240 × 26 -> 80 arrays... (80 row tiles × 1 col tile)
        let am = random_am(26, 1, 10240, 6);
        let s = AmMapping::new(&am, spec, MappingStrategy::Basic).unwrap().stats();
        assert_eq!(s.arrays, 80);
        assert_eq!(s.cycles, 80);
        assert!((s.utilization - 26.0 / 128.0).abs() < 1e-9); // 20.31%

        // P=2: 5120 × 52 -> 40 arrays, 80 cycles, 40.63%.
        let s2 = AmMapping::new(&am, spec, MappingStrategy::Partitioned { partitions: 2 })
            .unwrap()
            .stats();
        assert_eq!(s2.arrays, 40);
        assert_eq!(s2.cycles, 80);
        assert!((s2.utilization - 52.0 / 128.0).abs() < 1e-9);

        // P=4: 2560 × 104 -> 20 arrays, 80 cycles, 81.25%.
        let s4 = AmMapping::new(&am, spec, MappingStrategy::Partitioned { partitions: 4 })
            .unwrap()
            .stats();
        assert_eq!(s4.arrays, 20);
        assert_eq!(s4.cycles, 80);
        assert!((s4.utilization - 104.0 / 128.0).abs() < 1e-9);

        // MEMHD 512 × 128: 4 arrays, 4 cycles, 100%.
        let memhd_am = random_am(26, 4, 512, 7); // 104 centroids < 128...
        let mut centroids: Vec<(usize, BitVector)> = (0..memhd_am.num_centroids())
            .map(|r| (memhd_am.class_of(r), memhd_am.centroid(r)))
            .collect();
        let mut rng = seeded(11);
        while centroids.len() < 128 {
            let bits: Vec<bool> = (0..512).map(|_| rng.gen()).collect();
            centroids.push((25, BitVector::from_bools(&bits)));
        }
        let memhd_am = BinaryAm::from_centroids(26, centroids).unwrap();
        let sm = AmMapping::new(&memhd_am, spec, MappingStrategy::Basic).unwrap().stats();
        assert_eq!(sm.arrays, 4);
        assert_eq!(sm.cycles, 4);
        assert!((sm.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lossless_adc_matches_ideal_search() {
        let am = random_am(3, 2, 256, 12);
        let spec = ArraySpec::default();
        for strategy in [MappingStrategy::Basic, MappingStrategy::Partitioned { partitions: 2 }] {
            let m = AmMapping::new(&am, spec, strategy).unwrap();
            let seg_len = m.logical_shape().0;
            let adc = crate::AdcModel::lossless(seg_len as u32).unwrap();
            let q = random_query(256, 77);
            assert_eq!(
                m.search_with_adc(&q, &adc).unwrap().scores,
                m.search(&q).unwrap().scores,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn coarse_adc_compresses_scores() {
        let am = random_am(2, 2, 128, 13);
        let m = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let adc = crate::AdcModel::new(2, 128).unwrap(); // 4 codes, step 33
        let q = random_query(128, 14);
        let out = m.search_with_adc(&q, &adc).unwrap();
        assert!(out.scores.iter().all(|&s| s % 33 == 0), "scores {:?}", out.scores);
    }

    #[test]
    fn partitioned_adc_error_compounds() {
        // With a coarse ADC, a partitioned mapping accumulates P quantized
        // partials, so its digitized scores can only be >= the one-shot
        // digitization in count of ADC applications; verify they diverge
        // from the ideal scores at least as much as the one-shot mapping's.
        let am = random_am(2, 2, 512, 15);
        let spec = ArraySpec::new(512, 16).unwrap();
        let adc = crate::AdcModel::new(3, 512).unwrap();
        let basic = AmMapping::new(&am, spec, MappingStrategy::Basic).unwrap();
        let part =
            AmMapping::new(&am, spec, MappingStrategy::Partitioned { partitions: 8 }).unwrap();
        // Both run; scores differ in scale (one-shot codes vs summed
        // partial codes) but both stay argmax-comparable structures.
        let q = random_query(512, 16);
        let adc_part = crate::AdcModel::new(3, 64).unwrap(); // per-segment scale
        assert_eq!(basic.search_with_adc(&q, &adc).unwrap().scores.len(), 4);
        assert_eq!(part.search_with_adc(&q, &adc_part).unwrap().scores.len(), 4);
    }

    fn random_batch(n: usize, dim: usize, seed: u64) -> QueryBatch {
        let queries: Vec<BitVector> = (0..n).map(|i| random_query(dim, seed + i as u64)).collect();
        QueryBatch::from_vectors(&queries).unwrap()
    }

    #[test]
    fn cascade_predictions_bit_exact_and_full_activation_without_pruning() {
        let am = random_am(4, 3, 256, 31);
        let m = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let batch = random_batch(9, 256, 400);
        let exact = m.search_batch(&batch).unwrap();
        // One-stage plan: pruning cannot fire, so the activated-dimension
        // telemetry must sum to exactly the exact search's dimension
        // count — queries × centroids × D.
        let stats = m.search_batch_cascade(&batch, &CascadePlan::exact(256)).unwrap();
        assert_eq!(stats.predicted_rows, exact.predicted_rows);
        assert_eq!(stats.predicted_classes, exact.predicted_classes);
        assert_eq!(stats.activated_dims(), stats.exact_dims());
        assert_eq!(stats.exact_dims(), 9 * 12 * 256);
        assert!((stats.activation_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(stats.exact_cycles_per_query, m.stats().cycles);
        assert!(
            (stats.equivalent_cycles() - exact.total_cycles() as f64).abs() < 1e-9,
            "exact-plan cascade must recover the exact cycle count"
        );
        // Multi-stage plans stay bit-exact regardless of whether pruning
        // fires.
        for plan in [CascadePlan::prefix(256, 64).unwrap(), CascadePlan::uniform(256, 4).unwrap()] {
            let s = m.search_batch_cascade(&batch, &plan).unwrap();
            assert_eq!(s.predicted_rows, exact.predicted_rows, "{plan:?}");
            assert!(s.activated_dims() <= s.exact_dims(), "{plan:?}");
        }
    }

    #[test]
    fn cascade_telemetry_strictly_decreases_when_pruning_fires() {
        // Separable memory: each query is a stored centroid, the other
        // centroids are sparse — the Hamming bound prunes them after the
        // first stage, so activation must drop strictly below exact.
        let dim = 512;
        let mut rng = seeded(32);
        let hot: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
        let mut centroids = vec![(0usize, BitVector::from_bools(&hot))];
        for c in 1..8 {
            let sparse: Vec<bool> = (0..dim).map(|_| rng.gen::<f32>() < 0.05).collect();
            centroids.push((c % 3, BitVector::from_bools(&sparse)));
        }
        let am = BinaryAm::from_centroids(3, centroids).unwrap();
        let m = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&hot)]).unwrap();
        let plan = CascadePlan::prefix(dim, 128).unwrap();
        let stats = m.search_batch_cascade(&batch, &plan).unwrap();
        assert_eq!(stats.predicted_rows, vec![0]);
        assert!(
            stats.activated_dims() < stats.exact_dims(),
            "pruning must strictly reduce activation: {} vs {}",
            stats.activated_dims(),
            stats.exact_dims()
        );
        assert!(stats.activation_fraction() < 1.0);
        assert!(stats.equivalent_cycles() < (stats.exact_cycles_per_query * stats.len()) as f64);
        // Energy scales with the activated fraction.
        let model = EnergyModel::default();
        let exact_energy = model.inference_energy_pj(stats.exact_cycles_per_query * stats.len());
        let cascade_energy = stats.inference_energy_pj(&model);
        assert!(cascade_energy < exact_energy);
        assert!(
            (cascade_energy / exact_energy - stats.activation_fraction()).abs() < 1e-12,
            "energy ratio must equal the activation fraction"
        );
    }

    #[test]
    fn cascade_rejects_bad_dims() {
        let am = random_am(2, 2, 256, 33);
        let batch = random_batch(2, 256, 500);
        let basic = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        assert!(matches!(
            basic.search_batch_cascade(&batch, &CascadePlan::exact(128)),
            Err(ImcError::QueryDimensionMismatch { expected: 256, found: 128 })
        ));
        let bad_batch = random_batch(2, 128, 501);
        assert!(matches!(
            basic.search_batch_cascade(&bad_batch, &CascadePlan::exact(256)),
            Err(ImcError::QueryDimensionMismatch { expected: 256, found: 128 })
        ));
    }

    #[test]
    fn partitioned_cascade_matches_exact_batched_search() {
        let am = random_am(3, 4, 320, 34);
        let batch = random_batch(11, 320, 600);
        for p in [2usize, 4, 5] {
            let mapping = AmMapping::new(
                &am,
                ArraySpec::default(),
                MappingStrategy::Partitioned { partitions: p },
            )
            .unwrap();
            let exact = mapping.search_batch(&batch).unwrap();
            let seg = 320 / p;
            let mut plans = vec![CascadePlan::exact(320), CascadePlan::prefix(320, seg).unwrap()];
            if p > 2 {
                plans.push(CascadePlan::from_widths(320, &[seg, seg, 320 - 2 * seg]).unwrap());
            }
            for plan in plans {
                let out = mapping.search_batch_cascade(&batch, &plan).unwrap();
                assert_eq!(out.predicted_rows, exact.predicted_rows, "P={p} {plan:?}");
                assert_eq!(out.predicted_classes, exact.predicted_classes, "P={p} {plan:?}");
                assert!(out.activated_dims() <= out.exact_dims(), "P={p} {plan:?}");
                assert_eq!(out.exact_cycles_per_query, mapping.stats().cycles);
                if plan.stages() == 1 {
                    assert!((out.activation_fraction() - 1.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn partitioned_cascade_misaligned_plan_is_a_precise_error() {
        let am = random_am(2, 2, 256, 35);
        let mapping = AmMapping::new(
            &am,
            ArraySpec::default(),
            MappingStrategy::Partitioned { partitions: 4 },
        )
        .unwrap();
        let batch = random_batch(2, 256, 700);
        // Stage 0 ends at 100, between the segment boundaries 64 and 128.
        let misaligned = CascadePlan::prefix(256, 100).unwrap();
        let err = mapping.search_batch_cascade(&batch, &misaligned).unwrap_err();
        assert_eq!(
            err,
            ImcError::CascadeStageMisaligned { stage: 0, end: 100, seg_len: 64 },
            "misalignment must name the offending stage"
        );
        assert!(err.to_string().contains("snapped(64)"));
        // A later misaligned stage is reported at its own index.
        let late = CascadePlan::from_widths(256, &[64, 70, 122]).unwrap();
        assert!(matches!(
            mapping.search_batch_cascade(&batch, &late),
            Err(ImcError::CascadeStageMisaligned { stage: 1, end: 134, seg_len: 64 })
        ));
        // Snapping repairs the plan.
        let snapped = misaligned.snapped(64).unwrap();
        let out = mapping.search_batch_cascade(&batch, &snapped).unwrap();
        assert_eq!(out.predicted_rows, mapping.search_batch(&batch).unwrap().predicted_rows);
    }

    #[test]
    fn partitioned_cascade_pruning_reduces_activation_and_energy() {
        // The separable workload of the basic-layout telemetry test, on
        // a partitioned mapping: per-partition shortlist carry-over must
        // still cut activation strictly below exact.
        let dim = 512;
        let mut rng = seeded(36);
        let hot: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
        let mut centroids = vec![(0usize, BitVector::from_bools(&hot))];
        for c in 1..8 {
            let sparse: Vec<bool> = (0..dim).map(|_| rng.gen::<f32>() < 0.05).collect();
            centroids.push((c % 3, BitVector::from_bools(&sparse)));
        }
        let am = BinaryAm::from_centroids(3, centroids).unwrap();
        let mapping = AmMapping::new(
            &am,
            ArraySpec::default(),
            MappingStrategy::Partitioned { partitions: 4 },
        )
        .unwrap();
        let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&hot)]).unwrap();
        let plan = CascadePlan::prefix(dim, 128).unwrap(); // one segment
        let stats = mapping.search_batch_cascade(&batch, &plan).unwrap();
        assert_eq!(stats.predicted_rows, vec![0]);
        assert!(stats.activated_dims() < stats.exact_dims());
        assert!(stats.activation_fraction() < 1.0);
        let model = EnergyModel::default();
        let exact_energy = model.inference_energy_pj(stats.exact_cycles_per_query * stats.len());
        assert!(stats.inference_energy_pj(&model) < exact_energy);
    }

    #[test]
    fn tuned_plan_is_always_segment_aligned() {
        let mut rng = seeded(37);
        let dim = 2048;
        // Imbalanced AM so the tuner actually cascades.
        let mut centroids =
            vec![(0usize, BitVector::from_bools(&(0..dim).map(|_| rng.gen()).collect::<Vec<_>>()))];
        for c in 1..10 {
            centroids.push((
                c,
                BitVector::from_bools(
                    &(0..dim).map(|_| rng.gen::<f32>() < 0.02).collect::<Vec<_>>(),
                ),
            ));
        }
        let rows: Vec<BitVector> = centroids.iter().map(|(_, b)| b.clone()).collect();
        let am = BinaryAm::from_centroids(10, centroids).unwrap();
        let queries: Vec<BitVector> = (0..64)
            .map(|i| {
                let mut q = rows[if i % 32 == 0 { 1 + i % 9 } else { 0 }].clone();
                for _ in 0..dim / 20 {
                    let bit = rng.gen_range(0..dim);
                    q.set(bit, !q.get(bit));
                }
                q
            })
            .collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        for p in [1usize, 4, 8] {
            let strategy = if p == 1 {
                MappingStrategy::Basic
            } else {
                MappingStrategy::Partitioned { partitions: p }
            };
            let mapping = AmMapping::new(&am, ArraySpec::default(), strategy).unwrap();
            let plan = mapping.tuned_cascade_plan(&batch).unwrap();
            assert_eq!(plan.dim(), dim);
            if p > 1 {
                let seg = dim / p;
                for &e in &plan.ends()[..plan.stages() - 1] {
                    assert!(e.is_multiple_of(seg), "P={p}: boundary {e} off segment grid");
                }
            } else {
                assert!(plan.stages() > 1, "basic tuned plan should cascade here: {plan:?}");
            }
            // And the tuned plan runs, bit-exactly.
            let out = mapping.search_batch_cascade(&batch, &plan).unwrap();
            assert_eq!(out.predicted_rows, mapping.search_batch(&batch).unwrap().predicted_rows);
        }
        let wrong = random_batch(2, 128, 900);
        let basic = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        assert!(matches!(
            basic.tuned_cascade_plan(&wrong),
            Err(ImcError::QueryDimensionMismatch { .. })
        ));
    }

    #[test]
    fn partition_must_divide_dim() {
        let am = random_am(2, 1, 100, 8);
        assert!(matches!(
            AmMapping::new(
                &am,
                ArraySpec::default(),
                MappingStrategy::Partitioned { partitions: 3 }
            ),
            Err(ImcError::InvalidPartitioning { .. })
        ));
    }

    #[test]
    fn query_dimension_checked() {
        let am = random_am(2, 1, 64, 9);
        let m = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        assert!(matches!(
            m.search(&BitVector::zeros(65)),
            Err(ImcError::QueryDimensionMismatch { expected: 64, found: 65 })
        ));
    }

    #[test]
    fn partitioning_saves_arrays_not_cycles() {
        // The paper's core observation about partitioning (Fig. 1b).
        let am = random_am(10, 1, 1024, 10);
        let spec = ArraySpec::default();
        let basic = AmMapping::new(&am, spec, MappingStrategy::Basic).unwrap().stats();
        let part = AmMapping::new(&am, spec, MappingStrategy::Partitioned { partitions: 4 })
            .unwrap()
            .stats();
        assert!(part.arrays < basic.arrays);
        assert_eq!(part.cycles, basic.cycles);
        assert!(part.utilization > basic.utilization);
    }
}
