//! ADC readout modeling.
//!
//! An analog IMC column produces a current proportional to the popcount
//! dot product; a per-column ADC digitizes it with limited resolution. A
//! `D`-row array can produce column sums up to `D`, so an ADC with fewer
//! than `log2(D+1)` bits quantizes (and saturates) the similarity scores
//! the argmax sees. This module models that readout so the accuracy cost
//! of cheap ADCs — a first-order design knob in every IMC paper — can be
//! measured on real searches.

use crate::error::{ImcError, Result};

/// A uniform per-column ADC with `bits` of resolution over the input range
/// `0..=full_scale`.
///
/// # Example
///
/// ```
/// use imc_sim::AdcModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 4-bit ADC reading a 128-row column: 16 levels over 0..=128.
/// let adc = AdcModel::new(4, 128)?;
/// assert_eq!(adc.levels(), 16);
/// assert_eq!(adc.quantize(0), 0);
/// // Values snap to the 9-wide quantization steps...
/// assert_eq!(adc.quantize(100), 99);
/// // ...and saturate above full scale.
/// assert_eq!(adc.quantize(500), adc.quantize(128));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdcModel {
    bits: u32,
    full_scale: u32,
}

impl AdcModel {
    /// Creates an ADC with the given resolution and full-scale input.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if `bits` is 0 or above 16, or if
    /// `full_scale` is 0.
    pub fn new(bits: u32, full_scale: u32) -> Result<Self> {
        if bits == 0 || bits > 16 {
            return Err(ImcError::InvalidSpec {
                reason: format!("ADC resolution {bits} bits outside 1..=16"),
            });
        }
        if full_scale == 0 {
            return Err(ImcError::InvalidSpec { reason: "ADC full scale must be positive".into() });
        }
        Ok(AdcModel { bits, full_scale })
    }

    /// An ADC with enough resolution to pass `full_scale` through
    /// losslessly.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if `full_scale` is 0.
    pub fn lossless(full_scale: u32) -> Result<Self> {
        if full_scale == 0 {
            return Err(ImcError::InvalidSpec { reason: "ADC full scale must be positive".into() });
        }
        let bits = 32 - full_scale.leading_zeros();
        Self::new(bits.clamp(1, 16), full_scale)
    }

    /// ADC resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of output codes (`2^bits`).
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Full-scale analog input (the maximum representable column sum).
    pub fn full_scale(&self) -> u32 {
        self.full_scale
    }

    /// Width of one quantization step in input units (1 when lossless).
    pub fn step(&self) -> u32 {
        (self.full_scale + 1).div_ceil(self.levels()).max(1)
    }

    /// Digitizes one column sum and returns the *reconstructed* value:
    /// uniform quantization over `0..=full_scale` (saturating above),
    /// mapped back to input units so scores from different ADCs and
    /// different partition counts stay comparable.
    pub fn quantize(&self, column_sum: u32) -> u32 {
        let clipped = column_sum.min(self.full_scale);
        let step = self.step();
        (clipped / step) * step
    }

    /// Digitizes a whole score vector in place.
    pub fn quantize_scores(&self, scores: &mut [u32]) {
        for s in scores {
            *s = self.quantize(*s);
        }
    }

    /// Whether this ADC is lossless for inputs up to `full_scale` (one
    /// code per possible input value).
    pub fn is_lossless(&self) -> bool {
        self.levels() > self.full_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_is_identity_up_to_full_scale() {
        let adc = AdcModel::lossless(128).unwrap();
        assert!(adc.is_lossless());
        assert_eq!(adc.bits(), 8);
        assert_eq!(adc.step(), 1);
        for v in 0..=128u32 {
            assert_eq!(adc.quantize(v), v);
        }
    }

    #[test]
    fn low_resolution_collapses_codes() {
        let adc = AdcModel::new(2, 128).unwrap(); // 4 codes, step 33
        assert!(!adc.is_lossless());
        assert_eq!(adc.step(), 33);
        assert_eq!(adc.quantize(0), 0);
        assert_eq!(adc.quantize(32), 0);
        assert_eq!(adc.quantize(33), 33);
        assert_eq!(adc.quantize(128), 99);
        // Monotone non-decreasing.
        let mut prev = 0;
        for v in 0..=128 {
            let q = adc.quantize(v);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn saturation_above_full_scale() {
        let adc = AdcModel::new(3, 100).unwrap();
        assert_eq!(adc.quantize(100), adc.quantize(1_000_000));
    }

    #[test]
    fn quantize_scores_in_place() {
        let adc = AdcModel::new(1, 10).unwrap(); // 2 codes, step 6
        let mut scores = vec![0, 3, 6, 10];
        adc.quantize_scores(&mut scores);
        assert_eq!(scores, vec![0, 0, 6, 6]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(AdcModel::new(0, 128).is_err());
        assert!(AdcModel::new(17, 128).is_err());
        assert!(AdcModel::new(4, 0).is_err());
        assert!(AdcModel::lossless(0).is_err());
    }

    #[test]
    fn lossless_of_small_scales() {
        let adc = AdcModel::lossless(1).unwrap();
        assert_eq!(adc.bits(), 1);
        assert!(adc.is_lossless());
        assert_eq!(adc.quantize(0), 0);
        assert_eq!(adc.quantize(1), 1);
        assert_eq!(adc.step(), 1);
    }
}
