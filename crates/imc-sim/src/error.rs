//! Error types for the IMC simulator.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ImcError>;

/// Errors produced by IMC mapping and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImcError {
    /// An array specification dimension was zero.
    InvalidSpec {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A partitioned mapping was requested with an incompatible shape.
    InvalidPartitioning {
        /// Hypervector dimensionality.
        dim: usize,
        /// Requested partition count.
        partitions: usize,
        /// Description of the conflict.
        reason: String,
    },
    /// A query did not match the mapped structure's dimensionality.
    QueryDimensionMismatch {
        /// Dimensionality of the mapped structure.
        expected: usize,
        /// Dimensionality of the query.
        found: usize,
    },
}

impl fmt::Display for ImcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImcError::InvalidSpec { reason } => write!(f, "invalid array spec: {reason}"),
            ImcError::InvalidPartitioning { dim, partitions, reason } => {
                write!(f, "cannot partition D={dim} into P={partitions}: {reason}")
            }
            ImcError::QueryDimensionMismatch { expected, found } => {
                write!(f, "query dimension mismatch: mapped D={expected}, query D={found}")
            }
        }
    }
}

impl std::error::Error for ImcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ImcError::InvalidSpec { reason: "zero rows".into() }
            .to_string()
            .contains("zero rows"));
        assert!(ImcError::InvalidPartitioning { dim: 10, partitions: 3, reason: "x".into() }
            .to_string()
            .contains("P=3"));
        assert!(ImcError::QueryDimensionMismatch { expected: 4, found: 5 }
            .to_string()
            .contains("D=4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImcError>();
    }
}
