//! Error types for the IMC simulator.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ImcError>;

/// Errors produced by IMC mapping and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImcError {
    /// An array specification dimension was zero.
    InvalidSpec {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A partitioned mapping was requested with an incompatible shape.
    InvalidPartitioning {
        /// Hypervector dimensionality.
        dim: usize,
        /// Requested partition count.
        partitions: usize,
        /// Description of the conflict.
        reason: String,
    },
    /// A query did not match the mapped structure's dimensionality.
    QueryDimensionMismatch {
        /// Dimensionality of the mapped structure.
        expected: usize,
        /// Dimensionality of the query.
        found: usize,
    },
    /// A cascade plan's stage boundary did not land on a partitioned
    /// mapping's segment boundary. A partitioned layout interleaves
    /// dimension segments across activations, so a stage can only end
    /// where a segment does — snap the plan with
    /// [`hd_linalg::CascadePlan::snapped`] using the mapping's segment
    /// length.
    CascadeStageMisaligned {
        /// Index of the offending stage.
        stage: usize,
        /// Logical dimension the stage ends at.
        end: usize,
        /// Segment length (`D / P`) boundaries must be a multiple of.
        seg_len: usize,
    },
}

impl fmt::Display for ImcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImcError::InvalidSpec { reason } => write!(f, "invalid array spec: {reason}"),
            ImcError::InvalidPartitioning { dim, partitions, reason } => {
                write!(f, "cannot partition D={dim} into P={partitions}: {reason}")
            }
            ImcError::QueryDimensionMismatch { expected, found } => {
                write!(f, "query dimension mismatch: mapped D={expected}, query D={found}")
            }
            ImcError::CascadeStageMisaligned { stage, end, seg_len } => {
                write!(
                    f,
                    "cascade stage {stage} ends at dimension {end}, which is not a multiple of \
                     the partitioned segment length {seg_len}; snap the plan to segment \
                     boundaries with CascadePlan::snapped({seg_len})"
                )
            }
        }
    }
}

impl std::error::Error for ImcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ImcError::InvalidSpec { reason: "zero rows".into() }
            .to_string()
            .contains("zero rows"));
        assert!(ImcError::InvalidPartitioning { dim: 10, partitions: 3, reason: "x".into() }
            .to_string()
            .contains("P=3"));
        assert!(ImcError::QueryDimensionMismatch { expected: 4, found: 5 }
            .to_string()
            .contains("D=4"));
        let msg = ImcError::CascadeStageMisaligned { stage: 1, end: 100, seg_len: 64 }.to_string();
        assert!(msg.contains("stage 1") && msg.contains("100") && msg.contains("snapped(64)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImcError>();
    }
}
