//! SRAM IMC energy and timing model (paper §IV-A, Fig. 7).
//!
//! The paper derives read/write energies from SRAM-based IMC arrays
//! simulated with NeuroSim \[19\] as reported in \[20\]. Absolute joules are
//! testbed-specific; what Fig. 7 actually uses is the *relative* cost,
//! which is proportional to tile activations because every activation
//! drives the same 128×128 array. The defaults below are representative
//! per-activation / per-cell figures for a 128×128 SRAM macro; all Fig. 7
//! comparisons normalize them away.

/// Energy/timing parameters of one IMC array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one tile activation (full-array MVM read), in picojoules.
    pub activation_energy_pj: f64,
    /// Energy to program one cell, in picojoules.
    pub cell_write_energy_pj: f64,
    /// Latency of one tile activation, in nanoseconds.
    pub cycle_time_ns: f64,
}

impl EnergyModel {
    /// Representative SRAM 128×128 macro figures (NeuroSim-derived scale):
    /// 21.6 pJ per array activation, 0.3 pJ per cell write, 2.3 ns cycle.
    pub fn sram_128() -> Self {
        EnergyModel { activation_energy_pj: 21.6, cell_write_energy_pj: 0.3, cycle_time_ns: 2.3 }
    }

    /// Energy of an inference that takes `cycles` tile activations.
    pub fn inference_energy_pj(&self, cycles: usize) -> f64 {
        self.activation_energy_pj * cycles as f64
    }

    /// One-time energy to program `cells` cells.
    pub fn program_energy_pj(&self, cells: usize) -> f64 {
        self.cell_write_energy_pj * cells as f64
    }

    /// Energy of an inference whose activations were partially gated:
    /// `cycles` full tile activations scaled by the fraction of
    /// `(column, wordline)` products actually driven — the
    /// activation-proportional model behind Fig. 7, extended to the
    /// cascade's pruned sweeps. `fraction == 1.0` recovers
    /// [`EnergyModel::inference_energy_pj`] exactly, which is what lets
    /// the Fig. 7 ladder be re-derived from cascade telemetry.
    pub fn scaled_inference_energy_pj(&self, cycles: usize, fraction: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&fraction), "activation fraction {fraction}");
        self.inference_energy_pj(cycles) * fraction
    }

    /// Latency of an inference that takes `cycles` tile activations on a
    /// single physical array.
    pub fn latency_ns(&self, cycles: usize) -> f64 {
        self.cycle_time_ns * cycles as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::sram_128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_cycles() {
        let m = EnergyModel::sram_128();
        assert!((m.inference_energy_pj(80) / m.inference_energy_pj(1) - 80.0).abs() < 1e-9);
        assert!((m.latency_ns(8) / m.latency_ns(1) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn paper_fig7_ratios() {
        // BasicHDC 10240D needs 80 AM cycles vs MEMHD's 1 -> 80x energy.
        let m = EnergyModel::default();
        let basic = m.inference_energy_pj(80);
        let memhd = m.inference_energy_pj(1);
        assert!((basic / memhd - 80.0).abs() < 1e-9);
        // LeHDC 400D needs 4 cycles -> 4x.
        assert!((m.inference_energy_pj(4) / memhd - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fig7_ladder_rederives_from_unpruned_cascade_telemetry() {
        // With pruning disabled (activation fraction exactly 1.0), the
        // scaled energy equals the exact energy, so the Fig. 7 ladder
        // 80 : 63 : 13 : 4 : 1 falls straight out of cascade telemetry.
        let m = EnergyModel::default();
        let memhd = m.scaled_inference_energy_pj(1, 1.0);
        for cycles in [80usize, 63, 13, 4, 1] {
            assert!(
                (m.scaled_inference_energy_pj(cycles, 1.0) / memhd - cycles as f64).abs() < 1e-9
            );
            assert!(
                (m.scaled_inference_energy_pj(cycles, 1.0) - m.inference_energy_pj(cycles)).abs()
                    < 1e-9
            );
        }
        // A pruned cascade scales the same ladder down linearly.
        assert!((m.scaled_inference_energy_pj(80, 0.25) - m.inference_energy_pj(20)).abs() < 1e-9);
    }

    #[test]
    fn program_energy_scales_with_cells() {
        let m = EnergyModel::default();
        assert!((m.program_energy_pj(16384) - 0.3 * 16384.0).abs() < 1e-6);
    }
}
