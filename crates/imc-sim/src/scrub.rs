//! Online fault scrubbing: detect and repair corrupted rows in place.
//!
//! Static redundancy ([`crate::ReplicatedAmMapping`]) masks faults;
//! scrubbing *removes* them. At programming time the [`Scrubber`] derives
//! a per-row reference signature (a seeded word checksum plus the row's
//! popcount) from the golden mapping. In the field it sweeps the deployed
//! arrays incrementally — a bounded number of cells per tick, so the
//! repair loop can share the array with serving traffic — recomputes each
//! visited row's signature, and reprograms any row whose signature
//! disagrees from the golden copy. [`ScrubReport`] telemetry (rows
//! scanned / dirty / repaired, cells healed) feeds the serving layer's
//! health view, and a repaired snapshot is republished through
//! `hd_serve::ModelRegistry` so queries never observe a half-repaired
//! memory.
//!
//! Signatures compare full row content (checksum over every packed word,
//! mixed per-word so word swaps are detected, plus the popcount), so a
//! signature match on honest hardware means the row is bit-identical to
//! the golden copy; collisions for adversarial corruption are ~2⁻⁶⁴.

use crate::error::{ImcError, Result};
use crate::faults::FaultyAmMapping;
use crate::mapping::AmMapping;
use hd_linalg::rng::derive_seed;
use hd_linalg::BitVector;

/// Reference signature of one logical row, derived at programming time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowSignature {
    /// Seeded mix over the row's packed words (position-sensitive).
    checksum: u64,
    /// Number of set bits — a cheap first-line check and a direct
    /// measure of charge loss on real arrays.
    popcount: u32,
}

impl RowSignature {
    fn of(row: &BitVector, seed: u64) -> Self {
        let mut acc = seed ^ 0x7363_7275_6262_6572; // "scrubber"
        for (i, &w) in row.as_words().iter().enumerate() {
            // splitmix64-style finalizer keeps single-bit differences
            // avalanching across the whole checksum.
            let mut z = acc ^ w.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            acc = z ^ (z >> 31);
        }
        RowSignature { checksum: acc, popcount: row.count_ones() }
    }
}

/// Sweep pacing for a [`Scrubber`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Cell budget per [`Scrubber::tick`]: each tick scans
    /// `max(1, cells_per_tick / D)` rows. `0` means unbounded — a single
    /// tick sweeps the whole memory (what [`Scrubber::scrub_full`] uses).
    pub cells_per_tick: usize,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        // One 128-row × 128-col array's worth of cells per tick.
        ScrubConfig { cells_per_tick: 128 * 128 }
    }
}

/// Telemetry from one scrub pass or tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Rows whose signatures were recomputed this tick.
    pub rows_scanned: usize,
    /// Scanned rows whose signature disagreed with the reference.
    pub rows_dirty: usize,
    /// Dirty rows reprogrammed from the golden copy (always equals
    /// `rows_dirty` — kept separate so a future partial-repair policy
    /// can report the difference).
    pub rows_repaired: usize,
    /// Individual cells whose value changed during repair.
    pub cells_healed: usize,
    /// Whether the sweep cursor wrapped past the last row this tick,
    /// completing a full pass over the memory.
    pub completed_pass: bool,
}

impl ScrubReport {
    fn absorb(&mut self, other: ScrubReport) {
        self.rows_scanned += other.rows_scanned;
        self.rows_dirty += other.rows_dirty;
        self.rows_repaired += other.rows_repaired;
        self.cells_healed += other.cells_healed;
        self.completed_pass |= other.completed_pass;
    }
}

/// Incremental scrub engine bound to one golden [`AmMapping`].
///
/// Holds a clone of the golden mapping (the repair source) and the
/// per-row reference signatures. [`Scrubber::tick`] advances a cursor
/// over the target's rows under the configured cell budget;
/// [`Scrubber::scrub_full`] drives ticks until one full pass completes.
///
/// # Example
///
/// ```
/// use hd_linalg::{rng::seeded, BitVector};
/// use hdc::BinaryAm;
/// use imc_sim::{
///     AmMapping, ArraySpec, FaultModel, FaultyAmMapping, MappingStrategy, ScrubConfig, Scrubber,
/// };
/// use rand::Rng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = seeded(1);
/// let centroids: Vec<(usize, BitVector)> = (0..4)
///     .map(|v| {
///         let bits: Vec<bool> = (0..256).map(|_| rng.gen()).collect();
///         (v, BitVector::from_bools(&bits))
///     })
///     .collect();
/// let am = BinaryAm::from_centroids(4, centroids)?;
/// let golden = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic)?;
/// let scrubber = Scrubber::new(&golden, ScrubConfig::default(), 42)?;
///
/// let mut deployed = FaultyAmMapping::program(&golden, FaultModel::bit_flip(0.05), 7)?;
/// assert!(deployed.effective_flipped(&golden)? > 0);
/// let report = scrubber.scrub_full(&mut deployed)?;
/// assert!(report.cells_healed > 0);
/// assert_eq!(deployed.effective_flipped(&golden)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Scrubber {
    golden: AmMapping,
    signatures: Vec<RowSignature>,
    config: ScrubConfig,
    /// Base seed keying the per-row checksum streams.
    seed: u64,
    /// Next logical row the incremental sweep will visit.
    cursor: std::cell::Cell<usize>,
}

impl Scrubber {
    /// Derives reference signatures for every row of `golden` and binds
    /// the sweep pacing. `seed` keys the checksums; the same seed must
    /// not be reused across unrelated memories if signatures are ever
    /// persisted externally.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if `golden` stores no vectors.
    pub fn new(golden: &AmMapping, config: ScrubConfig, seed: u64) -> Result<Self> {
        if golden.num_vectors() == 0 {
            return Err(ImcError::InvalidSpec {
                reason: "cannot scrub a mapping with no stored vectors".into(),
            });
        }
        let signatures = (0..golden.num_vectors())
            .map(|v| Ok(RowSignature::of(&golden.logical_row(v)?, derive_seed(seed, v as u64))))
            .collect::<Result<Vec<_>>>()?;
        Ok(Scrubber {
            golden: golden.clone(),
            signatures,
            config,
            seed,
            cursor: std::cell::Cell::new(0),
        })
    }

    /// The sweep pacing.
    pub fn config(&self) -> ScrubConfig {
        self.config
    }

    /// Rows a single [`Scrubber::tick`] scans under the cell budget.
    pub fn rows_per_tick(&self) -> usize {
        if self.config.cells_per_tick == 0 {
            self.golden.num_vectors()
        } else {
            (self.config.cells_per_tick / self.golden.dim()).max(1)
        }
    }

    /// Scans the next budgeted slice of rows in `target`, reprogramming
    /// any row whose signature disagrees with the golden reference.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if `target`'s logical shape
    /// differs from the golden mapping's.
    pub fn tick(&self, target: &mut FaultyAmMapping) -> Result<ScrubReport> {
        self.check_shape(target)?;
        let rows = self.golden.num_vectors();
        let budget = self.rows_per_tick().min(rows);
        let mut report = ScrubReport::default();
        let mut cursor = self.cursor.get();
        for _ in 0..budget {
            let healed = self.scrub_row(target, cursor)?;
            report.rows_scanned += 1;
            if healed > 0 {
                report.rows_dirty += 1;
                report.rows_repaired += 1;
                report.cells_healed += healed;
            }
            cursor += 1;
            if cursor == rows {
                cursor = 0;
                report.completed_pass = true;
            }
        }
        self.cursor.set(cursor);
        Ok(report)
    }

    /// Drives [`Scrubber::tick`] until a full pass over `target`
    /// completes, returning the aggregated report. Afterwards the target
    /// is bit-identical to the golden mapping.
    ///
    /// # Errors
    ///
    /// As [`Scrubber::tick`].
    pub fn scrub_full(&self, target: &mut FaultyAmMapping) -> Result<ScrubReport> {
        let mut total = ScrubReport::default();
        loop {
            let report = self.tick(target)?;
            let done = report.completed_pass;
            total.absorb(report);
            if done {
                return Ok(total);
            }
        }
    }

    fn check_shape(&self, target: &FaultyAmMapping) -> Result<()> {
        let t = target.as_mapping();
        if t.dim() != self.golden.dim() || t.num_vectors() != self.golden.num_vectors() {
            return Err(ImcError::InvalidSpec {
                reason: format!(
                    "scrub target shape {}x{} does not match golden {}x{}",
                    t.num_vectors(),
                    t.dim(),
                    self.golden.num_vectors(),
                    self.golden.dim()
                ),
            });
        }
        Ok(())
    }

    /// Verifies row `v`'s signature and repairs on mismatch, returning
    /// the number of cells healed.
    fn scrub_row(&self, target: &mut FaultyAmMapping, v: usize) -> Result<usize> {
        let observed = RowSignature::of(
            &target.as_mapping().logical_row(v)?,
            derive_seed(self.seed, v as u64),
        );
        if observed == self.signatures[v] {
            return Ok(0);
        }
        let golden_row = self.golden.logical_row(v)?;
        Ok(target.mapping_mut().overwrite_logical_row(v, &golden_row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArraySpec, FaultModel, MappingStrategy};
    use hd_linalg::rng::seeded;
    use hdc::BinaryAm;
    use rand::Rng;

    fn small_am(dim: usize, vectors: usize, seed: u64) -> BinaryAm {
        let mut rng = seeded(seed);
        let centroids: Vec<(usize, BitVector)> = (0..vectors)
            .map(|v| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                (v % 2, BitVector::from_bools(&bits))
            })
            .collect();
        BinaryAm::from_centroids(2, centroids).unwrap()
    }

    fn mapping(dim: usize, vectors: usize, strategy: MappingStrategy, seed: u64) -> AmMapping {
        AmMapping::new(&small_am(dim, vectors, seed), ArraySpec::default(), strategy).unwrap()
    }

    #[test]
    fn clean_memory_scrubs_to_zero_repairs() {
        let golden = mapping(256, 6, MappingStrategy::Basic, 1);
        let scrubber = Scrubber::new(&golden, ScrubConfig::default(), 11).unwrap();
        let mut clean = FaultyAmMapping::program(&golden, FaultModel::ideal(), 3).unwrap();
        let report = scrubber.scrub_full(&mut clean).unwrap();
        assert_eq!(report.rows_scanned, 6);
        assert_eq!(report.rows_dirty, 0);
        assert_eq!(report.rows_repaired, 0);
        assert_eq!(report.cells_healed, 0);
        assert!(report.completed_pass);
    }

    #[test]
    fn full_scrub_restores_golden_bits() {
        for strategy in [MappingStrategy::Basic, MappingStrategy::Partitioned { partitions: 4 }] {
            let golden = mapping(512, 8, strategy, 2);
            let scrubber = Scrubber::new(&golden, ScrubConfig::default(), 13).unwrap();
            let mut deployed =
                FaultyAmMapping::program(&golden, FaultModel::bit_flip(0.05), 7).unwrap();
            let corrupted = deployed.effective_flipped(&golden).unwrap();
            assert!(corrupted > 0);
            let report = scrubber.scrub_full(&mut deployed).unwrap();
            assert_eq!(report.cells_healed, corrupted, "{strategy:?}");
            assert_eq!(deployed.effective_flipped(&golden).unwrap(), 0);
            // A second pass finds nothing.
            let again = scrubber.scrub_full(&mut deployed).unwrap();
            assert_eq!(again.rows_dirty, 0);
        }
    }

    #[test]
    fn incremental_ticks_bound_work_and_converge() {
        let golden = mapping(256, 10, MappingStrategy::Basic, 3);
        // Budget of one row per tick.
        let scrubber = Scrubber::new(&golden, ScrubConfig { cells_per_tick: 1 }, 17).unwrap();
        assert_eq!(scrubber.rows_per_tick(), 1);
        let mut deployed =
            FaultyAmMapping::program(&golden, FaultModel::bit_flip(0.1), 19).unwrap();
        let mut ticks = 0;
        loop {
            let report = scrubber.tick(&mut deployed).unwrap();
            assert_eq!(report.rows_scanned, 1);
            ticks += 1;
            if report.completed_pass {
                break;
            }
        }
        assert_eq!(ticks, 10, "one pass = one tick per row");
        assert_eq!(deployed.effective_flipped(&golden).unwrap(), 0);
    }

    #[test]
    fn repaired_cascade_results_match_exact_search() {
        use hd_linalg::{CascadePlan, QueryBatch};
        let golden = mapping(512, 8, MappingStrategy::Partitioned { partitions: 4 }, 4);
        let scrubber = Scrubber::new(&golden, ScrubConfig::default(), 23).unwrap();
        let mut deployed =
            FaultyAmMapping::program(&golden, FaultModel::bit_flip(0.1), 29).unwrap();
        let mut rng = seeded(5);
        let queries: Vec<BitVector> = (0..7)
            .map(|_| BitVector::from_bools(&(0..512).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let plan = CascadePlan::prefix(512, 128).unwrap();
        // Warm the faulty mapping's cascade bound cache, then repair: the
        // repair must invalidate it or pruning would use stale bounds.
        let _ = deployed.search_batch_cascade(&batch, &plan).unwrap();
        scrubber.scrub_full(&mut deployed).unwrap();
        let exact = golden.search_batch(&batch).unwrap();
        let cascade = deployed.search_batch_cascade(&batch, &plan).unwrap();
        assert_eq!(cascade.predicted_rows, exact.predicted_rows);
        assert_eq!(cascade.predicted_classes, exact.predicted_classes);
        let repaired_exact = deployed.search_batch(&batch).unwrap();
        assert_eq!(repaired_exact.predicted_rows, exact.predicted_rows);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let golden = mapping(256, 4, MappingStrategy::Basic, 6);
        let other = mapping(128, 4, MappingStrategy::Basic, 6);
        let scrubber = Scrubber::new(&golden, ScrubConfig::default(), 31).unwrap();
        let mut wrong = FaultyAmMapping::program(&other, FaultModel::ideal(), 1).unwrap();
        assert!(scrubber.tick(&mut wrong).is_err());
    }
}
