//! Replicated-array readout: majority voting over independently-faulted
//! replicas.
//!
//! Spatial redundancy is the classic defence against static cell faults:
//! program the same associative memory onto `R` physical arrays, each
//! with its own (independent) defect pattern, and read back the bitwise
//! majority of the replicas. A cell reads wrong only when a majority of
//! replicas fault *the same cell*, so the effective bit-error rate drops
//! from `O(p)` to `O(p^{ceil(R/2)})` — at BER 5% and `R = 3` that is
//! roughly 0.7%, enough to restore near-ideal accuracy where a single
//! array visibly degrades (measured by the `fault_tolerance` bench).
//!
//! The vote happens digitally at readout-model construction via
//! [`hd_linalg::majority_words`] (word-level bit-sliced counters, no
//! per-bit extraction), producing a plain [`AmMapping`] whose search
//! results — including cascade and top-k paths — are exactly what a
//! per-read majority would return, at zero per-query cost.

use crate::error::{ImcError, Result};
use crate::faults::{FaultModel, FaultyAmMapping};
use crate::mapping::{
    AmMapping, BatchInferenceStats, CascadeBatchStats, InferenceStats, TopKBatchStats,
};
use hd_linalg::rng::derive_seed;
use hd_linalg::{BitMatrix, BitVector};

/// An associative memory programmed onto `R` independently-faulted
/// replica arrays, searched through their bitwise-majority readout.
///
/// The majority is **strict** (`> R/2` votes): exact for odd `R`, while
/// an even `R` resolves exact ties to 0 — prefer odd replication.
/// `R = 1` degenerates to a single [`FaultyAmMapping`].
///
/// # Example
///
/// ```
/// use hd_linalg::BitVector;
/// use hdc::BinaryAm;
/// use imc_sim::{AmMapping, ArraySpec, FaultModel, MappingStrategy, ReplicatedAmMapping};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let am = BinaryAm::from_centroids(2, vec![
///     (0, BitVector::from_bools(&[true; 64])),
///     (1, BitVector::from_bools(&[false; 64])),
/// ])?;
/// let ideal = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic)?;
/// let replicated = ReplicatedAmMapping::program(&ideal, FaultModel::bit_flip(0.05), 3, 7)?;
/// let hit = replicated.search(&BitVector::from_bools(&[true; 64]))?;
/// assert_eq!(hit.predicted_class, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedAmMapping {
    replicas: Vec<FaultyAmMapping>,
    majority: AmMapping,
    model: FaultModel,
}

impl ReplicatedAmMapping {
    /// Programs `ideal` onto `replicas` arrays, each faulted
    /// independently under `model` (replica `i` samples from
    /// `derive_seed(seed, i)`), and derives the majority readout.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] for invalid fault rates or a
    /// zero replica count.
    pub fn program(
        ideal: &AmMapping,
        model: FaultModel,
        replicas: usize,
        seed: u64,
    ) -> Result<Self> {
        if replicas == 0 {
            return Err(ImcError::InvalidSpec { reason: "replica count must be positive".into() });
        }
        let replicas: Vec<FaultyAmMapping> = (0..replicas)
            .map(|i| FaultyAmMapping::program(ideal, model, derive_seed(seed, i as u64)))
            .collect::<Result<_>>()?;
        let majority = Self::vote(ideal, &replicas)?;
        Ok(ReplicatedAmMapping { replicas, majority, model })
    }

    /// Derives the majority mapping from the replicas' partition
    /// matrices, one word-level vote per partition.
    fn vote(shape: &AmMapping, replicas: &[FaultyAmMapping]) -> Result<AmMapping> {
        let parts = shape.partition_memories().len();
        let matrices: Vec<BitMatrix> = (0..parts)
            .map(|p| {
                let views: Vec<&BitMatrix> = replicas
                    .iter()
                    .map(|r| r.as_mapping().partition_memories()[p].matrix())
                    .collect();
                BitMatrix::bitwise_majority(&views).map_err(|e| ImcError::InvalidSpec {
                    reason: format!("majority vote failed: {e}"),
                })
            })
            .collect::<Result<_>>()?;
        shape.clone_with_partition_matrices(matrices)
    }

    /// Number of replica arrays `R`.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The fault model each replica was programmed under.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The digital majority readout all searches run against. Its cells
    /// are the per-bit strict-majority vote of the replicas.
    pub fn majority_mapping(&self) -> &AmMapping {
        &self.majority
    }

    /// Replica `i`'s (independently faulted) mapping.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] if `i` is out of range.
    pub fn replica(&self, i: usize) -> Result<&FaultyAmMapping> {
        self.replicas.get(i).ok_or_else(|| ImcError::InvalidSpec {
            reason: format!("replica {i} out of range for {} replicas", self.replicas.len()),
        })
    }

    /// Cells where the majority readout still differs from `ideal` —
    /// the residual corruption replication could not vote away.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::InvalidSpec`] on a shape mismatch.
    pub fn residual_flipped(&self, ideal: &AmMapping) -> Result<usize> {
        self.majority.diff_cells(ideal)
    }

    /// Associative search on the majority readout.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] on a bad query width.
    pub fn search(&self, query: &BitVector) -> Result<InferenceStats> {
        self.majority.search(query)
    }

    /// Batched associative search on the majority readout. Partitioned
    /// layouts reuse the batch's cached per-segment views
    /// ([`hd_linalg::QueryBatch::segments`]) through the underlying
    /// [`AmMapping`], so repeated batches pay no per-call re-pack.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError::QueryDimensionMismatch`] on a bad batch width.
    pub fn search_batch(&self, batch: &hd_linalg::QueryBatch) -> Result<BatchInferenceStats> {
        self.majority.search_batch(batch)
    }

    /// Batched top-k associative search on the majority readout.
    ///
    /// # Errors
    ///
    /// As [`AmMapping::search_batch_topk`].
    pub fn search_batch_topk(
        &self,
        batch: &hd_linalg::QueryBatch,
        k: usize,
    ) -> Result<TopKBatchStats> {
        self.majority.search_batch_topk(batch, k)
    }

    /// Batched cascade search on the majority readout, bit-exact against
    /// [`ReplicatedAmMapping::search_batch`].
    ///
    /// # Errors
    ///
    /// As [`AmMapping::search_batch_cascade`].
    pub fn search_batch_cascade(
        &self,
        batch: &hd_linalg::QueryBatch,
        plan: &hd_linalg::CascadePlan,
    ) -> Result<CascadeBatchStats> {
        self.majority.search_batch_cascade(batch, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArraySpec, MappingStrategy};
    use hd_linalg::rng::seeded;
    use hdc::BinaryAm;
    use rand::Rng;

    fn small_am(dim: usize, seed: u64) -> BinaryAm {
        let mut rng = seeded(seed);
        let centroids: Vec<(usize, BitVector)> = (0..4)
            .map(|v| {
                let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                (v % 2, BitVector::from_bools(&bits))
            })
            .collect();
        BinaryAm::from_centroids(2, centroids).unwrap()
    }

    fn mapping(dim: usize, strategy: MappingStrategy, seed: u64) -> AmMapping {
        AmMapping::new(&small_am(dim, seed), ArraySpec::default(), strategy).unwrap()
    }

    #[test]
    fn ideal_replicas_match_ideal_mapping_bit_for_bit() {
        for strategy in [MappingStrategy::Basic, MappingStrategy::Partitioned { partitions: 4 }] {
            let ideal = mapping(256, strategy, 1);
            let rep = ReplicatedAmMapping::program(&ideal, FaultModel::ideal(), 3, 5).unwrap();
            assert_eq!(rep.residual_flipped(&ideal).unwrap(), 0);
            for v in 0..ideal.num_vectors() {
                assert_eq!(
                    rep.majority_mapping().logical_row(v).unwrap(),
                    ideal.logical_row(v).unwrap()
                );
            }
        }
    }

    #[test]
    fn single_replica_equals_plain_faulty_mapping() {
        let ideal = mapping(256, MappingStrategy::Basic, 2);
        let model = FaultModel::bit_flip(0.1);
        let rep = ReplicatedAmMapping::program(&ideal, model, 1, 9).unwrap();
        let plain = FaultyAmMapping::program(&ideal, model, derive_seed(9, 0)).unwrap();
        assert_eq!(rep.majority_mapping().diff_cells(plain.as_mapping()).unwrap(), 0);
    }

    #[test]
    fn majority_vote_reduces_residual_corruption() {
        let ideal = mapping(512, MappingStrategy::Basic, 3);
        let model = FaultModel::bit_flip(0.05);
        let rep = ReplicatedAmMapping::program(&ideal, model, 3, 17).unwrap();
        let single = FaultyAmMapping::program(&ideal, model, derive_seed(17, 0)).unwrap();
        let residual = rep.residual_flipped(&ideal).unwrap();
        let plain = single.effective_flipped(&ideal).unwrap();
        assert!(
            residual * 4 < plain,
            "majority residual {residual} should be far below single-array {plain}"
        );
    }

    #[test]
    fn replicas_fault_independently() {
        let ideal = mapping(256, MappingStrategy::Basic, 4);
        let rep = ReplicatedAmMapping::program(&ideal, FaultModel::bit_flip(0.1), 3, 23).unwrap();
        let d01 = rep.replica(0).unwrap().as_mapping();
        let d1 = rep.replica(1).unwrap().as_mapping();
        assert!(d01.diff_cells(d1).unwrap() > 0, "replicas must not share a fault pattern");
        assert!(rep.replica(3).is_err());
    }

    #[test]
    fn searches_agree_with_majority_mapping() {
        use hd_linalg::{CascadePlan, QueryBatch};
        let ideal = mapping(512, MappingStrategy::Partitioned { partitions: 4 }, 5);
        let rep = ReplicatedAmMapping::program(&ideal, FaultModel::bit_flip(0.02), 3, 31).unwrap();
        let mut rng = seeded(6);
        let queries: Vec<BitVector> = (0..5)
            .map(|_| BitVector::from_bools(&(0..512).map(|_| rng.gen()).collect::<Vec<_>>()))
            .collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let exact = rep.search_batch(&batch).unwrap();
        let plan = CascadePlan::prefix(512, 128).unwrap();
        let cascade = rep.search_batch_cascade(&batch, &plan).unwrap();
        assert_eq!(cascade.predicted_rows, exact.predicted_rows);
        let topk = rep.search_batch_topk(&batch, 1).unwrap();
        for (q, hits) in topk.hits.iter().enumerate() {
            assert_eq!(hits[0].row, exact.predicted_rows[q]);
        }
    }

    #[test]
    fn zero_replicas_rejected() {
        let ideal = mapping(64, MappingStrategy::Basic, 7);
        assert!(ReplicatedAmMapping::program(&ideal, FaultModel::ideal(), 0, 1).is_err());
    }
}
