//! Whole-system accounting: encoding module + associative memory
//! (the complete rows of Table II).

use crate::mapping::AmMapping;
use crate::spec::tile_grid;
use std::fmt;

/// Cycles, arrays, and utilization for a full model (EM + AM) mapped onto
/// IMC arrays — one column of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemReport {
    /// Encoding-module cycles per inference.
    pub em_cycles: usize,
    /// Associative-memory cycles per inference.
    pub am_cycles: usize,
    /// Arrays holding the encoding module.
    pub em_arrays: usize,
    /// Arrays holding the associative memory.
    pub am_arrays: usize,
    /// AM column utilization in `[0, 1]`.
    pub am_utilization: f64,
}

impl SystemReport {
    /// Total cycles per inference.
    pub fn total_cycles(&self) -> usize {
        self.em_cycles + self.am_cycles
    }

    /// Total arrays for the full model.
    pub fn total_arrays(&self) -> usize {
        self.em_arrays + self.am_arrays
    }
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles EM {} + AM {} = {}; arrays EM {} + AM {} = {}; AM util {:.2}%",
            self.em_cycles,
            self.am_cycles,
            self.total_cycles(),
            self.em_arrays,
            self.am_arrays,
            self.total_arrays(),
            self.am_utilization * 100.0
        )
    }
}

/// Builds the Table II metrics for a model whose projection encoding maps
/// an `features × D` matrix and whose AM is already mapped.
///
/// The encoding module is an MVM over an `f × D` binary matrix, so its
/// tile grid (and therefore cycles = arrays, each tile driven once) is
/// `⌈f/rows⌉ × ⌈D/cols⌉`.
pub fn system_report(features: usize, am: &AmMapping) -> SystemReport {
    let em_grid = tile_grid(features, am.dim(), am.spec());
    let am_stats = am.stats();
    SystemReport {
        em_cycles: em_grid.tiles(),
        am_cycles: am_stats.cycles,
        em_arrays: em_grid.tiles(),
        am_arrays: am_stats.arrays,
        am_utilization: am_stats.utilization,
    }
}

/// Throughput accounting for a batch of queries served by one mapped
/// system: the per-query cycle cost of [`system_report`] scaled by the
/// batch size, plus the classification results of the batched mapped
/// search.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSystemReport {
    /// Static per-query metrics.
    pub per_query: SystemReport,
    /// Predicted class per query.
    pub predicted_classes: Vec<usize>,
    /// Total cycles (EM + AM) to serve the whole batch on one physical
    /// array pipeline.
    pub total_cycles: usize,
}

/// Runs a batched mapped inference and reports whole-batch cycle costs —
/// the system-level entry point for throughput experiments.
///
/// # Errors
///
/// Returns [`crate::ImcError::QueryDimensionMismatch`] if the batch width
/// differs from the mapping's dimensionality.
pub fn batch_system_report(
    features: usize,
    am: &AmMapping,
    batch: &hd_linalg::QueryBatch,
) -> crate::error::Result<BatchSystemReport> {
    let per_query = system_report(features, am);
    let results = am.search_batch(batch)?;
    let total_cycles = per_query.total_cycles() * results.len();
    Ok(BatchSystemReport { per_query, predicted_classes: results.predicted_classes, total_cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArraySpec, MappingStrategy};
    use hd_linalg::rng::seeded;
    use hd_linalg::BitVector;
    use hdc::BinaryAm;
    use rand::Rng;

    fn random_am(num_classes: usize, per_class: usize, dim: usize, seed: u64) -> BinaryAm {
        let mut rng = seeded(seed);
        let centroids: Vec<(usize, BitVector)> = (0..num_classes)
            .flat_map(|c| {
                (0..per_class)
                    .map(|_| {
                        let bits: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
                        (c, BitVector::from_bools(&bits))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        BinaryAm::from_centroids(num_classes, centroids).unwrap()
    }

    #[test]
    fn table2_mnist_basic_row() {
        // BasicHDC, MNIST: f=784, D=10240, k=10, 128×128 arrays.
        let am = random_am(10, 1, 10240, 1);
        let mapping = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let r = system_report(784, &mapping);
        assert_eq!(r.em_cycles, 560);
        assert_eq!(r.am_cycles, 80);
        assert_eq!(r.total_cycles(), 640);
        assert_eq!(r.em_arrays, 560);
        assert_eq!(r.am_arrays, 80);
        assert_eq!(r.total_arrays(), 640);
    }

    #[test]
    fn table2_mnist_memhd_row() {
        // MEMHD 128×128 on MNIST: total 8 cycles and 8 arrays, 80×/71×
        // better than basic per the paper.
        let am = random_am(10, 12, 128, 2);
        let mut centroids: Vec<(usize, BitVector)> =
            (0..am.num_centroids()).map(|r| (am.class_of(r), am.centroid(r))).collect();
        let mut rng = seeded(3);
        while centroids.len() < 128 {
            let bits: Vec<bool> = (0..128).map(|_| rng.gen()).collect();
            centroids.push((0, BitVector::from_bools(&bits)));
        }
        let am = BinaryAm::from_centroids(10, centroids).unwrap();
        let mapping = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let r = system_report(784, &mapping);
        assert_eq!(r.total_cycles(), 8);
        assert_eq!(r.total_arrays(), 8);
        assert!((r.am_utilization - 1.0).abs() < 1e-9);
        // Improvement factors vs the basic row.
        assert_eq!(640 / r.total_cycles(), 80);
        assert_eq!(640 / r.total_arrays(), 80); // array ratio 640/8 = 80; paper reports 71x vs 568
    }

    #[test]
    fn table2_isolet_rows() {
        // ISOLET basic: f=617, D=10240, k=26 -> 400 + 80 = 480.
        let am = random_am(26, 1, 10240, 4);
        let mapping = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let r = system_report(617, &mapping);
        assert_eq!(r.total_cycles(), 480);
        assert_eq!(r.total_arrays(), 480);

        // MEMHD 512×128: 20 + 4 = 24 cycles/arrays (20× / 17.5×... -> 480/24 = 20).
        let memhd_am = random_am(26, 4, 512, 5);
        let mut centroids: Vec<(usize, BitVector)> = (0..memhd_am.num_centroids())
            .map(|r| (memhd_am.class_of(r), memhd_am.centroid(r)))
            .collect();
        let mut rng = seeded(6);
        while centroids.len() < 128 {
            let bits: Vec<bool> = (0..512).map(|_| rng.gen()).collect();
            centroids.push((0, BitVector::from_bools(&bits)));
        }
        let memhd_am = BinaryAm::from_centroids(26, centroids).unwrap();
        let mapping =
            AmMapping::new(&memhd_am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let r = system_report(617, &mapping);
        assert_eq!(r.total_cycles(), 24);
        assert_eq!(r.total_arrays(), 24);
        assert_eq!(480 / r.total_cycles(), 20);
    }

    #[test]
    fn display_format() {
        let am = random_am(2, 1, 128, 7);
        let mapping = AmMapping::new(&am, ArraySpec::default(), MappingStrategy::Basic).unwrap();
        let r = system_report(64, &mapping);
        let s = r.to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains("util"));
    }
}
