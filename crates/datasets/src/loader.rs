//! Loaders for real dataset files (used when the corpora are available).
//!
//! * [`load_idx_images`] / [`load_idx_labels`] — the IDX binary format used
//!   by MNIST and Fashion-MNIST (`train-images-idx3-ubyte` etc.).
//! * [`load_csv`] — comma-separated feature rows with a trailing integer
//!   label, the common distribution format for ISOLET.
//!
//! All loaders normalize features into `[0, 1]`.

use crate::{Dataset, DatasetError};
use hd_linalg::Matrix;
use std::io::Read;
use std::path::Path;

/// Minimal big-endian cursor over a byte slice (the `bytes` crate is not
/// available offline; IDX headers only need `get_u32`/`remaining`).
trait Buf {
    fn get_u32(&mut self) -> u32;
    fn remaining(&self) -> usize;
}

impl Buf for &[u8] {
    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().expect("split_at(4) yields 4 bytes"))
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

const IDX_IMAGES_MAGIC: u32 = 0x0000_0803;
const IDX_LABELS_MAGIC: u32 = 0x0000_0801;

/// Parses an IDX3 image file (`magic 0x803`) into an `n × (rows·cols)`
/// matrix with pixel values scaled to `[0, 1]`.
///
/// # Errors
///
/// Returns [`DatasetError::Malformed`] for a bad magic number or truncated
/// payload.
pub fn parse_idx_images(mut raw: &[u8]) -> Result<Matrix, DatasetError> {
    if raw.len() < 16 {
        return Err(DatasetError::Malformed { reason: "IDX image header too short".into() });
    }
    let magic = raw.get_u32();
    if magic != IDX_IMAGES_MAGIC {
        return Err(DatasetError::Malformed {
            reason: format!("bad IDX image magic {magic:#010x}"),
        });
    }
    let n = raw.get_u32() as usize;
    let rows = raw.get_u32() as usize;
    let cols = raw.get_u32() as usize;
    // Checked arithmetic: the header is untrusted, and a crafted file must
    // produce Malformed, not an overflow panic (or a wrapped size that
    // dodges the length check in release builds).
    let pixels = rows.checked_mul(cols).and_then(|px| px.checked_mul(n)).ok_or_else(|| {
        DatasetError::Malformed {
            reason: format!("IDX image dimensions {n}x{rows}x{cols} overflow"),
        }
    })?;
    if raw.remaining() < pixels {
        return Err(DatasetError::Malformed {
            reason: format!("expected {pixels} pixels, found {}", raw.remaining()),
        });
    }
    let data: Vec<f32> = raw[..pixels].iter().map(|&b| b as f32 / 255.0).collect();
    Matrix::from_vec(n, rows * cols, data)
        .map_err(|e| DatasetError::Malformed { reason: e.to_string() })
}

/// Parses an IDX1 label file (`magic 0x801`) into a label vector.
///
/// # Errors
///
/// Returns [`DatasetError::Malformed`] for a bad magic number or truncated
/// payload.
pub fn parse_idx_labels(mut raw: &[u8]) -> Result<Vec<usize>, DatasetError> {
    if raw.len() < 8 {
        return Err(DatasetError::Malformed { reason: "IDX label header too short".into() });
    }
    let magic = raw.get_u32();
    if magic != IDX_LABELS_MAGIC {
        return Err(DatasetError::Malformed {
            reason: format!("bad IDX label magic {magic:#010x}"),
        });
    }
    let n = raw.get_u32() as usize;
    if raw.remaining() < n {
        return Err(DatasetError::Malformed {
            reason: format!("expected {n} labels, found {}", raw.remaining()),
        });
    }
    Ok(raw[..n].iter().map(|&b| b as usize).collect())
}

/// Reads and parses an IDX3 image file from disk.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on read failure, or
/// [`DatasetError::Malformed`] for format violations.
pub fn load_idx_images(path: impl AsRef<Path>) -> Result<Matrix, DatasetError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    parse_idx_images(&buf)
}

/// Reads and parses an IDX1 label file from disk.
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on read failure, or
/// [`DatasetError::Malformed`] for format violations.
pub fn load_idx_labels(path: impl AsRef<Path>) -> Result<Vec<usize>, DatasetError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    parse_idx_labels(&buf)
}

/// Assembles an MNIST-format dataset from the four standard IDX files.
///
/// # Errors
///
/// Propagates loader errors and [`DatasetError::InvalidSpec`] if the files
/// disagree (e.g. image/label count mismatch).
pub fn load_mnist_format(
    name: &str,
    train_images: impl AsRef<Path>,
    train_labels: impl AsRef<Path>,
    test_images: impl AsRef<Path>,
    test_labels: impl AsRef<Path>,
) -> Result<Dataset, DatasetError> {
    let train_x = load_idx_images(train_images)?;
    let train_y = load_idx_labels(train_labels)?;
    let test_x = load_idx_images(test_images)?;
    let test_y = load_idx_labels(test_labels)?;
    let k = train_y.iter().chain(test_y.iter()).copied().max().map_or(0, |m| m + 1);
    Dataset::new(name, train_x, train_y, test_x, test_y, k)
}

/// Parses CSV text where each line is `f` comma-separated feature values
/// followed by one integer class label (1-based labels, as distributed for
/// ISOLET, are shifted to 0-based when `one_based_labels` is true).
///
/// Features are min–max normalized to `[0, 1]` per column.
///
/// # Errors
///
/// Returns [`DatasetError::Malformed`] for unparsable or ragged rows.
pub fn parse_csv(text: &str, one_based_labels: bool) -> Result<(Matrix, Vec<usize>), DatasetError> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(DatasetError::Malformed {
                reason: format!("line {}: fewer than 2 fields", lineno + 1),
            });
        }
        let (feat_fields, label_field) = fields.split_at(fields.len() - 1);
        let feats: Result<Vec<f32>, _> = feat_fields.iter().map(|s| s.parse::<f32>()).collect();
        let feats = feats
            .map_err(|e| DatasetError::Malformed { reason: format!("line {}: {e}", lineno + 1) })?;
        let label: f32 = label_field[0].parse().map_err(|e| DatasetError::Malformed {
            reason: format!("line {}: label: {e}", lineno + 1),
        })?;
        let mut label = label as isize;
        if one_based_labels {
            label -= 1;
        }
        if label < 0 {
            return Err(DatasetError::Malformed {
                reason: format!("line {}: negative label", lineno + 1),
            });
        }
        if let Some(first) = rows.first() {
            if feats.len() != first.len() {
                return Err(DatasetError::Malformed {
                    reason: format!(
                        "line {}: {} features, expected {}",
                        lineno + 1,
                        feats.len(),
                        first.len()
                    ),
                });
            }
        }
        rows.push(feats);
        labels.push(label as usize);
    }
    if rows.is_empty() {
        return Err(DatasetError::Malformed { reason: "no data rows".into() });
    }

    // Per-column min–max normalization to [0, 1].
    let cols = rows[0].len();
    let mut mins = vec![f32::MAX; cols];
    let mut maxs = vec![f32::MIN; cols];
    for row in &rows {
        for (c, &v) in row.iter().enumerate() {
            mins[c] = mins[c].min(v);
            maxs[c] = maxs[c].max(v);
        }
    }
    for row in &mut rows {
        for (c, v) in row.iter_mut().enumerate() {
            let range = maxs[c] - mins[c];
            *v = if range > 0.0 { (*v - mins[c]) / range } else { 0.5 };
        }
    }

    let m =
        Matrix::from_rows(&rows).map_err(|e| DatasetError::Malformed { reason: e.to_string() })?;
    Ok((m, labels))
}

/// Loads a CSV dataset file (see [`parse_csv`]).
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on read failure, or
/// [`DatasetError::Malformed`] for format violations.
pub fn load_csv(
    path: impl AsRef<Path>,
    one_based_labels: bool,
) -> Result<(Matrix, Vec<usize>), DatasetError> {
    let text = std::fs::read_to_string(path)?;
    parse_csv(&text, one_based_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx_image_bytes(n: usize, rows: usize, cols: usize) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&IDX_IMAGES_MAGIC.to_be_bytes());
        v.extend_from_slice(&(n as u32).to_be_bytes());
        v.extend_from_slice(&(rows as u32).to_be_bytes());
        v.extend_from_slice(&(cols as u32).to_be_bytes());
        for i in 0..n * rows * cols {
            v.push((i % 256) as u8);
        }
        v
    }

    #[test]
    fn idx_images_overflowing_header_rejected() {
        // Header whose n*rows*cols overflows usize must yield Malformed,
        // not a panic or a wrapped size that passes the length check.
        let mut v = Vec::new();
        v.extend_from_slice(&IDX_IMAGES_MAGIC.to_be_bytes());
        v.extend_from_slice(&u32::MAX.to_be_bytes());
        v.extend_from_slice(&u32::MAX.to_be_bytes());
        v.extend_from_slice(&16u32.to_be_bytes());
        assert!(matches!(parse_idx_images(&v), Err(DatasetError::Malformed { .. })));
    }

    #[test]
    fn idx_images_roundtrip() {
        let raw = idx_image_bytes(2, 3, 3);
        let m = parse_idx_images(&raw).unwrap();
        assert_eq!(m.shape(), (2, 9));
        assert_eq!(m.get(0, 0), 0.0);
        assert!((m.get(0, 1) - 1.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn idx_images_bad_magic() {
        let mut raw = idx_image_bytes(1, 2, 2);
        raw[3] = 0x99;
        assert!(matches!(parse_idx_images(&raw), Err(DatasetError::Malformed { .. })));
    }

    #[test]
    fn idx_images_truncated() {
        let raw = idx_image_bytes(2, 3, 3);
        assert!(matches!(
            parse_idx_images(&raw[..raw.len() - 1]),
            Err(DatasetError::Malformed { .. })
        ));
        assert!(matches!(parse_idx_images(&raw[..4]), Err(DatasetError::Malformed { .. })));
    }

    #[test]
    fn idx_labels_roundtrip() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&IDX_LABELS_MAGIC.to_be_bytes());
        raw.extend_from_slice(&3u32.to_be_bytes());
        raw.extend_from_slice(&[7, 0, 9]);
        assert_eq!(parse_idx_labels(&raw).unwrap(), vec![7, 0, 9]);
    }

    #[test]
    fn idx_labels_bad() {
        assert!(parse_idx_labels(&[0, 0]).is_err());
        let mut raw = Vec::new();
        raw.extend_from_slice(&0xdeadbeefu32.to_be_bytes());
        raw.extend_from_slice(&0u32.to_be_bytes());
        assert!(parse_idx_labels(&raw).is_err());
    }

    #[test]
    fn csv_parse_and_normalize() {
        let text = "0.0, 10.0, 1\n5.0, 20.0, 2\n10.0, 30.0, 1\n";
        let (m, labels) = parse_csv(text, true).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(labels, vec![0, 1, 0]);
        // Column 0: min 0, max 10 -> 0.0, 0.5, 1.0
        assert_eq!(m.column(0), vec![0.0, 0.5, 1.0]);
        assert_eq!(m.column(1), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn csv_constant_column_maps_to_half() {
        let text = "3.0,1.0,0\n3.0,2.0,1\n";
        let (m, _) = parse_csv(text, false).unwrap();
        assert_eq!(m.column(0), vec![0.5, 0.5]);
    }

    #[test]
    fn csv_rejects_ragged_and_garbage() {
        assert!(parse_csv("1.0,2.0,0\n1.0,0\n", false).is_err());
        assert!(parse_csv("a,b,0\n", false).is_err());
        assert!(parse_csv("", false).is_err());
        assert!(parse_csv("1.0,1\n", true).is_ok());
        // one_based shift below zero
        assert!(parse_csv("1.0,0\n", true).is_err());
    }

    #[test]
    fn csv_skips_blank_lines() {
        let text = "\n1.0,2.0,0\n\n3.0,4.0,1\n\n";
        let (m, labels) = parse_csv(text, false).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(labels, vec![0, 1]);
    }
}
