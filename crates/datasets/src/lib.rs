//! Dataset substrate for the MEMHD reproduction.
//!
//! The paper evaluates on MNIST, Fashion-MNIST, and ISOLET. Those corpora
//! are not available in this offline environment, so this crate provides
//! **synthetic multi-modal stand-ins** with matched shape and matched
//! *structure* (see `DESIGN.md` §4 for the substitution argument):
//!
//! * each class is a mixture of several Gaussian sub-clusters ("modes") —
//!   the property that makes a multi-centroid associative memory win over
//!   a single class vector;
//! * per-class sample budgets match the originals (≈6000/class for the
//!   image sets, ≈240/class for ISOLET), which drives the paper's Fig. 4
//!   overfitting observation on ISOLET;
//! * dataset difficulty is ordered MNIST < FMNIST (more class overlap),
//!   with ISOLET having many classes and few samples.
//!
//! Loaders for the real corpora (IDX for MNIST-format files, CSV for
//! ISOLET) are in [`loader`], so absolute accuracy can be re-checked
//! whenever the files are present.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loader;
pub mod synthetic;

use hd_linalg::Matrix;
use std::fmt;

/// Errors produced by dataset construction and loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetError {
    /// Generator or loader parameters were invalid.
    InvalidSpec {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An I/O error while reading a real dataset file.
    Io(std::io::Error),
    /// A real dataset file was malformed.
    Malformed {
        /// Description of the format violation.
        reason: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidSpec { reason } => write!(f, "invalid dataset spec: {reason}"),
            DatasetError::Io(e) => write!(f, "dataset i/o error: {e}"),
            DatasetError::Malformed { reason } => write!(f, "malformed dataset file: {reason}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// A labeled classification dataset split into train and test partitions.
///
/// Features are `f32` in `[0, 1]`; labels are `0..num_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"mnist-like"`).
    pub name: String,
    /// `n_train × f` training features.
    pub train_features: Matrix,
    /// Training labels, parallel to `train_features` rows.
    pub train_labels: Vec<usize>,
    /// `n_test × f` test features.
    pub test_features: Matrix,
    /// Test labels, parallel to `test_features` rows.
    pub test_labels: Vec<usize>,
    /// Number of classes `k`.
    pub num_classes: usize,
}

impl Dataset {
    /// Validates internal consistency and constructs a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] if label counts disagree with
    /// feature rows, a label is out of range, or the partitions disagree on
    /// feature width.
    pub fn new(
        name: impl Into<String>,
        train_features: Matrix,
        train_labels: Vec<usize>,
        test_features: Matrix,
        test_labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if train_features.rows() != train_labels.len() {
            return Err(DatasetError::InvalidSpec {
                reason: format!(
                    "{} train rows vs {} train labels",
                    train_features.rows(),
                    train_labels.len()
                ),
            });
        }
        if test_features.rows() != test_labels.len() {
            return Err(DatasetError::InvalidSpec {
                reason: format!(
                    "{} test rows vs {} test labels",
                    test_features.rows(),
                    test_labels.len()
                ),
            });
        }
        if test_features.rows() > 0 && train_features.cols() != test_features.cols() {
            return Err(DatasetError::InvalidSpec {
                reason: format!(
                    "train width {} vs test width {}",
                    train_features.cols(),
                    test_features.cols()
                ),
            });
        }
        if let Some(&bad) =
            train_labels.iter().chain(test_labels.iter()).find(|&&l| l >= num_classes)
        {
            return Err(DatasetError::InvalidSpec {
                reason: format!("label {bad} out of range for {num_classes} classes"),
            });
        }
        Ok(Dataset {
            name: name.into(),
            train_features,
            train_labels,
            test_features,
            test_labels,
            num_classes,
        })
    }

    /// Number of input features `f`.
    pub fn feature_dim(&self) -> usize {
        self.train_features.cols()
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    /// Per-class training sample counts.
    pub fn train_class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.train_labels {
            counts[l] += 1;
        }
        counts
    }

    /// Returns a copy with at most `per_class` training samples per class
    /// (deterministic selection from `seed`), keeping the test split
    /// intact — useful for few-shot experiments and quick sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] if `per_class` is zero.
    pub fn subsample_train(&self, per_class: usize, seed: u64) -> Result<Self, DatasetError> {
        use hd_linalg::rng::{derive_seed, seeded};
        use rand::Rng;
        if per_class == 0 {
            return Err(DatasetError::InvalidSpec { reason: "per_class must be positive".into() });
        }
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, &l) in self.train_labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut rng = seeded(derive_seed(seed, 0x73756273)); // "subs"
        let mut keep: Vec<usize> = Vec::new();
        for members in &mut by_class {
            let take = per_class.min(members.len());
            // Partial Fisher–Yates for a deterministic random subset.
            for i in 0..take {
                let j = rng.gen_range(i..members.len());
                members.swap(i, j);
            }
            keep.extend_from_slice(&members[..take]);
        }
        keep.sort_unstable();
        let rows: Vec<&[f32]> = keep.iter().map(|&i| self.train_features.row(i)).collect();
        let features = Matrix::from_rows(&rows)
            .map_err(|e| DatasetError::InvalidSpec { reason: e.to_string() })?;
        let labels: Vec<usize> = keep.iter().map(|&i| self.train_labels[i]).collect();
        Dataset::new(
            self.name.clone(),
            features,
            labels,
            self.test_features.clone(),
            self.test_labels.clone(),
            self.num_classes,
        )
    }

    /// Returns the training samples of one class as a feature matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] if the class is out of range
    /// or has no samples.
    pub fn train_samples_of_class(&self, class: usize) -> Result<Matrix, DatasetError> {
        if class >= self.num_classes {
            return Err(DatasetError::InvalidSpec {
                reason: format!("class {class} out of range for {}", self.num_classes),
            });
        }
        let rows: Vec<&[f32]> = self
            .train_labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| self.train_features.row(i))
            .collect();
        if rows.is_empty() {
            return Err(DatasetError::InvalidSpec {
                reason: format!("class {class} has no training samples"),
            });
        }
        Matrix::from_rows(&rows).map_err(|e| DatasetError::InvalidSpec { reason: e.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_train_respects_budget() {
        let ds = synthetic::SyntheticSpec::mnist_like(20, 5).generate(1).unwrap();
        let small = ds.subsample_train(7, 3).unwrap();
        assert_eq!(small.train_class_counts(), vec![7; 10]);
        assert_eq!(small.test_len(), ds.test_len());
        // Deterministic under seed.
        let again = ds.subsample_train(7, 3).unwrap();
        assert_eq!(small.train_features, again.train_features);
        // Budget above availability keeps everything.
        let all = ds.subsample_train(500, 3).unwrap();
        assert_eq!(all.train_len(), ds.train_len());
        assert!(ds.subsample_train(0, 3).is_err());
    }

    #[test]
    fn train_samples_of_class_filters() {
        let ds = synthetic::SyntheticSpec::mnist_like(9, 2).generate(2).unwrap();
        let m = ds.train_samples_of_class(4).unwrap();
        assert_eq!(m.rows(), 9);
        assert_eq!(m.cols(), ds.feature_dim());
        assert!(ds.train_samples_of_class(10).is_err());
    }

    #[test]
    fn dataset_validation() {
        let train = Matrix::zeros(4, 3);
        let test = Matrix::zeros(2, 3);
        let ds = Dataset::new("t", train.clone(), vec![0, 1, 0, 1], test.clone(), vec![0, 1], 2)
            .unwrap();
        assert_eq!(ds.feature_dim(), 3);
        assert_eq!(ds.train_len(), 4);
        assert_eq!(ds.test_len(), 2);
        assert_eq!(ds.train_class_counts(), vec![2, 2]);

        // label count mismatch
        assert!(Dataset::new("t", train.clone(), vec![0], test.clone(), vec![0, 1], 2).is_err());
        // out-of-range label
        assert!(Dataset::new("t", train.clone(), vec![0, 1, 0, 5], test.clone(), vec![0, 1], 2)
            .is_err());
        // width mismatch
        let bad_test = Matrix::zeros(2, 4);
        assert!(Dataset::new("t", train, vec![0, 1, 0, 1], bad_test, vec![0, 1], 2).is_err());
    }
}
