//! Synthetic multi-modal classification datasets.
//!
//! Each class is a mixture of Gaussian sub-clusters ("modes"). A single
//! prototype per class cannot capture a multi-modal class — exactly the
//! regime where MEMHD's multi-centroid associative memory pays off — while
//! the per-mode structure is still compact enough for clustering-based
//! initialization to find.
//!
//! The three presets mirror the paper's evaluation corpora in shape and
//! difficulty ordering:
//!
//! | preset | f | k | modes/class | difficulty knob |
//! |---|---|---|---|---|
//! | [`SyntheticSpec::mnist_like`] | 784 | 10 | 4 | well-separated anchors |
//! | [`SyntheticSpec::fmnist_like`] | 784 | 10 | 5 | anchors pulled together (more overlap) |
//! | [`SyntheticSpec::isolet_like`] | 617 | 26 | 3 | few samples/class, many classes |

use crate::{Dataset, DatasetError};
use hd_linalg::rng::{derive_seed, seeded, Normal};
use hd_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Specification for a synthetic multi-modal dataset.
///
/// Construct via a preset ([`SyntheticSpec::mnist_like`] et al.) or
/// [`SyntheticSpec::builder`]-style `with_*` methods, then call
/// [`SyntheticSpec::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    name: String,
    feature_dim: usize,
    num_classes: usize,
    modes_per_class: usize,
    train_per_class: usize,
    test_per_class: usize,
    /// Distance scale of class anchors from the feature-space center —
    /// smaller values pull classes together and raise confusability.
    anchor_spread: f32,
    /// Displacement of each mode center from its class anchor.
    mode_spread: f32,
    /// Gaussian noise around each mode center.
    noise: f32,
}

impl SyntheticSpec {
    /// Starts a fully-custom specification.
    ///
    /// Defaults: 4 modes/class, 100 train and 20 test samples per class,
    /// anchor spread 0.35, mode spread 0.18, noise 0.08.
    pub fn builder(name: impl Into<String>, feature_dim: usize, num_classes: usize) -> Self {
        SyntheticSpec {
            name: name.into(),
            feature_dim,
            num_classes,
            modes_per_class: 4,
            train_per_class: 100,
            test_per_class: 20,
            anchor_spread: 0.17,
            mode_spread: 0.32,
            noise: 0.14,
        }
    }

    /// MNIST-shaped preset: 784 features, 10 classes, 4 modes per class,
    /// well separated (highest achievable accuracy of the three presets).
    ///
    /// `train_per_class`/`test_per_class` control the sample budget; the
    /// paper-scale values are 6000/1000.
    pub fn mnist_like(train_per_class: usize, test_per_class: usize) -> Self {
        SyntheticSpec { train_per_class, test_per_class, ..Self::builder("mnist-like", 784, 10) }
    }

    /// Fashion-MNIST-shaped preset: same shape as MNIST but with class
    /// anchors pulled toward each other and noisier modes, so accuracies
    /// land visibly below the MNIST-like preset (as in the paper).
    pub fn fmnist_like(train_per_class: usize, test_per_class: usize) -> Self {
        SyntheticSpec {
            train_per_class,
            test_per_class,
            modes_per_class: 5,
            anchor_spread: 0.13,
            mode_spread: 0.30,
            noise: 0.16,
            ..Self::builder("fmnist-like", 784, 10)
        }
    }

    /// ISOLET-shaped preset: 617 features, 26 classes, ~240 train / 60 test
    /// per class by default (pass overrides for quick runs). Few samples
    /// per class and many classes reproduce the paper's Fig. 4 overfitting
    /// regime when too many centroids are allocated.
    pub fn isolet_like(train_per_class: usize, test_per_class: usize) -> Self {
        SyntheticSpec {
            train_per_class,
            test_per_class,
            modes_per_class: 3,
            anchor_spread: 0.16,
            mode_spread: 0.26,
            noise: 0.13,
            ..Self::builder("isolet-like", 617, 26)
        }
    }

    /// Overrides the number of modes per class.
    pub fn with_modes_per_class(mut self, modes: usize) -> Self {
        self.modes_per_class = modes;
        self
    }

    /// Overrides the anchor spread (class separation).
    pub fn with_anchor_spread(mut self, spread: f32) -> Self {
        self.anchor_spread = spread;
        self
    }

    /// Overrides the mode spread (intra-class multi-modality).
    pub fn with_mode_spread(mut self, spread: f32) -> Self {
        self.mode_spread = spread;
        self
    }

    /// Overrides the per-sample Gaussian noise.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature width `f`.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidSpec`] if any dimension or sample
    /// count is zero.
    pub fn generate(&self, seed: u64) -> Result<Dataset, DatasetError> {
        if self.feature_dim == 0
            || self.num_classes == 0
            || self.modes_per_class == 0
            || self.train_per_class == 0
            || self.test_per_class == 0
        {
            return Err(DatasetError::InvalidSpec {
                reason: "all dimensions and sample counts must be positive".into(),
            });
        }

        let mut rng = seeded(derive_seed(seed, 0x73796e74)); // "synt"
        let noise = Normal::new(0.0, self.noise);

        // Class anchors: random unit-ish directions scaled by anchor_spread
        // around the center 0.5. High-dimensional random directions are
        // nearly orthogonal, which gives classes consistent separation.
        let mut mode_centers: Vec<Vec<Vec<f32>>> = Vec::with_capacity(self.num_classes);
        for _ in 0..self.num_classes {
            let anchor: Vec<f32> = (0..self.feature_dim)
                .map(|_| 0.5 + self.anchor_spread * (rng.gen::<f32>() - 0.5) * 2.0)
                .collect();
            let centers: Vec<Vec<f32>> = (0..self.modes_per_class)
                .map(|_| {
                    anchor
                        .iter()
                        .map(|&a| a + self.mode_spread * (rng.gen::<f32>() - 0.5) * 2.0)
                        .collect()
                })
                .collect();
            mode_centers.push(centers);
        }

        let gen_split = |per_class: usize, rng: &mut StdRng| {
            let n = per_class * self.num_classes;
            let mut rows: Vec<Vec<f32>> = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for (class, class_centers) in mode_centers.iter().enumerate() {
                for s in 0..per_class {
                    // Cycle modes so every mode gets samples even for tiny
                    // budgets, then add Gaussian noise and clamp to [0,1].
                    let mode = s % self.modes_per_class;
                    let center = &class_centers[mode];
                    let row: Vec<f32> =
                        center.iter().map(|&c| (c + noise.sample(rng)).clamp(0.0, 1.0)).collect();
                    rows.push(row);
                    labels.push(class);
                }
            }
            // Shuffle samples so class order carries no information.
            for i in (1..rows.len()).rev() {
                let j = rng.gen_range(0..=i);
                rows.swap(i, j);
                labels.swap(i, j);
            }
            (rows, labels)
        };

        let (train_rows, train_labels) = gen_split(self.train_per_class, &mut rng);
        let (test_rows, test_labels) = gen_split(self.test_per_class, &mut rng);

        let train_features = Matrix::from_rows(&train_rows)
            .map_err(|e| DatasetError::InvalidSpec { reason: e.to_string() })?;
        let test_features = Matrix::from_rows(&test_rows)
            .map_err(|e| DatasetError::InvalidSpec { reason: e.to_string() })?;

        Dataset::new(
            self.name.clone(),
            train_features,
            train_labels,
            test_features,
            test_labels,
            self.num_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_like_shape() {
        let ds = SyntheticSpec::mnist_like(20, 5).generate(1).unwrap();
        assert_eq!(ds.feature_dim(), 784);
        assert_eq!(ds.num_classes, 10);
        assert_eq!(ds.train_len(), 200);
        assert_eq!(ds.test_len(), 50);
        assert_eq!(ds.train_class_counts(), vec![20; 10]);
    }

    #[test]
    fn isolet_like_shape() {
        let ds = SyntheticSpec::isolet_like(10, 4).generate(1).unwrap();
        assert_eq!(ds.feature_dim(), 617);
        assert_eq!(ds.num_classes, 26);
        assert_eq!(ds.train_len(), 260);
    }

    #[test]
    fn features_in_unit_interval() {
        let ds = SyntheticSpec::fmnist_like(10, 2).generate(3).unwrap();
        for v in ds.train_features.as_slice() {
            assert!((0.0..=1.0).contains(v), "feature {v} out of range");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticSpec::mnist_like(5, 2).generate(7).unwrap();
        let b = SyntheticSpec::mnist_like(5, 2).generate(7).unwrap();
        assert_eq!(a.train_features, b.train_features);
        assert_eq!(a.train_labels, b.train_labels);
        let c = SyntheticSpec::mnist_like(5, 2).generate(8).unwrap();
        assert_ne!(a.train_features, c.train_features);
    }

    #[test]
    fn classes_are_linearly_distinguishable() {
        // Nearest-class-mean classifier on raw features should beat chance
        // comfortably on the mnist-like preset.
        let ds = SyntheticSpec::mnist_like(30, 10).generate(5).unwrap();
        let f = ds.feature_dim();
        let mut means = vec![vec![0.0f32; f]; ds.num_classes];
        let mut counts = vec![0usize; ds.num_classes];
        for (i, &l) in ds.train_labels.iter().enumerate() {
            for (m, v) in means[l].iter_mut().zip(ds.train_features.row(i)) {
                *m += v;
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for (i, &l) in ds.test_labels.iter().enumerate() {
            let row = ds.test_features.row(i);
            let pred = (0..ds.num_classes)
                .min_by(|&a, &b| {
                    let da: f32 = row.iter().zip(&means[a]).map(|(x, y)| (x - y) * (x - y)).sum();
                    let db: f32 = row.iter().zip(&means[b]).map(|(x, y)| (x - y) * (x - y)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.test_len() as f64;
        assert!(acc > 0.5, "nearest-mean accuracy {acc}");
    }

    #[test]
    fn multi_modality_is_real() {
        // Within a class, samples from the same mode should be closer than
        // samples from different modes on average — i.e. the class is
        // genuinely multi-modal rather than one blob.
        let spec = SyntheticSpec::builder("mm", 64, 1)
            .with_modes_per_class(2)
            .with_mode_spread(0.3)
            .with_noise(0.02);
        let ds = spec.generate(11).unwrap();
        // Modes cycle: even sample index = mode 0, odd = mode 1 before the
        // shuffle; recover structure by clustering distances instead.
        // Compute pairwise distances and check a bimodal split exists:
        // max distance within the set should far exceed the min.
        let n = ds.train_len();
        let mut min_d = f32::MAX;
        let mut max_d = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let d: f32 = ds
                    .train_features
                    .row(i)
                    .iter()
                    .zip(ds.train_features.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
        }
        assert!(max_d > 4.0 * min_d, "min {min_d} max {max_d}");
    }

    #[test]
    fn zero_counts_rejected() {
        assert!(SyntheticSpec::mnist_like(0, 5).generate(1).is_err());
        assert!(SyntheticSpec::mnist_like(5, 0).generate(1).is_err());
        assert!(SyntheticSpec::builder("x", 0, 2).generate(1).is_err());
    }

    #[test]
    fn fmnist_harder_than_mnist() {
        // Confusability ordering: nearest-class-mean accuracy on the
        // fmnist-like preset should not exceed the mnist-like preset.
        fn ncm_accuracy(ds: &Dataset) -> f64 {
            let f = ds.feature_dim();
            let mut means = vec![vec![0.0f32; f]; ds.num_classes];
            let mut counts = vec![0usize; ds.num_classes];
            for (i, &l) in ds.train_labels.iter().enumerate() {
                for (m, v) in means[l].iter_mut().zip(ds.train_features.row(i)) {
                    *m += v;
                }
                counts[l] += 1;
            }
            for (m, &c) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= c.max(1) as f32;
                }
            }
            let mut correct = 0;
            for (i, &l) in ds.test_labels.iter().enumerate() {
                let row = ds.test_features.row(i);
                let pred = (0..ds.num_classes)
                    .min_by(|&a, &b| {
                        let da: f32 =
                            row.iter().zip(&means[a]).map(|(x, y)| (x - y) * (x - y)).sum();
                        let db: f32 =
                            row.iter().zip(&means[b]).map(|(x, y)| (x - y) * (x - y)).sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                if pred == l {
                    correct += 1;
                }
            }
            correct as f64 / ds.test_len() as f64
        }
        let mnist = SyntheticSpec::mnist_like(40, 20).generate(2).unwrap();
        let fmnist = SyntheticSpec::fmnist_like(40, 20).generate(2).unwrap();
        assert!(ncm_accuracy(&fmnist) <= ncm_accuracy(&mnist) + 0.05);
    }
}
