//! SIMD ↔ scalar equivalence properties.
//!
//! Every kernel backend reachable on the host must be **bit-identical**
//! to the portable scalar reference — dot products, Hamming distances,
//! blocked batched sweeps, and winner selection including the low-row
//! tie-break, across tail-word widths and padding configurations. These
//! properties are the contract that lets the dispatch table swap backends
//! freely at startup.

use hd_linalg::kernel::{self, Backend};
use hd_linalg::{BitMatrix, BitVector, BlockedBitMatrix, QueryBatch, SearchMemory};
use proptest::prelude::*;

fn bool_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

/// Dimensions covering sub-word, exact-word, and multi-word tails, plus
/// widths that cross the flat kernels' 4- and 8-word vector strides.
fn dims() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 7, 63, 64, 65, 127, 128, 129, 255, 256, 300, 520])
}

fn bits(len: usize) -> impl Strategy<Value = BitVector> {
    bool_vec(len).prop_map(|b| BitVector::from_bools(&b))
}

fn bit_rows(rows: usize, len: usize) -> impl Strategy<Value = Vec<BitVector>> {
    prop::collection::vec(bits(len), rows)
}

proptest! {
    /// Flat dot/hamming kernels agree with scalar on every backend.
    #[test]
    fn flat_kernels_match_scalar(
        (a, b) in dims().prop_flat_map(|d| (bits(d), bits(d)))
    ) {
        let expected_dot = kernel::dot_words_with(Backend::Scalar, a.as_words(), b.as_words());
        let expected_ham =
            kernel::hamming_words_with(Backend::Scalar, a.as_words(), b.as_words());
        for backend in Backend::available() {
            prop_assert_eq!(
                kernel::dot_words_with(backend, a.as_words(), b.as_words()),
                expected_dot,
                "dot backend {}", backend
            );
            prop_assert_eq!(
                kernel::hamming_words_with(backend, a.as_words(), b.as_words()),
                expected_ham,
                "hamming backend {}", backend
            );
        }
    }

    /// Blocked batched dot sweeps are bit-identical to the row-major
    /// scalar reference on every backend, including partially padded
    /// final row blocks.
    #[test]
    fn blocked_dot_matches_scalar(
        (rows, queries) in (1usize..20, dims()).prop_flat_map(|(r, d)| {
            (bit_rows(r, d), bit_rows(11, d))
        })
    ) {
        let m = BitMatrix::from_rows(&rows).unwrap();
        let blocked = BlockedBitMatrix::from_matrix(&m);
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        for backend in Backend::available() {
            let scores = blocked.dot_batch_with(&batch, backend).unwrap();
            for (q, query) in queries.iter().enumerate() {
                prop_assert_eq!(
                    scores.scores(q),
                    m.dot_all(query).as_slice(),
                    "backend {} query {}", backend, q
                );
            }
        }
    }

    /// Blocked winners agree with the scalar argmax — same winning row,
    /// same score, same low-row tie-break — on every backend.
    #[test]
    fn blocked_winners_match_scalar(
        (rows, queries) in (1usize..20, dims()).prop_flat_map(|(r, d)| {
            (bit_rows(r, d), bit_rows(9, d))
        })
    ) {
        let m = BitMatrix::from_rows(&rows).unwrap();
        let blocked = BlockedBitMatrix::from_matrix(&m);
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        for backend in Backend::available() {
            let winners = blocked.winners_batch_with(&batch, backend).unwrap();
            for (q, query) in queries.iter().enumerate() {
                let expected = hd_linalg::argmax_u32(&m.dot_all(query));
                prop_assert_eq!(
                    winners[q], expected,
                    "backend {} query {}", backend, q
                );
            }
        }
    }

    /// Tie stress: memories built from a handful of duplicated row
    /// patterns force frequent score ties; every backend must still pick
    /// the lowest winning row.
    #[test]
    fn blocked_winners_tie_break(
        (patterns, picks, queries) in (2usize..5, 64usize..130).prop_flat_map(|(p, d)| {
            (
                bit_rows(p, d),
                prop::collection::vec(0usize..p, 4..35),
                bit_rows(6, d),
            )
        })
    ) {
        // Rows repeat the few patterns (duplicates => exact ties).
        let rows: Vec<BitVector> = picks.iter().map(|&i| patterns[i].clone()).collect();
        let m = BitMatrix::from_rows(&rows).unwrap();
        let blocked = BlockedBitMatrix::from_matrix(&m);
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        for backend in Backend::available() {
            let winners = blocked.winners_batch_with(&batch, backend).unwrap();
            for (q, query) in queries.iter().enumerate() {
                let scores = m.dot_all(query);
                let (row, score) = winners[q];
                prop_assert_eq!(score, scores[row], "backend {}", backend);
                // No earlier row may reach the winning score.
                for (r, &s) in scores.iter().enumerate().take(row) {
                    prop_assert!(
                        s < score,
                        "backend {} query {}: row {} ties winner {}", backend, q, r, row
                    );
                }
                prop_assert!(scores.iter().all(|&s| s <= score));
            }
        }
    }

    /// Pack → unpack is the identity for every shape.
    #[test]
    fn blocked_roundtrip(
        rows in (1usize..26, dims()).prop_flat_map(|(r, d)| bit_rows(r, d))
    ) {
        let m = BitMatrix::from_rows(&rows).unwrap();
        let blocked = BlockedBitMatrix::from_matrix(&m);
        prop_assert_eq!(blocked.to_matrix(), m.clone());
        for (r, row) in rows.iter().enumerate() {
            prop_assert_eq!(&blocked.row(r), row);
        }
        // And the same round-trip through the row-slice constructor.
        prop_assert_eq!(BlockedBitMatrix::from_rows(&rows).unwrap().to_matrix(), m);
    }

    /// The public entry points (active-backend dispatch, SearchMemory,
    /// on-the-fly packing in BitMatrix::dot_batch / winners_batch) all
    /// agree with each other — large batches so the packing path engages.
    #[test]
    fn entry_points_agree(
        (rows, queries) in (1usize..17, prop::sample::select(vec![64usize, 128, 200]))
            .prop_flat_map(|(r, d)| (bit_rows(r, d), bit_rows(40, d)))
    ) {
        let m = BitMatrix::from_rows(&rows).unwrap();
        let mem = SearchMemory::new(m.clone());
        let blocked = BlockedBitMatrix::from_matrix(&m);
        let batch = QueryBatch::from_vectors(&queries).unwrap();

        let reference = m.dot_batch(&batch).unwrap();
        prop_assert_eq!(&mem.dot_batch(&batch).unwrap(), &reference);
        prop_assert_eq!(&blocked.dot_batch(&batch).unwrap(), &reference);

        let ref_winners = m.winners_batch(&batch).unwrap();
        prop_assert_eq!(&mem.winners_batch(&batch).unwrap(), &ref_winners);
        prop_assert_eq!(&blocked.winners_batch(&batch).unwrap(), &ref_winners);
        for (q, &(row, score)) in ref_winners.iter().enumerate() {
            prop_assert_eq!(reference.scores(q)[row], score);
        }
    }
}

#[test]
fn active_backend_is_available() {
    let active = kernel::active();
    assert!(active.is_available());
    assert!(Backend::available().contains(&active));
}
