//! Edge-geometry coverage for the interleaved [`BlockedBitMatrix`]
//! layout: dimensions that are not a multiple of the 64-bit panel word,
//! row counts that are not a multiple of the 8-row block, degenerate 0/1
//! row matrices, and all-tie score fields — asserting on **every backend
//! reachable on this host** that the blocked sweep is bit-identical to
//! the row-major reference (scores, winners, and the low-row tie-break).

use hd_linalg::kernel::Backend;
use hd_linalg::{BitMatrix, BlockedBitMatrix, QueryBatch, BLOCK_LANES};
use proptest::prelude::*;

fn deterministic_matrix(rows: usize, cols: usize, salt: u64) -> BitMatrix {
    let mut m = BitMatrix::zeros(rows, cols);
    let mut state = salt | 1;
    for r in 0..rows {
        for c in 0..cols {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 63 == 1 {
                m.set(r, c, true);
            }
        }
    }
    m
}

fn deterministic_batch(queries: usize, cols: usize, salt: u64) -> QueryBatch {
    let m = deterministic_matrix(queries, cols, salt);
    QueryBatch::from_matrix(m)
}

/// Blocked scores and winners must equal the row-major reference on
/// every reachable backend, for the given geometry.
fn assert_blocked_matches(m: &BitMatrix, batch: &QueryBatch, label: &str) {
    let blocked = BlockedBitMatrix::from_matrix(m);
    let ref_scores = m.dot_batch(batch).expect("reference dot_batch");
    let ref_winners: Vec<(usize, u32)> =
        (0..batch.len()).map(|q| hd_linalg::argmax_u32(ref_scores.scores(q))).collect();
    for backend in Backend::available() {
        let scores = blocked.dot_batch_with(batch, backend).expect("blocked dot");
        assert_eq!(scores, ref_scores, "{label}: scores diverge on {backend}");
        let winners = blocked.winners_batch_with(batch, backend).expect("blocked winners");
        assert_eq!(winners, ref_winners, "{label}: winners diverge on {backend}");
    }
}

/// Dimensions straddling panel-word boundaries and row counts straddling
/// the 8-row block: every remainder class of both.
#[test]
fn word_and_block_remainder_geometries() {
    for &cols in &[1usize, 63, 64, 65, 127, 128, 129, 191, 300] {
        for &rows in &[1usize, 7, 8, 9, 15, 16, 17] {
            let m = deterministic_matrix(rows, cols, (rows * 1000 + cols) as u64);
            let batch = deterministic_batch(5, cols, 0xbeef + cols as u64);
            assert_blocked_matches(&m, &batch, &format!("{rows}x{cols}"));
        }
    }
}

/// Class counts that are not a multiple of 8 leave padded lanes in the
/// final block; those lanes must never win (they hold score 0 and rows
/// >= rows()).
#[test]
fn padded_final_block_never_wins() {
    // All-zero real rows: every score ties at 0 and the winner must be
    // row 0, not a padding lane.
    for rows in 1..=9usize {
        let m = BitMatrix::zeros(rows, 70);
        let blocked = BlockedBitMatrix::from_matrix(&m);
        let batch = deterministic_batch(3, 70, 99);
        for backend in Backend::available() {
            for &(row, score) in &blocked.winners_batch_with(&batch, backend).unwrap() {
                assert_eq!((row, score), (0, 0), "{rows} rows on {backend}");
            }
        }
    }
}

/// All-ties field: identical rows everywhere — the winner must be row 0
/// on every backend (the global low-row tie-break).
#[test]
fn all_tie_rows_resolve_to_row_zero() {
    for &rows in &[3usize, 8, 11, 24] {
        let proto = deterministic_matrix(1, 130, 7).row(0);
        let m = BitMatrix::from_rows(&vec![proto; rows]).unwrap();
        let batch = deterministic_batch(6, 130, 13);
        let blocked = BlockedBitMatrix::from_matrix(&m);
        for backend in Backend::available() {
            for (q, &(row, score)) in
                blocked.winners_batch_with(&batch, backend).unwrap().iter().enumerate()
            {
                assert_eq!(row, 0, "{rows} tied rows, query {q}, backend {backend}");
                assert_eq!(score, m.row_dot(0, &batch.query(q).to_bit_vector()));
            }
        }
    }
}

/// Single-row and single-query degenerate shapes.
#[test]
fn degenerate_single_row_and_query() {
    let m = deterministic_matrix(1, 65, 21);
    let batch = deterministic_batch(1, 65, 22);
    assert_blocked_matches(&m, &batch, "1x65 single query");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary geometry: blocked == row-major on every reachable
    /// backend, with rows/cols drawn to hit every remainder class of the
    /// block height and panel word width.
    #[test]
    fn blocked_equals_rowmajor_arbitrary_geometry(
        rows in 1usize..40,
        cols in 1usize..200,
        queries in 1usize..12,
        salt in any::<u64>(),
    ) {
        let m = deterministic_matrix(rows, cols, salt);
        let batch = deterministic_batch(queries, cols, salt ^ 0xa5a5_a5a5);
        assert_blocked_matches(&m, &batch, &format!("prop {rows}x{cols}x{queries}"));
    }

    /// Row-range sub-views keep winners consistent with the parent: a
    /// shard-aligned slice answers exactly like the same rows of the full
    /// memory.
    #[test]
    fn row_range_winners_match_parent(
        blocks in 2usize..5,
        extra in 0usize..hd_linalg::BLOCK_LANES,
        cols in 1usize..150,
        salt in any::<u64>(),
    ) {
        let rows = (blocks - 1) * BLOCK_LANES + extra.max(1);
        let m = deterministic_matrix(rows, cols, salt);
        let blocked = BlockedBitMatrix::from_matrix(&m);
        let batch = deterministic_batch(4, cols, salt ^ 0x5a5a);
        let start = BLOCK_LANES;
        let count = rows - start;
        let sub = blocked.row_range(start, count).unwrap();
        let full = blocked.dot_batch(&batch).unwrap();
        let sliced = sub.dot_batch(&batch).unwrap();
        for q in 0..batch.len() {
            prop_assert_eq!(sliced.scores(q), &full.scores(q)[start..], "query {}", q);
        }
    }
}
