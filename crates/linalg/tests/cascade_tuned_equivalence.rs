//! Auto-tuned-plan and cached-bound-form equivalence properties.
//!
//! `CascadePlan::tuned` must always produce a *valid* plan whose cascade
//! is **bit-identical** to the exact sweep — for arbitrary memories and
//! query samples, on every kernel backend reachable on the host (the CI
//! scalar-forced job runs this suite with `HD_LINALG_BACKEND=scalar`).
//! The bound-form cache attached to `SearchMemory` must be equally
//! invisible: repeated searches reuse the cached derivation, mutation
//! invalidates it, and results stay exact either way. The segmented
//! (partitioned-layout) cascade obeys the same contract.

use hd_linalg::kernel::Backend;
use hd_linalg::{BitVector, CascadePlan, CostModel, QueryBatch, SearchMemory, SegmentedCascade};
use proptest::prelude::*;

fn bool_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

fn bits(len: usize) -> impl Strategy<Value = BitVector> {
    bool_vec(len).prop_map(|b| BitVector::from_bools(&b))
}

fn bit_rows(rows: usize, len: usize) -> impl Strategy<Value = Vec<BitVector>> {
    prop::collection::vec(bits(len), rows)
}

/// Sparse rows with one dense outlier: the shapes where tuning actually
/// picks a multi-stage plan (uniform random rows tune to the exact plan,
/// which is also worth covering — both appear under this strategy).
fn mixed_density_rows(rows: usize, len: usize) -> impl Strategy<Value = Vec<BitVector>> {
    (bit_rows(1, len), prop::collection::vec(0u8..=20, rows.saturating_sub(1))).prop_map(
        move |(dense, densities)| {
            let mut out = dense;
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for (i, d) in densities.iter().enumerate() {
                let bools: Vec<bool> = (0..len)
                    .map(|j| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407 + (i + j) as u64);
                        (state >> 56) as u8 % 100 < *d
                    })
                    .collect();
                out.push(BitVector::from_bools(&bools));
            }
            out
        },
    )
}

/// Dimensions with and without tuning candidates (below 128 every
/// candidate grid is empty and `tuned` must fall back to the exact
/// plan), word-aligned and masked tails included.
fn dims() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![65usize, 128, 130, 192, 256, 300])
}

proptest! {
    /// `tuned` always yields a valid plan whose cascade results are
    /// bit-identical to the exact sweep, on every reachable backend and
    /// through the cached active-backend path (twice, so the second call
    /// exercises a cache hit).
    #[test]
    fn tuned_plan_is_valid_and_exact(
        (rows, queries) in (2usize..14, dims()).prop_flat_map(|(r, d)| {
            (mixed_density_rows(r, d), bit_rows(7, d))
        })
    ) {
        let dim = rows[0].len();
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let plan = CascadePlan::tuned(&mem, &batch).unwrap();
        // Structural validity: covers the memory's width, strictly
        // increasing boundaries ending at dim, interior boundaries on
        // the word grid (the tuner's candidate set).
        prop_assert_eq!(plan.dim(), dim);
        let ends = plan.ends();
        prop_assert_eq!(*ends.last().unwrap(), dim);
        for pair in ends.windows(2) {
            prop_assert!(pair[0] < pair[1], "ends not increasing: {:?}", ends);
        }
        for &e in &ends[..ends.len() - 1] {
            prop_assert!(e % 64 == 0, "interior boundary {} off the word grid", e);
        }
        // Tuning is deterministic.
        prop_assert_eq!(&plan, &CascadePlan::tuned(&mem, &batch).unwrap());
        // Bit-identical to the exact sweep everywhere.
        let reference = mem.winners_batch(&batch).unwrap();
        for backend in Backend::available() {
            let out = mem.search_cascade_with(&batch, &plan, backend).unwrap();
            prop_assert_eq!(out.winners(), reference.as_slice(), "backend {}", backend);
        }
        let first = mem.search_cascade(&batch, &plan).unwrap();
        prop_assert_eq!(first.winners(), reference.as_slice());
        prop_assert_eq!(&mem.search_cascade(&batch, &plan).unwrap(), &first);
    }

    /// Mutating a memory invalidates its cached bound forms: cascades
    /// after the mutation match a freshly-built memory bit for bit (a
    /// stale prefix sub-memory or row-suffix table would corrupt either
    /// the partial scores or the pruning bound).
    #[test]
    fn mutation_rebuilds_cached_bound_forms(
        (rows, queries, flips) in (2usize..10, dims()).prop_flat_map(|(r, d)| {
            (
                bit_rows(r, d),
                bit_rows(6, d),
                prop::collection::vec((0..r, 0..d), 1..8),
            )
        })
    ) {
        let dim = rows[0].len();
        let mut mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let plan = CascadePlan::prefix(dim, dim / 2).unwrap();
        // Warm the cache with pre-mutation derivations.
        mem.search_cascade(&batch, &plan).unwrap();
        mem.modify(|m| {
            for &(r, c) in &flips {
                let flipped = !m.get(r, c);
                m.set(r, c, flipped);
            }
        });
        let fresh = SearchMemory::new(mem.matrix().clone());
        let expected = fresh.winners_batch(&batch).unwrap();
        prop_assert_eq!(mem.winners_batch(&batch).unwrap(), expected.clone());
        let cascade = mem.search_cascade(&batch, &plan).unwrap();
        prop_assert_eq!(cascade.winners(), expected.as_slice());
        // The tuned plan of the mutated memory is exact too.
        let tuned = CascadePlan::tuned(&mem, &batch).unwrap();
        prop_assert_eq!(
            mem.search_cascade(&batch, &tuned).unwrap().winners(),
            expected.as_slice()
        );
    }

    /// The segmented (partitioned-layout) cascade matches the contiguous
    /// exact search for arbitrary segment counts and segment-aligned
    /// plans, including tuned-then-snapped ones.
    #[test]
    fn segmented_cascade_matches_exact(
        (rows, queries, parts_pick) in (2usize..12, prop::sample::select(vec![128usize, 192, 256, 320]))
            .prop_flat_map(|(r, d)| (mixed_density_rows(r, d), bit_rows(6, d), 0usize..3))
    ) {
        let dim = rows[0].len();
        let divisors: Vec<usize> = [2usize, 4, 8, 3, 5].iter().copied().filter(|p| dim % p == 0).collect();
        let p = divisors[parts_pick % divisors.len()];
        let seg = dim / p;
        let parts: Vec<SearchMemory> = (0..p)
            .map(|i| {
                let segs: Vec<BitVector> = rows.iter().map(|r| r.slice(i * seg, seg)).collect();
                SearchMemory::from_rows(&segs).unwrap()
            })
            .collect();
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let reference = mem.winners_batch(&batch).unwrap();
        let mut plans = vec![CascadePlan::exact(dim)];
        if p > 1 {
            plans.push(CascadePlan::prefix(dim, seg).unwrap());
            plans.push(CascadePlan::uniform(dim, p).unwrap());
        }
        plans.push(CascadePlan::tuned(&mem, &batch).unwrap().snapped(seg).unwrap());
        let aligned_tuned = CascadePlan::tuned_aligned(&mem, &batch, seg).unwrap();
        for &e in &aligned_tuned.ends()[..aligned_tuned.stages() - 1] {
            prop_assert!(e % seg == 0, "tuned_aligned boundary {} off the {} grid", e, seg);
        }
        plans.push(aligned_tuned);
        for plan in plans {
            let cascade = SegmentedCascade::new(&parts, &plan).unwrap();
            let out = cascade.search(&parts, &batch).unwrap();
            prop_assert_eq!(out.winners(), reference.as_slice(), "P={} {:?}", p, plan);
            // Reuse of the derived handle answers identically.
            prop_assert_eq!(&cascade.search(&parts, &batch).unwrap(), &out);
            let stats = out.stats();
            prop_assert!(stats.activated_dims() <= stats.exact_dims());
            prop_assert_eq!(stats.queries(), queries.len());
        }
    }

    /// Any in-regime cost model survives the calibration cache's decimal
    /// text format bit-identically, and repeated loads are deterministic
    /// — the property that makes calibrated tuning stable across
    /// processes on one host.
    #[test]
    fn calibration_cache_roundtrip_is_deterministic(
        (cont, row, stage, case) in (0u32..=16_384, 0u32..=32_768, 0u32..=131_072, 0u64..u64::MAX)
    ) {
        // Quantized in-regime values (the cache only ever stores these).
        let model = CostModel {
            cont_weight: 1.25 + f64::from(cont) / 1024.0 * (8.0 - 1.25) / 16.0,
            row_overhead_words: f64::from(row) / 1024.0 / 2.0,
            stage_overhead_words: 2.0 + f64::from(stage) / 1024.0 * 62.0 / 128.0,
        }
        .clamped();
        let dir = std::env::temp_dir()
            .join(format!("hd-linalg-proptest-{}-{case:016x}", std::process::id()));
        let path = dir.join("model.txt");
        let backend = hd_linalg::kernel::active();
        model.store(&path, backend).unwrap();
        let first = CostModel::load(&path, backend);
        prop_assert_eq!(first, Some(model));
        // Deterministic across repeat loads, and store∘load is a fixed
        // point (no drift through the decimal format).
        prop_assert_eq!(CostModel::load(&path, backend), first);
        first.unwrap().store(&path, backend).unwrap();
        prop_assert_eq!(CostModel::load(&path, backend), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The calibrated process-wide model is stable across calls and always
/// inside the clamp regime, so every tuned plan in this suite prices
/// candidates consistently. Under the compile-time scalar kill switch
/// (the scalar-forced CI leg) it must be exactly the deterministic
/// fallback constants.
#[test]
fn active_cost_model_is_stable_and_in_regime() {
    let model = CostModel::active();
    assert_eq!(model, CostModel::active());
    assert_eq!(model, model.clamped());
    #[cfg(feature = "force-scalar")]
    assert_eq!(model, CostModel::fallback());
}
