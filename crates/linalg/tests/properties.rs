//! Property-based tests for the linear algebra substrate.

use hd_linalg::{argmax, dot, BitMatrix, BitVector, Matrix, QueryBatch};
use proptest::prelude::*;

fn bool_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

fn f32_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    /// popcount identity: dot(a,b) + hamming-overlap decomposition.
    /// For {0,1} vectors: |a| + |b| = 2*dot(a,b) + hamming(a,b).
    #[test]
    fn dot_hamming_duality(bits_a in bool_vec(257), bits_b in bool_vec(257)) {
        let a = BitVector::from_bools(&bits_a);
        let b = BitVector::from_bools(&bits_b);
        let lhs = a.count_ones() + b.count_ones();
        let rhs = 2 * a.dot(&b) + a.hamming(&b);
        prop_assert_eq!(lhs, rhs);
    }

    /// Bit dot is symmetric and bounded by the smaller popcount.
    #[test]
    fn bit_dot_symmetric_bounded(bits_a in bool_vec(130), bits_b in bool_vec(130)) {
        let a = BitVector::from_bools(&bits_a);
        let b = BitVector::from_bools(&bits_b);
        prop_assert_eq!(a.dot(&b), b.dot(&a));
        prop_assert!(a.dot(&b) <= a.count_ones().min(b.count_ones()));
    }

    /// Self-dot equals popcount; self-hamming is zero.
    #[test]
    fn bit_self_identities(bits in bool_vec(100)) {
        let a = BitVector::from_bools(&bits);
        prop_assert_eq!(a.dot(&a), a.count_ones());
        prop_assert_eq!(a.hamming(&a), 0);
    }

    /// to_f32 roundtrips through from_threshold at 0.5.
    #[test]
    fn bitvector_f32_roundtrip(bits in bool_vec(99)) {
        let a = BitVector::from_bools(&bits);
        let back = BitVector::from_threshold(&a.to_f32(), 0.5);
        prop_assert_eq!(a, back);
    }

    /// dot_f32 agrees with the dense dot product of the expanded vector.
    #[test]
    fn dot_f32_agrees_with_dense(bits in bool_vec(77), xs in f32_vec(77)) {
        let a = BitVector::from_bools(&bits);
        let dense = dot(&a.to_f32(), &xs);
        let packed = a.dot_f32(&xs);
        prop_assert!((dense - packed).abs() <= 1e-3 * (1.0 + dense.abs()));
    }

    /// Matrix-vector multiplication is linear: A(x+y) = Ax + Ay.
    #[test]
    fn matvec_linearity(
        rows in prop::collection::vec(f32_vec(9), 1..6),
        x in f32_vec(9),
        y in f32_vec(9),
    ) {
        let m = Matrix::from_rows(&rows).unwrap();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum).unwrap();
        let ax = m.matvec(&x).unwrap();
        let ay = m.matvec(&y).unwrap();
        for i in 0..lhs.len() {
            let rhs = ax[i] + ay[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
        }
    }

    /// matvec_t is consistent with transpose().matvec.
    #[test]
    fn matvec_t_consistent(rows in prop::collection::vec(f32_vec(7), 1..6)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let x: Vec<f32> = (0..m.rows()).map(|i| i as f32 - 1.5).collect();
        let a = m.matvec_t(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() <= 1e-3 * (1.0 + v.abs()));
        }
    }

    /// BitMatrix::dot_all equals per-row BitVector dots.
    #[test]
    fn bitmatrix_dot_all_consistent(
        rows in prop::collection::vec(bool_vec(70), 1..5),
        q in bool_vec(70),
    ) {
        let bvs: Vec<BitVector> = rows.iter().map(|r| BitVector::from_bools(r)).collect();
        let m = BitMatrix::from_rows(&bvs).unwrap();
        let query = BitVector::from_bools(&q);
        let fast = m.dot_all(&query);
        let slow: Vec<u32> = bvs.iter().map(|r| r.dot(&query)).collect();
        prop_assert_eq!(fast, slow);
    }

    /// argmax returns an index whose value is >= every element.
    #[test]
    fn argmax_is_maximal(xs in f32_vec(40)) {
        let i = argmax(&xs).unwrap();
        for &v in &xs {
            prop_assert!(xs[i] >= v);
        }
    }

    /// Batched dot scores equal N sequential dot_all sweeps, across
    /// tail-word widths (the dims straddle 64-bit word boundaries) and
    /// query counts that exercise both full tiles and scalar tails.
    #[test]
    fn dot_batch_equals_sequential(
        dim in prop::sample::select(vec![1usize, 63, 64, 65, 127, 128, 257]),
        n_rows in 1usize..6,
        n_queries in 1usize..11,
        seed_bits in prop::collection::vec(any::<bool>(), 16),
    ) {
        // Derive deterministic row/query patterns from the sampled bits.
        let pattern = |salt: usize, i: usize, j: usize| {
            seed_bits[(salt * 7 + i * 3 + j) % seed_bits.len()] ^ (i + j * salt).is_multiple_of(3)
        };
        let rows: Vec<BitVector> = (0..n_rows)
            .map(|r| BitVector::from_bools(
                &(0..dim).map(|d| pattern(1, r, d)).collect::<Vec<_>>(),
            ))
            .collect();
        let queries: Vec<BitVector> = (0..n_queries)
            .map(|q| BitVector::from_bools(
                &(0..dim).map(|d| pattern(2, q, d)).collect::<Vec<_>>(),
            ))
            .collect();
        let m = BitMatrix::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let scores = m.dot_batch(&batch).unwrap();
        for (q, query) in queries.iter().enumerate() {
            prop_assert_eq!(scores.scores(q), m.dot_all(query).as_slice());
        }
    }

    /// search_batch winners equal per-query argmax with the low-row
    /// tie-break.
    #[test]
    fn search_batch_equals_sequential(
        rows in prop::collection::vec(bool_vec(70), 1..6),
        queries in prop::collection::vec(bool_vec(70), 1..9),
    ) {
        let bvs: Vec<BitVector> = rows.iter().map(|r| BitVector::from_bools(r)).collect();
        let m = BitMatrix::from_rows(&bvs).unwrap();
        let qvs: Vec<BitVector> = queries.iter().map(|q| BitVector::from_bools(q)).collect();
        let batch = QueryBatch::from_vectors(&qvs).unwrap();
        let results = m.search_batch(&batch).unwrap();
        for (q, query) in qvs.iter().enumerate() {
            let scores = m.dot_all(query);
            let (row, score) = results.winner(q);
            let (expect_row, expect_score) = hd_linalg::argmax_u32(&scores);
            prop_assert_eq!(row, expect_row);
            prop_assert_eq!(score, expect_score);
        }
    }

    /// dot_many / hamming_many match pairwise dot / hamming.
    #[test]
    fn many_fast_paths_match_pairwise(
        v in bool_vec(129),
        others in prop::collection::vec(bool_vec(129), 1..6),
    ) {
        let v = BitVector::from_bools(&v);
        let os: Vec<BitVector> = others.iter().map(|o| BitVector::from_bools(o)).collect();
        let dots = v.dot_many(&os);
        let hams = v.hamming_many(&os);
        for (i, o) in os.iter().enumerate() {
            prop_assert_eq!(dots[i], v.dot(o));
            prop_assert_eq!(hams[i], v.hamming(o));
        }
    }

    /// slice agrees with bit-by-bit extraction at every offset class
    /// (word-aligned, unaligned, straddling the tail word).
    #[test]
    fn slice_matches_bitwise(
        bits in bool_vec(150),
        start in 0usize..150,
        len in 0usize..100,
    ) {
        prop_assume!(start + len <= 150);
        let v = BitVector::from_bools(&bits);
        let s = v.slice(start, len);
        prop_assert_eq!(s.len(), len);
        for i in 0..len {
            prop_assert_eq!(s.get(i), v.get(start + i), "bit {} (start {})", i, start);
        }
    }

    /// The word-level majority kernel agrees with a per-bit vote for any
    /// replica count, including the even-R tie-to-zero convention.
    #[test]
    fn majority_matches_per_bit_vote(
        replicas in prop::collection::vec(bool_vec(131), 1..8),
    ) {
        let owned: Vec<BitVector> =
            replicas.iter().map(|bits| BitVector::from_bools(bits)).collect();
        let refs: Vec<&BitVector> = owned.iter().collect();
        let voted = BitVector::majority(&refs).unwrap();
        let threshold = refs.len() / 2;
        for i in 0..131 {
            let votes = replicas.iter().filter(|r| r[i]).count();
            prop_assert_eq!(voted.get(i), votes > threshold, "bit {}", i);
        }
        // Clean-tail invariant survives the vote.
        prop_assert!(BitVector::from_words(131, voted.as_words().to_vec()).is_ok());
    }
}
