//! Property-based tests for the linear algebra substrate.

use hd_linalg::{argmax, dot, BitMatrix, BitVector, Matrix};
use proptest::prelude::*;

fn bool_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

fn f32_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    /// popcount identity: dot(a,b) + hamming-overlap decomposition.
    /// For {0,1} vectors: |a| + |b| = 2*dot(a,b) + hamming(a,b).
    #[test]
    fn dot_hamming_duality(bits_a in bool_vec(257), bits_b in bool_vec(257)) {
        let a = BitVector::from_bools(&bits_a);
        let b = BitVector::from_bools(&bits_b);
        let lhs = a.count_ones() + b.count_ones();
        let rhs = 2 * a.dot(&b) + a.hamming(&b);
        prop_assert_eq!(lhs, rhs);
    }

    /// Bit dot is symmetric and bounded by the smaller popcount.
    #[test]
    fn bit_dot_symmetric_bounded(bits_a in bool_vec(130), bits_b in bool_vec(130)) {
        let a = BitVector::from_bools(&bits_a);
        let b = BitVector::from_bools(&bits_b);
        prop_assert_eq!(a.dot(&b), b.dot(&a));
        prop_assert!(a.dot(&b) <= a.count_ones().min(b.count_ones()));
    }

    /// Self-dot equals popcount; self-hamming is zero.
    #[test]
    fn bit_self_identities(bits in bool_vec(100)) {
        let a = BitVector::from_bools(&bits);
        prop_assert_eq!(a.dot(&a), a.count_ones());
        prop_assert_eq!(a.hamming(&a), 0);
    }

    /// to_f32 roundtrips through from_threshold at 0.5.
    #[test]
    fn bitvector_f32_roundtrip(bits in bool_vec(99)) {
        let a = BitVector::from_bools(&bits);
        let back = BitVector::from_threshold(&a.to_f32(), 0.5);
        prop_assert_eq!(a, back);
    }

    /// dot_f32 agrees with the dense dot product of the expanded vector.
    #[test]
    fn dot_f32_agrees_with_dense(bits in bool_vec(77), xs in f32_vec(77)) {
        let a = BitVector::from_bools(&bits);
        let dense = dot(&a.to_f32(), &xs);
        let packed = a.dot_f32(&xs);
        prop_assert!((dense - packed).abs() <= 1e-3 * (1.0 + dense.abs()));
    }

    /// Matrix-vector multiplication is linear: A(x+y) = Ax + Ay.
    #[test]
    fn matvec_linearity(
        rows in prop::collection::vec(f32_vec(9), 1..6),
        x in f32_vec(9),
        y in f32_vec(9),
    ) {
        let m = Matrix::from_rows(&rows).unwrap();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum).unwrap();
        let ax = m.matvec(&x).unwrap();
        let ay = m.matvec(&y).unwrap();
        for i in 0..lhs.len() {
            let rhs = ax[i] + ay[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
        }
    }

    /// matvec_t is consistent with transpose().matvec.
    #[test]
    fn matvec_t_consistent(rows in prop::collection::vec(f32_vec(7), 1..6)) {
        let m = Matrix::from_rows(&rows).unwrap();
        let x: Vec<f32> = (0..m.rows()).map(|i| i as f32 - 1.5).collect();
        let a = m.matvec_t(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() <= 1e-3 * (1.0 + v.abs()));
        }
    }

    /// BitMatrix::dot_all equals per-row BitVector dots.
    #[test]
    fn bitmatrix_dot_all_consistent(
        rows in prop::collection::vec(bool_vec(70), 1..5),
        q in bool_vec(70),
    ) {
        let bvs: Vec<BitVector> = rows.iter().map(|r| BitVector::from_bools(r)).collect();
        let m = BitMatrix::from_rows(&bvs).unwrap();
        let query = BitVector::from_bools(&q);
        let fast = m.dot_all(&query);
        let slow: Vec<u32> = bvs.iter().map(|r| r.dot(&query)).collect();
        prop_assert_eq!(fast, slow);
    }

    /// argmax returns an index whose value is >= every element.
    #[test]
    fn argmax_is_maximal(xs in f32_vec(40)) {
        let i = argmax(&xs).unwrap();
        for &v in &xs {
            prop_assert!(xs[i] >= v);
        }
    }
}
