//! Cascade ↔ exact-search equivalence properties.
//!
//! The progressive-precision cascade must be **bit-identical** to the
//! exact batched search — same winning rows, same scores, same low-row
//! tie-break — for arbitrary stage plans (including the degenerate
//! one-stage plan and the `D` one-dimension-stage plan), every tail
//! geometry, and every kernel backend reachable on the host. Telemetry
//! must never claim more activation than the exact search performs.

use hd_linalg::kernel::Backend;
use hd_linalg::{BitMatrix, BitVector, BoundCascade, CascadePlan, QueryBatch, SearchMemory};
use proptest::prelude::*;
use std::sync::Arc;

fn bool_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

/// Dimensions covering sub-word, exact-word, and multi-word tails, plus
/// widths that cross the flat kernels' 4- and 8-word vector strides.
fn dims() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 7, 63, 64, 65, 127, 128, 129, 255, 256, 300, 520])
}

fn bits(len: usize) -> impl Strategy<Value = BitVector> {
    bool_vec(len).prop_map(|b| BitVector::from_bools(&b))
}

fn bit_rows(rows: usize, len: usize) -> impl Strategy<Value = Vec<BitVector>> {
    prop::collection::vec(bits(len), rows)
}

/// An arbitrary cascade plan over `dim` dimensions: random interior cut
/// points (deduplicated), so stage widths are unconstrained — unaligned
/// one-dimension slivers included.
fn plans(dim: usize) -> impl Strategy<Value = CascadePlan> {
    prop::collection::vec(1usize..dim.max(2), 0..6).prop_map(move |mut cuts| {
        cuts.retain(|&c| c < dim);
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(dim);
        let mut widths = Vec::with_capacity(cuts.len());
        let mut prev = 0usize;
        for &c in &cuts {
            widths.push(c - prev);
            prev = c;
        }
        CascadePlan::from_widths(dim, &widths).expect("cuts are strictly increasing")
    })
}

/// Asserts cascade output is bit-identical to the exact per-query oracle
/// and that its telemetry is internally consistent.
fn assert_cascade_exact(
    mem: &SearchMemory,
    queries: &[BitVector],
    batch: &QueryBatch,
    plan: &CascadePlan,
    backend: Backend,
) {
    let out = mem.search_cascade_with(batch, plan, backend).unwrap();
    prop_assert_eq!(out.len(), queries.len());
    for (q, query) in queries.iter().enumerate() {
        let scores = mem.dot_all(query);
        let expected = hd_linalg::argmax_u32(&scores);
        prop_assert_eq!(
            out.winner(q),
            expected,
            "backend {} plan {:?} query {}",
            backend,
            plan.ends(),
            q
        );
        // Low-row tie-break: no earlier row reaches the winning score.
        let (row, score) = out.winner(q);
        for (r, &s) in scores.iter().enumerate().take(row) {
            prop_assert!(
                s < score,
                "backend {} query {}: row {} ties winner {}",
                backend,
                q,
                r,
                row
            );
        }
    }
    let stats = out.stats();
    prop_assert_eq!(stats.queries(), queries.len());
    prop_assert!(stats.activated_dims() <= stats.exact_dims());
    prop_assert!(stats.activated_dims() > 0);
    prop_assert_eq!(stats.stage_rows()[0], (queries.len() * mem.rows()) as u64);
    // Shortlists only ever shrink.
    for pair in stats.stage_rows().windows(2) {
        prop_assert!(pair[1] <= pair[0], "shortlist grew: {:?}", stats.stage_rows());
    }
}

proptest! {
    /// Arbitrary plans, arbitrary memories/batches, every reachable
    /// backend: cascade == exact, winners/scores/tie-breaks included.
    #[test]
    fn cascade_matches_exact_for_arbitrary_plans(
        (rows, queries, plan) in (1usize..20, dims()).prop_flat_map(|(r, d)| {
            (bit_rows(r, d), bit_rows(9, d), plans(d))
        })
    ) {
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        for backend in Backend::available() {
            assert_cascade_exact(&mem, &queries, &batch, &plan, backend);
        }
    }

    /// The two degenerate plans: one stage (the cascade IS the exact
    /// search, full activation) and `D` one-dimension stages (the
    /// paper's column-by-column evaluation).
    #[test]
    fn degenerate_plans_match_exact(
        (rows, queries) in (1usize..12, prop::sample::select(vec![1usize, 7, 64, 65, 130]))
            .prop_flat_map(|(r, d)| (bit_rows(r, d), bit_rows(5, d)))
    ) {
        let dim = rows[0].len();
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let exact = CascadePlan::exact(dim);
        let one_dim = CascadePlan::uniform(dim, dim).unwrap();
        prop_assert_eq!(one_dim.stages(), dim);
        for backend in Backend::available() {
            assert_cascade_exact(&mem, &queries, &batch, &exact, backend);
            assert_cascade_exact(&mem, &queries, &batch, &one_dim, backend);
        }
        // The one-stage plan can never prune: telemetry reports exactly
        // the full activation of the exact search.
        let stats_exact = mem.search_cascade(&batch, &exact).unwrap();
        prop_assert_eq!(stats_exact.stats().activated_dims(), stats_exact.stats().exact_dims());
    }

    /// Tie stress: duplicated row patterns force frequent exact ties;
    /// pruning must never discard the lowest tying row, on any backend.
    #[test]
    fn cascade_tie_break_survives_pruning(
        (patterns, picks, queries, plan) in (2usize..5, 64usize..130).prop_flat_map(|(p, d)| {
            (
                bit_rows(p, d),
                prop::collection::vec(0usize..p, 4..30),
                bit_rows(5, d),
                plans(d),
            )
        })
    ) {
        let rows: Vec<BitVector> = picks.iter().map(|&i| patterns[i].clone()).collect();
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        for backend in Backend::available() {
            assert_cascade_exact(&mem, &queries, &batch, &plan, backend);
        }
    }

    /// The public dispatch entry points (active backend, thread chunking
    /// when the `rayon` feature is on) agree with the explicit-backend
    /// serial path and with `search_batch`/`winners_batch`.
    #[test]
    fn cascade_entry_points_agree(
        (rows, queries, plan) in (1usize..10, prop::sample::select(vec![64usize, 128, 200]))
            .prop_flat_map(|(r, d)| (bit_rows(r, d), bit_rows(40, d), plans(d)))
    ) {
        let m = BitMatrix::from_rows(&rows).unwrap();
        let mem = SearchMemory::new(m.clone());
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let reference = mem.winners_batch(&batch).unwrap();
        let via_memory = mem.search_cascade(&batch, &plan).unwrap();
        let via_matrix = m.search_cascade(&batch, &plan).unwrap();
        prop_assert_eq!(via_memory.winners(), reference.as_slice());
        prop_assert_eq!(via_matrix.winners(), reference.as_slice());
        prop_assert_eq!(&via_matrix, &via_memory);
        // Full-score search agrees with the cascade winner too.
        let full = mem.search_batch(&batch).unwrap();
        for q in 0..queries.len() {
            prop_assert_eq!(full.winner(q), via_memory.winner(q));
        }
        // The bound (pre-derived) form answers identically, telemetry
        // included, and keeps answering identically across reuse.
        let bound = BoundCascade::new(Arc::new(mem.clone()), plan.clone()).unwrap();
        prop_assert_eq!(&bound.search(&batch).unwrap(), &via_memory);
        prop_assert_eq!(&bound.search(&batch).unwrap(), &via_memory);
    }
}
