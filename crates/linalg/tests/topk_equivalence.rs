//! Top-k ↔ full-sort equivalence properties.
//!
//! The fused top-k sweep is an execution strategy, not an approximation:
//! for every reachable backend, every geometry, and every `k`, its
//! per-query k-best lists must be **bit-identical** (same rows, same
//! order) to stable-sorting the full score column by score desc then row
//! asc. The k-th-score cascade prune and the segmented cascade inherit
//! the same contract, and the multi-row flat kernel that powers the
//! cascade continuation must agree with a per-row `dot_words` loop.

use hd_linalg::kernel::{self, Backend};
use hd_linalg::{
    BitMatrix, BitVector, BlockedBitMatrix, BoundCascade, CascadePlan, QueryBatch, SearchMemory,
    SegmentedCascade,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Asserts a top-k result equals the oracle's per-query lists.
fn check_lists(out: &hd_linalg::TopK, expected: &[Vec<(usize, u32)>], label: &str) {
    for (q, expect) in expected.iter().enumerate() {
        assert_eq!(out.hits(q), expect.as_slice(), "{label} query {q}");
    }
}

fn bool_vec(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len)
}

/// Dimensions covering sub-word, exact-word, and multi-word tails, plus
/// widths that cross the flat kernels' 4- and 8-word vector strides.
fn dims() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 7, 63, 64, 65, 127, 128, 129, 255, 256, 300, 520])
}

fn bits(len: usize) -> impl Strategy<Value = BitVector> {
    bool_vec(len).prop_map(|b| BitVector::from_bools(&b))
}

fn bit_rows(rows: usize, len: usize) -> impl Strategy<Value = Vec<BitVector>> {
    prop::collection::vec(bits(len), rows)
}

/// Rows drawn from a tiny pattern alphabet, so whole-memory score ties
/// (identical rows) and partial ties are the norm, not the exception.
fn tie_rows(rows: usize, len: usize) -> impl Strategy<Value = Vec<BitVector>> {
    (bit_rows(3, len), prop::collection::vec(0usize..3, rows))
        .prop_map(|(alphabet, picks)| picks.iter().map(|&p| alphabet[p].clone()).collect())
}

/// An arbitrary cascade plan over `dim` dimensions: random interior cut
/// points (deduplicated), so stage widths are unconstrained.
fn plans(dim: usize) -> impl Strategy<Value = CascadePlan> {
    prop::collection::vec(1usize..dim.max(2), 0..6).prop_map(move |mut cuts| {
        cuts.retain(|&c| c < dim);
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(dim);
        let mut widths = Vec::with_capacity(cuts.len());
        let mut prev = 0usize;
        for &c in &cuts {
            widths.push(c - prev);
            prev = c;
        }
        CascadePlan::from_widths(dim, &widths).expect("cuts are strictly increasing")
    })
}

/// The oracle: full scores, stable-sorted by score desc then row asc,
/// truncated to `k`.
fn sorted_topk(rows: &[BitVector], queries: &[BitVector], k: usize) -> Vec<Vec<(usize, u32)>> {
    queries
        .iter()
        .map(|q| {
            let mut scored: Vec<(usize, u32)> = rows.iter().map(|r| r.dot(q)).enumerate().collect();
            scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            scored.truncate(k.min(scored.len()));
            scored
        })
        .collect()
}

proptest! {
    /// Fused top-k equals the sort oracle for arbitrary geometries and
    /// every reachable backend, through both the pre-packed
    /// `SearchMemory` path and the explicit-backend blocked hook.
    #[test]
    fn fused_topk_matches_sorted_reference(
        (rows, queries, k) in (1usize..20, dims())
            .prop_flat_map(|(r, d)| (bit_rows(r, d), bit_rows(4, d), 1usize..12))
    ) {
        let expected = sorted_topk(&rows, &queries, k);
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let fused = mem.topk_batch(&batch, k).unwrap();
        prop_assert_eq!(fused.k(), k);
        for (q, expect) in expected.iter().enumerate() {
            prop_assert_eq!(fused.hits(q), expect.as_slice(), "SearchMemory query {}", q);
        }
        let m = BitMatrix::from_rows(&rows).unwrap();
        let fused_m = m.topk_batch(&batch, k).unwrap();
        let blocked = BlockedBitMatrix::from_matrix(&m);
        for backend in Backend::available() {
            let out = blocked.topk_batch_with(&batch, k, backend).unwrap();
            for (q, expect) in expected.iter().enumerate() {
                prop_assert_eq!(
                    out.hits(q), expect.as_slice(), "backend {} query {}", backend, q
                );
                prop_assert_eq!(fused_m.hits(q), expect.as_slice());
            }
        }
    }

    /// `k == 1` lists are exactly the winners of `winners_batch` —
    /// same row, same score, same low-row tie-break.
    #[test]
    fn topk_k1_matches_winners(
        (rows, queries) in (1usize..20, dims())
            .prop_flat_map(|(r, d)| (tie_rows(r, d), bit_rows(4, d)))
    ) {
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let winners = mem.winners_batch(&batch).unwrap();
        let topk = mem.topk_batch(&batch, 1).unwrap();
        for (q, &winner) in winners.iter().enumerate() {
            prop_assert_eq!(topk.hits(q), &[winner], "query {}", q);
        }
    }

    /// `k >= rows` returns every row, fully sorted — and any larger `k`
    /// yields the identical clamped list.
    #[test]
    fn topk_k_ge_rows_returns_all(
        (rows, queries) in (1usize..12, dims())
            .prop_flat_map(|(r, d)| (bit_rows(r, d), bit_rows(3, d)))
    ) {
        let n = rows.len();
        let expected = sorted_topk(&rows, &queries, n);
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        for k in [n, n + 1, n + 7] {
            let topk = mem.topk_batch(&batch, k).unwrap();
            prop_assert_eq!(topk.hits_per_query(), n, "k {} clamps to rows", k);
            for (q, expect) in expected.iter().enumerate() {
                prop_assert_eq!(topk.hits(q), expect.as_slice(), "k {} query {}", k, q);
            }
        }
    }

    /// Tie stress: memories built from a 3-pattern alphabet produce
    /// score plateaus everywhere; the k-best order must still be the
    /// oracle's (ties resolved row-ascending) on every backend.
    #[test]
    fn topk_tie_stress(
        (rows, queries, k) in (4usize..20, dims())
            .prop_flat_map(|(r, d)| (tie_rows(r, d), bit_rows(4, d), 1usize..10))
    ) {
        let expected = sorted_topk(&rows, &queries, k);
        let blocked = BlockedBitMatrix::from_rows(&rows).unwrap();
        for backend in Backend::available() {
            let out = blocked.topk_batch_with(&queries_batch(&queries), k, backend).unwrap();
            for (q, expect) in expected.iter().enumerate() {
                prop_assert_eq!(
                    out.hits(q), expect.as_slice(), "backend {} query {}", backend, q
                );
            }
        }
    }

    /// The k-th-score cascade prune is exact: for arbitrary stage plans
    /// and every backend, cascade top-k lists are bit-identical to the
    /// fused sweep, through every entry point (matrix, cached memory,
    /// bound handle, explicit backend), and telemetry never claims more
    /// activation than the exact search performs.
    #[test]
    fn cascade_topk_matches_fused(
        (rows, queries, k, plan) in (2usize..12, dims())
            .prop_flat_map(|(r, d)| (bit_rows(r, d), bit_rows(4, d), 1usize..8, plans(d)))
    ) {
        let expected = sorted_topk(&rows, &queries, k);
        let mem = SearchMemory::from_rows(&rows).unwrap();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let m = BitMatrix::from_rows(&rows).unwrap();
        let direct = m.search_cascade_topk(&batch, &plan, k).unwrap();
        let stats = direct.stats();
        prop_assert!(stats.activated_dims() <= stats.exact_dims());
        prop_assert_eq!(stats.queries(), queries.len());
        check_lists(&direct.into_topk(), &expected, "BitMatrix");
        check_lists(
            &mem.search_cascade_topk(&batch, &plan, k).unwrap().into_topk(),
            &expected,
            "SearchMemory",
        );
        let bound = BoundCascade::new(Arc::new(mem.clone()), plan.clone()).unwrap();
        check_lists(&bound.search_topk(&batch, k).unwrap().into_topk(), &expected, "BoundCascade");
        for backend in Backend::available() {
            check_lists(
                &mem.search_cascade_topk_with(&batch, &plan, k, backend).unwrap().into_topk(),
                &expected,
                &format!("backend {backend}"),
            );
        }
    }

    /// The segmented (partitioned-layout) cascade's top-k matches the
    /// contiguous oracle for arbitrary segment counts and
    /// segment-aligned plans.
    #[test]
    fn segmented_cascade_topk_matches(
        (rows, queries, k, parts_pick) in
            (2usize..12, prop::sample::select(vec![128usize, 192, 256, 320]))
            .prop_flat_map(|(r, d)| (tie_rows(r, d), bit_rows(4, d), 1usize..8, 0usize..3))
    ) {
        let dim = rows[0].len();
        let divisors: Vec<usize> =
            [2usize, 4, 8, 3, 5].iter().copied().filter(|p| dim % p == 0).collect();
        let p = divisors[parts_pick % divisors.len()];
        let seg = dim / p;
        let parts: Vec<SearchMemory> = (0..p)
            .map(|i| {
                let segs: Vec<BitVector> = rows.iter().map(|r| r.slice(i * seg, seg)).collect();
                SearchMemory::from_rows(&segs).unwrap()
            })
            .collect();
        let expected = sorted_topk(&rows, &queries, k);
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let mut plans = vec![CascadePlan::exact(dim)];
        if p > 1 {
            plans.push(CascadePlan::prefix(dim, seg).unwrap());
            plans.push(CascadePlan::uniform(dim, p).unwrap());
        }
        for plan in plans {
            let cascade = SegmentedCascade::new(&parts, &plan).unwrap();
            let out = cascade.search_topk(&parts, &batch, k).unwrap();
            let stats = out.stats().clone();
            prop_assert!(stats.activated_dims() <= stats.exact_dims());
            let topk = out.into_topk();
            for (q, expect) in expected.iter().enumerate() {
                prop_assert_eq!(
                    topk.hits(q), expect.as_slice(), "P={} {:?} query {}", p, plan.ends(), q
                );
            }
        }
    }

    /// The multi-row flat kernel agrees with a per-row `dot_words` loop
    /// on every backend — including the accumulate-into-`out` contract
    /// and every const-generic group width (0..=18 rows covers the
    /// 8-wide groups plus each remainder).
    #[test]
    fn multi_dot_words_matches_dot_loop(
        (qs, rows, seed) in dims()
            .prop_flat_map(|d| (bits(d), bit_rows(18, d), any::<u32>()))
    ) {
        for take in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 18] {
            let refs: Vec<&[u64]> = rows[..take].iter().map(|r| r.as_words()).collect();
            let mut expected: Vec<u32> = (0..take).map(|i| seed.wrapping_add(i as u32)).collect();
            let base = expected.clone();
            for (slot, row) in expected.iter_mut().zip(&refs) {
                *slot += kernel::dot_words_with(Backend::Scalar, qs.as_words(), row);
            }
            for backend in Backend::available() {
                let mut got = base.clone();
                kernel::multi_dot_words_with(backend, qs.as_words(), &refs, &mut got);
                prop_assert_eq!(
                    &got, &expected, "backend {} rows {}", backend, take
                );
            }
        }
    }
}

fn queries_batch(queries: &[BitVector]) -> QueryBatch {
    QueryBatch::from_vectors(queries).unwrap()
}
