//! Dense and bit-packed linear algebra substrate for the MEMHD reproduction.
//!
//! The MEMHD paper's pipeline is built almost entirely out of matrix–vector
//! multiplications (MVMs): random-projection encoding (`H = Mᵀ F`),
//! associative search (dot similarity against every class vector), k-means
//! distance evaluation, and the in-memory-computing array model. This crate
//! provides the two representations those MVMs run on:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix used for floating-point
//!   associative memories, projection matrices before binarization, and
//!   dataset features.
//! * [`BitMatrix`] / [`BitVector`] — bit-packed binary (`{0,1}`) structures
//!   with popcount-based dot products, used for binary hypervectors, the
//!   quantized associative memory, and the binary encoding module.
//!
//! It intentionally replaces `ndarray` (not on the approved dependency list)
//! with the small, well-tested subset of operations this workspace needs.
//!
//! **Batched search is the preferred entry point.** Many-query workloads
//! should pack their queries into a [`QueryBatch`] and call
//! [`BitMatrix::dot_batch`] / [`BitMatrix::search_batch`] (or
//! [`BitMatrix::winners_batch`] when only predictions are needed): one
//! tiled popcount sweep answers the whole batch with no per-query
//! allocation. The single-query operations are thin slices of the same
//! kernels.
//!
//! **Kernels are runtime-dispatched.** The [`kernel`] module detects the
//! host CPU once at startup and routes every popcount through the fastest
//! available backend (AVX-512 `VPOPCNTDQ`, AVX2 nibble-LUT, NEON, or the
//! portable scalar loops); set `HD_LINALG_BACKEND=scalar|avx2|avx512|neon`
//! to force one. SIMD sweeps run on [`BlockedBitMatrix`], an interleaved
//! associative-memory layout that packs register-width column panels of
//! eight class rows; long-lived memories should hold a [`SearchMemory`],
//! which pairs the row-major matrix with a pre-packed blocked mirror.
//! Every backend is bit-identical to scalar (ties, tail words, and
//! padding included).
//!
//! **Cascade search prunes provably-losing rows.** [`CascadePlan`] splits
//! the dimensions into stages; [`SearchMemory::search_cascade`] scores a
//! prefix for every row, discards rows whose best possible completion
//! cannot reach the current leader, and finishes only the survivors —
//! winners, scores, and tie-breaks stay bit-identical to the exact sweep,
//! and the returned [`CascadeStats`] reports how many row-dimensions were
//! actually activated (the paper's Fig. 7 energy proxy).
//! [`CascadePlan::tuned`] prices candidate plans with a once-per-host
//! calibrated [`CostModel`] (see [`calibrate`]); scalar-forced and
//! env-pinned runs resolve to deterministic fallback constants.
//!
//! # Example
//!
//! ```
//! use hd_linalg::{Matrix, BitVector};
//!
//! let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]][..]).unwrap();
//! let y = m.matvec(&[1.0, 1.0]).unwrap();
//! assert_eq!(y, vec![3.0, 7.0]);
//!
//! let a = BitVector::from_bools(&[true, false, true, true]);
//! let b = BitVector::from_bools(&[true, true, false, true]);
//! assert_eq!(a.dot(&b), 2); // overlap at positions 0 and 3
//! ```

// Unsafe code is denied everywhere except the explicitly-audited SIMD
// kernels (`kernel`, `blocked`), whose intrinsics are published only
// behind runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod bits;
#[allow(unsafe_code)]
mod blocked;
pub mod calibrate;
mod cascade;
mod error;
#[allow(unsafe_code)]
pub mod kernel;
mod matrix;
pub mod rng;
pub mod stats;
mod vector;

pub use batch::{
    argmax_scores as argmax_u32, QueryBatch, QueryBatchBuilder, ScoreMatrix, SearchResults, TopK,
};
pub use bits::{majority_words, BitMatrix, BitVector, BitView};
pub use blocked::{BlockedBitMatrix, SearchMemory, LANES as BLOCK_LANES};
pub use calibrate::CostModel;
pub use cascade::{
    BoundCascade, CascadePlan, CascadeResults, CascadeStats, CascadeTopK, SegmentedCascade,
};
pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use vector::{argmax, axpy, dot, l2_norm, mean, normalize_l2, scale_in_place, variance};
