//! Batched associative-search kernels.
//!
//! The MEMHD hardware answers *many* queries per array activation; the
//! software analogue is a popcount sweep that amortizes every load of the
//! memory matrix across a register-blocked tile of queries. This module is
//! the single popcount engine of the workspace: the one-query entry points
//! ([`BitMatrix::dot_all`], [`BitVector::dot`]) and the batched ones
//! ([`BitMatrix::dot_batch`], [`BitMatrix::search_batch`]) all bottom out
//! in the same word kernels, so there is exactly one implementation to
//! test and optimize.
//!
//! Layout: a [`QueryBatch`] packs `Q` equal-length queries row-major (the
//! same packing as [`BitMatrix`]); a [`ScoreMatrix`] holds the resulting
//! `Q × R` scores with one contiguous row per query. Kernels tile over
//! queries in blocks of [`QUERY_TILE`] so each memory-row word is loaded
//! once per tile and feeds independent popcount accumulator chains; for
//! the short packed rows typical of MEMHD-sized memories (≤ 8 words, i.e.
//! `D ≤ 512`) a const-generic kernel with fully unrolled word loops
//! removes all per-row slicing overhead.
//!
//! With the `rayon` feature enabled, batches above a size threshold are
//! swept in parallel query chunks (scoped threads; this offline
//! environment has no rayon crate, but the feature name matches the
//! conventional opt-in so downstream crates forward it unchanged). Results
//! are bit-identical with and without the feature.

use crate::bits::{BitMatrix, BitVector, BitView};
use crate::blocked::BlockedBitMatrix;
use crate::error::{LinalgError, Result};
use crate::kernel;
use std::sync::{Arc, Mutex};

/// Queries per register-blocked tile in the batched kernels.
pub(crate) const QUERY_TILE: usize = 8;

/// Minimum `Q × R` word-products before the `rayon` feature spreads a
/// batch across threads; below this the spawn cost dominates.
#[cfg(feature = "rayon")]
pub(crate) const PARALLEL_THRESHOLD: usize = 1 << 16;

/// Minimum word-slice width before the runtime-dispatched SIMD kernels
/// beat the inline scalar loop; below this the indirect call costs more
/// than the vectorization saves (a MEMHD-sized 128-bit row is 2 words).
const DISPATCH_MIN_WORDS: usize = 8;

/// Minimum batch size before the SIMD entry points re-pack a row-major
/// memory into the interleaved [`BlockedBitMatrix`] layout on the fly;
/// below this the packing cost cannot amortize and the scalar tiled
/// kernels win. Long-lived memories should hold a
/// [`crate::SearchMemory`], which packs once at construction.
const MIN_PACK_QUERIES: usize = 32;

/// Popcount dot product of two equal-length word slices. Routes through
/// the active [`crate::kernel`] backend for wide slices; short slices
/// (every MEMHD-sized row) keep the inline scalar loop.
#[inline]
pub(crate) fn dot_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < DISPATCH_MIN_WORDS {
        kernel::scalar::dot_words(a, b)
    } else {
        // The SIMD kernels read both slices up to `a.len()`; enforce the
        // equal-length contract here even in release builds (the check is
        // noise next to a ≥ 8-word sweep, and a violation would otherwise
        // be an out-of-bounds read rather than safe truncation).
        assert_eq!(a.len(), b.len(), "dot_words: length mismatch");
        (kernel::active_table().dot_words)(a, b)
    }
}

/// Multi-row popcount dot: adds each row's `popcount(row & qs)` into the
/// matching `out` slot, dispatched like [`dot_words`]. One call scores a
/// whole cascade shortlist against one staged query segment, letting the
/// AVX-512 path share each 512-bit query load across four rows.
#[inline]
pub(crate) fn multi_dot_words(qs: &[u64], rows: &[&[u64]], out: &mut [u32]) {
    debug_assert_eq!(rows.len(), out.len());
    if qs.len() < DISPATCH_MIN_WORDS {
        kernel::scalar::multi_dot_words(qs, rows, out);
    } else {
        assert_eq!(rows.len(), out.len(), "multi_dot_words: rows/out length mismatch");
        for r in rows {
            assert_eq!(r.len(), qs.len(), "multi_dot_words: length mismatch");
        }
        (kernel::active_table().multi_dot_words)(qs, rows, out)
    }
}

/// Popcount XOR (Hamming distance) of two equal-length word slices,
/// dispatched like [`dot_words`].
#[inline]
pub(crate) fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < DISPATCH_MIN_WORDS {
        kernel::scalar::hamming_words(a, b)
    } else {
        assert_eq!(a.len(), b.len(), "hamming_words: length mismatch");
        (kernel::active_table().hamming_words)(a, b)
    }
}

/// A borrowed associative memory in either storage layout — what the
/// batched dispatchers sweep. Entry points choose the representation
/// ([`BlockedBitMatrix`] when the active backend is SIMD and the batch is
/// large enough to amortize packing) and the `rayon` query chunking
/// composes identically on top of both.
#[derive(Clone, Copy)]
pub(crate) enum MemoryRef<'a> {
    /// Row-major packed rows (the scalar tiled kernels).
    Rows(&'a BitMatrix),
    /// Interleaved row blocks (the SIMD blocked kernels).
    Blocked(&'a BlockedBitMatrix),
}

impl MemoryRef<'_> {
    #[inline]
    #[cfg(feature = "rayon")]
    fn rows(&self) -> usize {
        match self {
            MemoryRef::Rows(m) => m.rows(),
            MemoryRef::Blocked(b) => b.rows(),
        }
    }

    #[inline]
    #[cfg(feature = "rayon")]
    fn words_per_row(&self) -> usize {
        match self {
            MemoryRef::Rows(m) => m.words_per_row_pub(),
            MemoryRef::Blocked(b) => b.words_per_row(),
        }
    }
}

/// Packs `m` for a SIMD sweep when the active backend and batch size
/// justify it.
fn pack_for_sweep(m: &BitMatrix, queries: usize) -> Option<BlockedBitMatrix> {
    (kernel::active() != kernel::Backend::Scalar && queries >= MIN_PACK_QUERIES)
        .then(|| BlockedBitMatrix::from_matrix(m))
}

/// A packed batch of equal-length binary queries.
///
/// Construction packs the queries once; every subsequent batched search
/// reuses the packed words without touching the originals. The packed
/// storage is shared (`Arc`), so clones — and the word-aligned
/// column-segment views [`QueryBatch::word_segment`] hands out — are
/// zero-copy. Column-partitioned layouts should go through
/// [`QueryBatch::segments`], whose derived per-partition views (packed
/// once even off the word grid) are cached on the batch and shared with
/// clones.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitVector, QueryBatch};
///
/// let queries = vec![
///     BitVector::from_bools(&[true, false, true]),
///     BitVector::from_bools(&[false, true, true]),
/// ];
/// let batch = QueryBatch::from_vectors(&queries).unwrap();
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.dim(), 3);
/// ```
#[derive(Clone)]
pub struct QueryBatch {
    queries: Arc<BitMatrix>,
    /// First visible packed word of every row — non-zero only for
    /// column-segment views.
    word_lo: usize,
    /// Visible bits per query (the full width for non-segment batches).
    dim: usize,
    /// Lazily-derived per-partition segment views ([`QueryBatch::segments`]),
    /// keyed by segment length and shared across clones so repeat
    /// searches of the same batch reuse one derivation.
    seg_cache: Arc<Mutex<SegCache>>,
}

/// At most this many distinct partitionings are cached per batch — a
/// batch is normally segmented exactly one way (its mapping's `D / P`),
/// with one spare slot for mixed-layout pipelines.
const SEG_CACHE_SLOTS: usize = 2;

type SegCache = Vec<(usize, Arc<[QueryBatch]>)>;

// The segment-view cache is a derivation, not data: equality, hashing
// (none), and Debug output consider only the visible queries.
impl PartialEq for QueryBatch {
    fn eq(&self, other: &Self) -> bool {
        self.word_lo == other.word_lo && self.dim == other.dim && self.queries == other.queries
    }
}

impl Eq for QueryBatch {}

impl std::fmt::Debug for QueryBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBatch")
            .field("queries", &self.queries)
            .field("word_lo", &self.word_lo)
            .field("dim", &self.dim)
            .finish_non_exhaustive()
    }
}

impl QueryBatch {
    /// Packs a slice of equal-length queries.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty slice and
    /// [`LinalgError::RaggedRows`] on length disagreement.
    pub fn from_vectors(queries: &[BitVector]) -> Result<Self> {
        Ok(Self::from_matrix(BitMatrix::from_rows(queries)?))
    }

    /// Wraps an existing packed matrix (rows = queries).
    pub fn from_matrix(queries: BitMatrix) -> Self {
        let dim = queries.cols();
        QueryBatch {
            queries: Arc::new(queries),
            word_lo: 0,
            dim,
            seg_cache: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Number of queries `Q`.
    pub fn len(&self) -> usize {
        self.queries.rows()
    }

    /// Whether the batch is empty (never true for a constructed batch).
    pub fn is_empty(&self) -> bool {
        self.queries.rows() == 0
    }

    /// Query dimensionality `D` (the visible segment width for views from
    /// [`QueryBatch::word_segment`]).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows query `q` as a zero-copy [`BitView`] over the packed words
    /// (use [`BitView::to_bit_vector`] when an owned copy is needed).
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn query(&self, q: usize) -> BitView<'_> {
        BitView::from_clean_words(self.query_words(q), self.dim)
    }

    /// The underlying packed matrix.
    ///
    /// # Panics
    ///
    /// Panics on a column-segment view (from
    /// [`QueryBatch::word_segment`]): a segment has no standalone packed
    /// matrix — that is the copy the view exists to avoid.
    pub fn as_bit_matrix(&self) -> &BitMatrix {
        assert!(
            self.word_lo == 0 && self.dim == self.queries.cols(),
            "as_bit_matrix on a column-segment view"
        );
        &self.queries
    }

    /// A zero-copy view of bit columns `[start, start + len)` of every
    /// query — what column-partitioned layouts (`SegmentedCascade`,
    /// `imc_sim`'s partitioned mappings) feed their per-partition sweeps
    /// instead of re-packing each query's segment. The view shares the
    /// batch's packed storage and behaves as a `len`-bit [`QueryBatch`]
    /// everywhere (searches, further word-aligned sub-segmenting).
    ///
    /// `start` must be word-aligned (`start % 64 == 0`), and the segment
    /// must either end word-aligned or run to the batch's full width —
    /// the two shapes whose packed words are a clean sub-slice of each
    /// row. Unaligned segments need [`BitView::slice`] re-packing.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a zero-width segment,
    /// [`LinalgError::IndexOutOfBounds`] when the segment overruns the
    /// batch width, and [`LinalgError::ShapeMismatch`] for boundaries off
    /// the word grid.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::{BitVector, QueryBatch};
    ///
    /// let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 130])]).unwrap();
    /// let seg = batch.word_segment(64, 64).unwrap(); // no copy
    /// assert_eq!((seg.len(), seg.dim()), (1, 64));
    /// assert_eq!(seg.query(0), batch.query(0).slice(64, 64));
    /// ```
    pub fn word_segment(&self, start: usize, len: usize) -> Result<QueryBatch> {
        if len == 0 {
            return Err(LinalgError::Empty { op: "QueryBatch::word_segment" });
        }
        let end = start.checked_add(len).filter(|&e| e <= self.dim).ok_or(
            LinalgError::IndexOutOfBounds { index: start.saturating_add(len), bound: self.dim },
        )?;
        if !start.is_multiple_of(64) || !(end.is_multiple_of(64) || end == self.dim) {
            return Err(LinalgError::ShapeMismatch {
                op: "QueryBatch::word_segment",
                expected: 64,
                found: if start.is_multiple_of(64) { end % 64 } else { start % 64 },
            });
        }
        Ok(QueryBatch {
            queries: Arc::clone(&self.queries),
            word_lo: self.word_lo + start / 64,
            dim: len,
            seg_cache: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The batch pre-sliced into its `dim / seg_len` consecutive
    /// `seg_len`-bit segments — the zero-repack entry point for
    /// column-partitioned layouts ([`crate::SegmentedCascade`],
    /// `imc_sim`'s partitioned mappings). Segments on the word grid are
    /// zero-copy [`QueryBatch::word_segment`] windows; segments off it
    /// are per-bit re-packed **once**, cached on the batch, and shared
    /// with every clone — repeated searches of the same batch stop
    /// rebuilding their query segments on every call.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `seg_len == 0` and
    /// [`LinalgError::ShapeMismatch`] when `seg_len` does not divide the
    /// batch width.
    ///
    /// # Example
    ///
    /// ```
    /// use hd_linalg::{BitVector, QueryBatch};
    ///
    /// let batch = QueryBatch::from_vectors(&[BitVector::from_bools(&[true; 300])]).unwrap();
    /// let segs = batch.segments(100).unwrap(); // 100 % 64 != 0: packed once
    /// assert_eq!(segs.len(), 3);
    /// assert_eq!(segs[1].query(0), batch.query(0).slice(100, 100));
    /// // Repeat calls (and clones) hand back the same cached derivation.
    /// assert!(std::sync::Arc::ptr_eq(&segs, &batch.clone().segments(100).unwrap()));
    /// ```
    pub fn segments(&self, seg_len: usize) -> Result<Arc<[QueryBatch]>> {
        if seg_len == 0 {
            return Err(LinalgError::Empty { op: "QueryBatch::segments" });
        }
        if !self.dim.is_multiple_of(seg_len) {
            return Err(LinalgError::ShapeMismatch {
                op: "QueryBatch::segments",
                expected: seg_len,
                found: self.dim,
            });
        }
        let mut cache = self.seg_cache.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(pos) = cache.iter().position(|(s, _)| *s == seg_len) {
            // LRU touch: move the hit to the back so the hot partitioning
            // outlives transient one-off segmentations instead of being
            // the next FIFO eviction victim.
            let entry = cache.remove(pos);
            let segs = Arc::clone(&entry.1);
            cache.push(entry);
            return Ok(segs);
        }
        let parts = self.dim / seg_len;
        let built: Vec<QueryBatch> = (0..parts)
            .map(|p| {
                let start = p * seg_len;
                let end = start + seg_len;
                if start.is_multiple_of(64) && (end.is_multiple_of(64) || end == self.dim) {
                    self.word_segment(start, seg_len).expect("validated aligned window")
                } else {
                    // The one-time per-bit re-pack for segments off the
                    // word grid — amortized by the cache below.
                    let segs: Vec<BitVector> =
                        (0..self.len()).map(|i| self.query(i).slice(start, seg_len)).collect();
                    QueryBatch::from_vectors(&segs).expect("equal-width non-empty segments")
                }
            })
            .collect();
        let segs: Arc<[QueryBatch]> = built.into();
        while cache.len() >= SEG_CACHE_SLOTS {
            cache.remove(0);
        }
        cache.push((seg_len, Arc::clone(&segs)));
        Ok(segs)
    }

    #[inline]
    pub(crate) fn query_words(&self, q: usize) -> &[u64] {
        let row = self.queries.row_words_pub(q);
        &row[self.word_lo..self.word_lo + self.dim.div_ceil(64)]
    }
}

/// Incrementally packs single queries into a [`QueryBatch`] without
/// re-packing at build time — the accumulation buffer of a micro-batching
/// service, where queries arrive one at a time but must leave as one
/// packed batch.
///
/// Every [`QueryBatchBuilder::push`] appends the query's packed words to
/// one contiguous row-major buffer (exactly the [`QueryBatch`] layout),
/// so [`QueryBatchBuilder::take_batch`] is a move, not a copy.
///
/// # Example
///
/// ```
/// use hd_linalg::{BitVector, QueryBatchBuilder};
///
/// let mut b = QueryBatchBuilder::new(3);
/// b.push(BitVector::from_bools(&[true, false, true]).as_view()).unwrap();
/// b.push(BitVector::from_bools(&[false, true, true]).as_view()).unwrap();
/// let batch = b.take_batch().unwrap();
/// assert_eq!((batch.len(), batch.dim()), (2, 3));
/// assert!(b.is_empty()); // ready for the next fill cycle
/// ```
#[derive(Debug, Clone)]
pub struct QueryBatchBuilder {
    dim: usize,
    words_per_row: usize,
    len: usize,
    data: Vec<u64>,
}

impl QueryBatchBuilder {
    /// Creates an empty builder for queries of `dim` bits.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "query dimensionality must be positive");
        QueryBatchBuilder { dim, words_per_row: dim.div_ceil(64), len: 0, data: Vec::new() }
    }

    /// Like [`QueryBatchBuilder::new`] with room for `queries` queries.
    pub fn with_capacity(dim: usize, queries: usize) -> Self {
        let mut b = Self::new(dim);
        b.data.reserve(queries * b.words_per_row);
        b
    }

    /// Queries accumulated so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no queries are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Query dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Appends one query (packed word copy, no bit manipulation).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `query.len() != dim()`.
    pub fn push(&mut self, query: BitView<'_>) -> Result<()> {
        if query.len() != self.dim {
            return Err(LinalgError::ShapeMismatch {
                op: "QueryBatchBuilder::push",
                expected: self.dim,
                found: query.len(),
            });
        }
        self.data.extend_from_slice(query.as_words());
        self.len += 1;
        Ok(())
    }

    /// Appends already-packed queries in one word copy — the zero-repack
    /// wire-ingest path. `words` must hold a whole number of
    /// `dim().div_ceil(64)`-word rows laid out exactly as [`QueryBatch`]
    /// stores them (row-major, little-endian bit order within each word);
    /// a network frame whose payload uses that layout lands in the
    /// builder with a single `memcpy` and no per-bit repacking. Returns
    /// the number of queries appended.
    ///
    /// Padding bits past `dim()` in each row's last word are cleared
    /// here: wire payloads are untrusted, and every other producer of
    /// packed words in this crate maintains the clean-tail invariant the
    /// popcount kernels rely on.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty slice and
    /// [`LinalgError::ShapeMismatch`] if `words.len()` is not a multiple
    /// of the per-row word count.
    pub fn push_packed_words(&mut self, words: &[u64]) -> Result<usize> {
        if words.is_empty() {
            return Err(LinalgError::Empty { op: "QueryBatchBuilder::push_packed_words" });
        }
        if !words.len().is_multiple_of(self.words_per_row) {
            return Err(LinalgError::ShapeMismatch {
                op: "QueryBatchBuilder::push_packed_words",
                expected: self.words_per_row,
                found: words.len(),
            });
        }
        let count = words.len() / self.words_per_row;
        let start = self.data.len();
        self.data.extend_from_slice(words);
        let tail = self.dim % 64;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            let mut row_end = start + self.words_per_row - 1;
            while row_end < self.data.len() {
                self.data[row_end] &= mask;
                row_end += self.words_per_row;
            }
        }
        self.len += count;
        Ok(count)
    }

    /// Moves the accumulated queries out as a packed [`QueryBatch`],
    /// leaving the builder empty and ready for the next fill cycle (the
    /// replacement buffer is pre-sized to the outgoing one's capacity, so
    /// a steady-state fill/take loop never walks the reallocation
    /// ladder).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if no queries were pushed.
    pub fn take_batch(&mut self) -> Result<QueryBatch> {
        if self.len == 0 {
            return Err(LinalgError::Empty { op: "QueryBatchBuilder::take_batch" });
        }
        let rows = std::mem::take(&mut self.len);
        let capacity = self.data.capacity();
        let data = std::mem::replace(&mut self.data, Vec::with_capacity(capacity));
        Ok(QueryBatch::from_matrix(BitMatrix::from_raw_words(rows, self.dim, data)))
    }
}

/// A dense `Q × R` matrix of dot-similarity scores: row `q` holds query
/// `q`'s score against every memory row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreMatrix {
    queries: usize,
    rows: usize,
    data: Vec<u32>,
}

impl ScoreMatrix {
    /// Creates a zeroed `queries × rows` score matrix (reusable scratch for
    /// [`BitMatrix::dot_batch_into`]).
    pub fn zeros(queries: usize, rows: usize) -> Self {
        ScoreMatrix { queries, rows, data: vec![0; queries * rows] }
    }

    /// `(queries, rows)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.queries, self.rows)
    }

    /// Number of queries `Q`.
    pub fn num_queries(&self) -> usize {
        self.queries
    }

    /// Number of memory rows `R` scored per query.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Scores of query `q` against every memory row.
    ///
    /// # Panics
    ///
    /// Panics if `q >= num_queries()`.
    pub fn scores(&self, q: usize) -> &[u32] {
        &self.data[q * self.rows..(q + 1) * self.rows]
    }

    /// Winning `(row, score)` for query `q`, ties toward the lower row
    /// index — the tie-break every associative search in the workspace
    /// uses.
    ///
    /// # Panics
    ///
    /// Panics if `q >= num_queries()` or the matrix has zero rows.
    pub fn argmax(&self, q: usize) -> (usize, u32) {
        argmax_scores(self.scores(q))
    }

    /// Mutable scores of query `q` — for callers that accumulate partial
    /// scores across sub-searches (e.g. partitioned IMC mappings).
    ///
    /// # Panics
    ///
    /// Panics if `q >= num_queries()`.
    pub fn scores_mut(&mut self, q: usize) -> &mut [u32] {
        &mut self.data[q * self.rows..(q + 1) * self.rows]
    }

    /// Resizes (reallocating only on growth) and zeroes the matrix.
    pub fn reset(&mut self, queries: usize, rows: usize) {
        self.queries = queries;
        self.rows = rows;
        self.data.clear();
        self.data.resize(queries * rows, 0);
    }

    /// The full row-major score buffer — kernel-facing access for the
    /// blocked sweep implementations.
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [u32] {
        &mut self.data
    }
}

/// Winner selection over a score row: highest score, ties toward the
/// lower index — the tie-break every associative search in the workspace
/// shares (exported as [`crate::argmax_u32`]).
///
/// Two passes, both branch-predictable and auto-vectorizable: a `u32` max
/// reduction, then the first position holding the max (which IS the
/// lowest-index tie-break).
///
/// # Panics
///
/// Panics if `scores` is empty.
#[inline]
pub fn argmax_scores(scores: &[u32]) -> (usize, u32) {
    assert!(!scores.is_empty(), "argmax over empty score row");
    let max = scores.iter().copied().max().expect("non-empty");
    let idx = scores.iter().position(|&s| s == max).expect("max exists");
    (idx, max)
}

/// Winners of a batched associative search: per query, the best memory row
/// under dot similarity (ties toward the lower row), plus the full score
/// matrix for callers that need runner-ups (e.g. within-class argmax during
/// training).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResults {
    scores: ScoreMatrix,
    winners: Vec<(usize, u32)>,
}

impl SearchResults {
    pub(crate) fn from_scores(scores: ScoreMatrix) -> Self {
        let winners = (0..scores.num_queries()).map(|q| scores.argmax(q)).collect();
        SearchResults { scores, winners }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.winners.len()
    }

    /// Whether there are no results.
    pub fn is_empty(&self) -> bool {
        self.winners.is_empty()
    }

    /// Winning `(row, score)` of query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn winner(&self, q: usize) -> (usize, u32) {
        self.winners[q]
    }

    /// Winning row indices, one per query.
    pub fn rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.winners.iter().map(|&(r, _)| r)
    }

    /// The full `Q × R` score matrix.
    pub fn score_matrix(&self) -> &ScoreMatrix {
        &self.scores
    }

    /// Consumes the results, yielding the score matrix without a copy.
    pub fn into_score_matrix(self) -> ScoreMatrix {
        self.scores
    }

    /// Scores of query `q` against every memory row.
    pub fn scores(&self, q: usize) -> &[u32] {
        self.scores.scores(q)
    }
}

/// Per-query k-best results of a batched top-k associative search: for
/// every query, the `min(k, rows)` best `(row, score)` pairs sorted by
/// score descending, ties toward the lower row — the same order a stable
/// sort of the full score row by `(score desc, row asc)` produces, so the
/// list's first entry IS the [`BitMatrix::winners_batch`] winner.
///
/// Storage is one flat buffer with [`TopK::hits_per_query`] slots per
/// query; [`TopK::hits`] slices it per query without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopK {
    queries: usize,
    k: usize,
    per_query: usize,
    entries: Vec<(usize, u32)>,
}

impl TopK {
    pub(crate) fn from_flat(
        queries: usize,
        k: usize,
        per_query: usize,
        entries: Vec<(usize, u32)>,
    ) -> Self {
        debug_assert_eq!(entries.len(), queries * per_query);
        TopK { queries, k, per_query, entries }
    }

    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.queries
    }

    /// Whether no queries were answered.
    pub fn is_empty(&self) -> bool {
        self.queries == 0
    }

    /// The `k` that was requested.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Entries actually held per query: `min(k, rows)` (a memory with
    /// fewer rows than `k` yields every row).
    #[inline]
    pub fn hits_per_query(&self) -> usize {
        self.per_query
    }

    /// Query `q`'s k-best `(row, score)` list, best first.
    ///
    /// # Panics
    ///
    /// Panics if `q >= len()`.
    pub fn hits(&self, q: usize) -> &[(usize, u32)] {
        &self.entries[q * self.per_query..(q + 1) * self.per_query]
    }

    /// Consumes the results into one owned list per query.
    pub fn into_vecs(self) -> Vec<Vec<(usize, u32)>> {
        self.entries.chunks(self.per_query.max(1)).map(|c| c.to_vec()).collect()
    }
}

/// Bounded k-best insertion for an **ascending-row** scan: `list[..
/// *filled]` stays sorted by `(score desc, row asc)`. Rows arrive in
/// ascending order, so a strict `>` threshold against the current k-th
/// score is exact — a later row tying the k-th score loses the row-asc
/// tie-break and can never displace it — and the common case is a single
/// compare (branch only on beat).
#[inline]
pub(crate) fn topk_insert(list: &mut [(usize, u32)], filled: &mut usize, row: usize, score: u32) {
    let n = *filled;
    if n == list.len() {
        if score <= list[n - 1].1 {
            return;
        }
        let mut i = n - 1;
        while i > 0 && list[i - 1].1 < score {
            list[i] = list[i - 1];
            i -= 1;
        }
        list[i] = (row, score);
    } else {
        let mut i = n;
        while i > 0 && list[i - 1].1 < score {
            list[i] = list[i - 1];
            i -= 1;
        }
        list[i] = (row, score);
        *filled = n + 1;
    }
}

impl BitVector {
    /// Dot similarity of this vector against each of `others` — the
    /// one-query-many-memories fast path (all popcounts through the shared
    /// word kernel, no per-pair temporaries).
    ///
    /// # Panics
    ///
    /// Panics if any element of `others` has a different length.
    pub fn dot_many(&self, others: &[BitVector]) -> Vec<u32> {
        others
            .iter()
            .map(|o| {
                assert_eq!(
                    o.len(),
                    self.len(),
                    "dot_many: length mismatch ({} vs {})",
                    o.len(),
                    self.len()
                );
                dot_words(self.as_words(), o.as_words())
            })
            .collect()
    }

    /// Hamming distance of this vector against each of `others`.
    ///
    /// # Panics
    ///
    /// Panics if any element of `others` has a different length.
    pub fn hamming_many(&self, others: &[BitVector]) -> Vec<u32> {
        others
            .iter()
            .map(|o| {
                assert_eq!(
                    o.len(),
                    self.len(),
                    "hamming_many: length mismatch ({} vs {})",
                    o.len(),
                    self.len()
                );
                hamming_words(self.as_words(), o.as_words())
            })
            .collect()
    }
}

/// Core tiled kernel: scores `q_count` queries of `batch` starting at
/// `q_offset` against every row of `memory`, writing row-major into `out`
/// (`q_count × rows` values). Queries advance in tiles of [`QUERY_TILE`]
/// so each memory word is loaded once per tile and feeds independent
/// popcount accumulator chains (ILP), with no per-query allocation.
///
/// Packed-row widths up to 8 words (`D ≤ 512` — every MEMHD AM shape)
/// dispatch to a const-generic kernel whose word loops unroll completely;
/// wider memories take the generic sliced path, where per-word popcounts
/// dominate anyway.
fn dot_batch_kernel(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    q_count: usize,
    out: &mut [u32],
) {
    debug_assert_eq!(out.len(), q_count * memory.rows());
    match memory.words_per_row_pub() {
        1 => kernel_fixed::<1>(memory, batch, q_offset, q_count, out),
        2 => kernel_fixed::<2>(memory, batch, q_offset, q_count, out),
        3 => kernel_fixed::<3>(memory, batch, q_offset, q_count, out),
        4 => kernel_fixed::<4>(memory, batch, q_offset, q_count, out),
        5 => kernel_fixed::<5>(memory, batch, q_offset, q_count, out),
        6 => kernel_fixed::<6>(memory, batch, q_offset, q_count, out),
        7 => kernel_fixed::<7>(memory, batch, q_offset, q_count, out),
        8 => kernel_fixed::<8>(memory, batch, q_offset, q_count, out),
        _ => kernel_generic(memory, batch, q_offset, q_count, out),
    }
}

/// Splits the output block of one query tile into per-query score rows.
#[inline]
fn tile_outputs(out: &mut [u32], q: usize, rows: usize) -> [&mut [u32]; QUERY_TILE] {
    let mut chunks = out[q * rows..(q + QUERY_TILE) * rows].chunks_exact_mut(rows);
    std::array::from_fn(|_| chunks.next().expect("tile output block is QUERY_TILE rows"))
}

/// Fixed-width kernel: `W` = packed words per memory row, known at compile
/// time so the per-row word loop unrolls into straight-line popcounts and
/// the tile's query words live in registers across the whole row sweep.
fn kernel_fixed<const W: usize>(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    q_count: usize,
    out: &mut [u32],
) {
    let rows = memory.rows();
    let words = memory.data_words_pub();
    debug_assert_eq!(words.len(), rows * W);
    let mut q = 0usize;
    while q + QUERY_TILE <= q_count {
        let mut qw = [[0u64; W]; QUERY_TILE];
        for (j, qj) in qw.iter_mut().enumerate() {
            // Queries may be wider than the memory (a cascade stage-0
            // sweep drives a prefix sub-memory with full-width queries);
            // only the memory's words participate.
            qj.copy_from_slice(&batch.query_words(q_offset + q + j)[..W]);
        }
        let mut outs = tile_outputs(out, q, rows);
        for (r, rw) in words.chunks_exact(W).enumerate() {
            let mut acc = [0u32; QUERY_TILE];
            for i in 0..W {
                let w = rw[i];
                for (a, qj) in acc.iter_mut().zip(&qw) {
                    *a += (w & qj[i]).count_ones();
                }
            }
            for (o, a) in outs.iter_mut().zip(acc) {
                o[r] = a;
            }
        }
        q += QUERY_TILE;
    }
    kernel_tail(memory, batch, q_offset, q, q_count, out);
}

/// Generic-width kernel for memories wider than 8 packed words; the
/// re-sliced word loop lets the compiler elide bounds checks, and the
/// per-word popcount stream dominates the per-row overhead at this size.
fn kernel_generic(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    q_count: usize,
    out: &mut [u32],
) {
    let rows = memory.rows();
    let mut q = 0usize;
    while q + QUERY_TILE <= q_count {
        let qs: [&[u64]; QUERY_TILE] = std::array::from_fn(|j| batch.query_words(q_offset + q + j));
        let mut outs = tile_outputs(out, q, rows);
        for r in 0..rows {
            let row = memory.row_words_pub(r);
            let n = row.len();
            let mut acc = [0u32; QUERY_TILE];
            for (a, qj) in acc.iter_mut().zip(qs) {
                *a = dot_words(row, &qj[..n]);
            }
            for (o, a) in outs.iter_mut().zip(acc) {
                o[r] = a;
            }
        }
        q += QUERY_TILE;
    }
    kernel_tail(memory, batch, q_offset, q, q_count, out);
}

/// Scores the final `q_count - q` queries one at a time through the
/// shared word kernel.
fn kernel_tail(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    mut q: usize,
    q_count: usize,
    out: &mut [u32],
) {
    let rows = memory.rows();
    let wpr = memory.words_per_row_pub();
    while q < q_count {
        let qw = &batch.query_words(q_offset + q)[..wpr];
        let row_out = &mut out[q * rows..(q + 1) * rows];
        for (r, slot) in row_out.iter_mut().enumerate() {
            *slot = dot_words(memory.row_words_pub(r), qw);
        }
        q += 1;
    }
}

/// Routes one contiguous query range to the layout-appropriate kernel:
/// the scalar tiled kernels for row-major memories, the active backend's
/// blocked sweep for interleaved ones.
fn dot_range(
    mem: MemoryRef<'_>,
    batch: &QueryBatch,
    q_offset: usize,
    q_count: usize,
    out: &mut [u32],
) {
    match mem {
        MemoryRef::Rows(m) => dot_batch_kernel(m, batch, q_offset, q_count, out),
        MemoryRef::Blocked(b) => {
            (kernel::active_table().blocked_dot_range)(b, batch, q_offset, q_count, out)
        }
    }
}

#[cfg(feature = "rayon")]
pub(crate) fn dot_batch_dispatch(memory: MemoryRef<'_>, batch: &QueryBatch, out: &mut ScoreMatrix) {
    let q = batch.len();
    let rows = memory.rows();
    let work = q * rows * memory.words_per_row();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if threads < 2 || work < PARALLEL_THRESHOLD || q < 2 * QUERY_TILE {
        dot_range(memory, batch, 0, q, &mut out.data);
        return;
    }
    // Chunk queries across threads; each chunk owns a disjoint slice of
    // the output, so the sweep is embarrassingly parallel and the result
    // is bit-identical to the serial order. Chunks align to the query
    // tile so only the final chunk runs the scalar tail.
    let chunks = threads.min(q.div_ceil(QUERY_TILE));
    let per_chunk = q.div_ceil(chunks).next_multiple_of(QUERY_TILE);
    let mut jobs: Vec<(usize, usize, &mut [u32])> = Vec::with_capacity(chunks);
    let mut rest = out.data.as_mut_slice();
    let mut offset = 0usize;
    while offset < q {
        let take = per_chunk.min(q - offset);
        let (head, tail) = rest.split_at_mut(take * rows);
        jobs.push((offset, take, head));
        rest = tail;
        offset += take;
    }
    std::thread::scope(|scope| {
        for (q_offset, q_count, chunk_out) in jobs {
            scope.spawn(move || dot_range(memory, batch, q_offset, q_count, chunk_out));
        }
    });
}

#[cfg(not(feature = "rayon"))]
pub(crate) fn dot_batch_dispatch(memory: MemoryRef<'_>, batch: &QueryBatch, out: &mut ScoreMatrix) {
    dot_range(memory, batch, 0, batch.len(), &mut out.data);
}

impl BitMatrix {
    /// Dot similarity of every row against every query of `batch` — the
    /// batched associative search (`Q` in-memory MVMs in the paper's
    /// architecture, answered in one sweep).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn dot_batch(&self, batch: &QueryBatch) -> Result<ScoreMatrix> {
        let mut out = ScoreMatrix::zeros(batch.len(), self.rows());
        self.dot_batch_into(batch, &mut out)?;
        Ok(out)
    }

    /// Like [`BitMatrix::dot_batch`] but reuses `out` as scratch (resized
    /// as needed) — the zero-allocation path for tiled sweeps that call
    /// the kernel repeatedly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn dot_batch_into(&self, batch: &QueryBatch, out: &mut ScoreMatrix) -> Result<()> {
        if batch.dim() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "dot_batch",
                expected: self.cols(),
                found: batch.dim(),
            });
        }
        out.reset(batch.len(), self.rows());
        match pack_for_sweep(self, batch.len()) {
            Some(blocked) => dot_batch_dispatch(MemoryRef::Blocked(&blocked), batch, out),
            None => dot_batch_dispatch(MemoryRef::Rows(self), batch, out),
        }
        Ok(())
    }

    /// Batched associative search: per query, the winning row under dot
    /// similarity (ties toward the lower row) plus the full score matrix.
    ///
    /// When only the winners are needed, prefer
    /// [`BitMatrix::winners_batch`], which never materializes the `Q × R`
    /// score matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn search_batch(&self, batch: &QueryBatch) -> Result<SearchResults> {
        Ok(SearchResults::from_scores(self.dot_batch(batch)?))
    }

    /// Batched associative search returning only the winning `(row,
    /// score)` per query.
    ///
    /// Runs the same tiled kernel as [`BitMatrix::dot_batch`] but in
    /// query blocks whose score scratch stays cache-resident: scores are
    /// reduced to winners while hot instead of being streamed out, which
    /// is what makes large-batch classification markedly faster than the
    /// per-query loop.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the batch dimensionality
    /// differs from `cols`.
    pub fn winners_batch(&self, batch: &QueryBatch) -> Result<Vec<(usize, u32)>> {
        if batch.dim() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "winners_batch",
                expected: self.cols(),
                found: batch.dim(),
            });
        }
        let q_total = batch.len();
        let mut winners = vec![(0usize, 0u32); q_total];
        match pack_for_sweep(self, q_total) {
            Some(blocked) => winners_dispatch(MemoryRef::Blocked(&blocked), batch, &mut winners),
            None => winners_dispatch(MemoryRef::Rows(self), batch, &mut winners),
        }
        Ok(winners)
    }

    /// Batched top-k associative search: per query, the `min(k, rows)`
    /// best `(row, score)` pairs under dot similarity, sorted by score
    /// descending with ties toward the lower row — fused into the sweep
    /// (a bounded k-best list per query, threshold = the running k-th
    /// score), never materializing the `Q × R` score matrix.
    ///
    /// `k == 1` is exactly [`BitMatrix::winners_batch`]; `k >= rows`
    /// returns every row in sorted order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `k == 0` or the memory has no
    /// rows, and [`LinalgError::ShapeMismatch`] if the batch
    /// dimensionality differs from `cols`.
    pub fn topk_batch(&self, batch: &QueryBatch, k: usize) -> Result<TopK> {
        if k == 0 || self.rows() == 0 {
            return Err(LinalgError::Empty { op: "topk_batch" });
        }
        if batch.dim() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "topk_batch",
                expected: self.cols(),
                found: batch.dim(),
            });
        }
        let per_query = k.min(self.rows());
        let mut entries = vec![(0usize, 0u32); batch.len() * per_query];
        match pack_for_sweep(self, batch.len()) {
            Some(blocked) => {
                topk_dispatch(MemoryRef::Blocked(&blocked), batch, per_query, &mut entries)
            }
            None => topk_dispatch(MemoryRef::Rows(self), batch, per_query, &mut entries),
        }
        Ok(TopK::from_flat(batch.len(), k, per_query, entries))
    }
}

/// Routes one contiguous winners range to the layout-appropriate kernel.
pub(crate) fn winners_range(
    mem: MemoryRef<'_>,
    batch: &QueryBatch,
    q_offset: usize,
    out: &mut [(usize, u32)],
) {
    match mem {
        MemoryRef::Rows(m) => winners_rows_range(m, batch, q_offset, out),
        MemoryRef::Blocked(b) => {
            (kernel::active_table().blocked_winners_range)(b, batch, q_offset, out)
        }
    }
}

/// Blocked winners sweep over queries `[q_offset, q_offset + out.len())`.
///
/// Fixed-width memories use a fused kernel that tracks each tile query's
/// running winner in registers (no score matrix is ever written); wider
/// memories fill a cache-resident scratch block and reduce it while hot.
fn winners_rows_range(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    out: &mut [(usize, u32)],
) {
    match memory.words_per_row_pub() {
        1 => winners_kernel_fixed::<1>(memory, batch, q_offset, out),
        2 => winners_kernel_fixed::<2>(memory, batch, q_offset, out),
        3 => winners_kernel_fixed::<3>(memory, batch, q_offset, out),
        4 => winners_kernel_fixed::<4>(memory, batch, q_offset, out),
        5 => winners_kernel_fixed::<5>(memory, batch, q_offset, out),
        6 => winners_kernel_fixed::<6>(memory, batch, q_offset, out),
        7 => winners_kernel_fixed::<7>(memory, batch, q_offset, out),
        8 => winners_kernel_fixed::<8>(memory, batch, q_offset, out),
        _ => winners_blocked(memory, batch, q_offset, out),
    }
}

/// Query-side width of the fused winners kernel's 2-D register block.
/// Small enough that the tile's query words stay in registers.
const WINNER_QT: usize = 4;
/// Row-side depth of the 2-D block: each loaded memory word feeds
/// [`WINNER_QT`] queries, and each loaded query word feeds this many rows.
const WINNER_RT: usize = 4;

/// Fused fixed-width winners kernel: a 2-D register block (4 rows × 4
/// queries) so every loaded word — memory or query — feeds four popcount
/// chains, and each query's best `(row, score)` is tracked in registers
/// with a strict `>` compare (which preserves the lowest-row tie-break).
/// No score ever touches memory.
fn winners_kernel_fixed<const W: usize>(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    out: &mut [(usize, u32)],
) {
    let rows = memory.rows();
    let words = memory.data_words_pub();
    debug_assert_eq!(words.len(), rows * W);
    let q_count = out.len();
    let mut q = 0usize;
    while q + WINNER_QT <= q_count {
        let mut qw = [[0u64; W]; WINNER_QT];
        for (j, qj) in qw.iter_mut().enumerate() {
            qj.copy_from_slice(&batch.query_words(q_offset + q + j)[..W]);
        }
        let mut best_score = [0u32; WINNER_QT];
        let mut best_row = [0u32; WINNER_QT];
        let mut r = 0usize;
        while r + WINNER_RT <= rows {
            let block = &words[r * W..(r + WINNER_RT) * W];
            let mut acc = [[0u32; WINNER_QT]; WINNER_RT];
            for i in 0..W {
                for t in 0..WINNER_RT {
                    let w = block[t * W + i];
                    for j in 0..WINNER_QT {
                        acc[t][j] += (w & qw[j][i]).count_ones();
                    }
                }
            }
            for (t, acc_row) in acc.iter().enumerate() {
                for j in 0..WINNER_QT {
                    if acc_row[j] > best_score[j] {
                        best_score[j] = acc_row[j];
                        best_row[j] = (r + t) as u32;
                    }
                }
            }
            r += WINNER_RT;
        }
        // Tail rows of the memory.
        while r < rows {
            let rw = &words[r * W..(r + 1) * W];
            for j in 0..WINNER_QT {
                let s = dot_words(rw, &qw[j]);
                if s > best_score[j] {
                    best_score[j] = s;
                    best_row[j] = r as u32;
                }
            }
            r += 1;
        }
        for j in 0..WINNER_QT {
            out[q + j] = (best_row[j] as usize, best_score[j]);
        }
        q += WINNER_QT;
    }
    // Tail queries: same strict-> winner scan, one query at a time.
    while q < q_count {
        let qw = &batch.query_words(q_offset + q)[..W];
        let mut best = (0usize, 0u32);
        for (r, rw) in words.chunks_exact(W).enumerate() {
            let s = dot_words(rw, qw);
            if s > best.1 {
                best = (r, s);
            }
        }
        out[q] = best;
        q += 1;
    }
}

/// Winners for wide memories: the tiled kernel fills a cache-resident
/// scratch block, which is reduced to per-query winners while hot.
fn winners_blocked(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    out: &mut [(usize, u32)],
) {
    let rows = memory.rows();
    // Keep (block × rows) u32 scratch around L1 size.
    let block = (8192 / rows.max(1)).clamp(QUERY_TILE, 256).next_multiple_of(QUERY_TILE);
    let q_total = out.len();
    let mut scratch = vec![0u32; block.min(q_total.max(1)) * rows];
    let mut done = 0usize;
    while done < q_total {
        let count = block.min(q_total - done);
        let scores = &mut scratch[..count * rows];
        dot_batch_kernel(memory, batch, q_offset + done, count, scores);
        for q in 0..count {
            out[done + q] = argmax_scores(&scores[q * rows..(q + 1) * rows]);
        }
        done += count;
    }
}

#[cfg(feature = "rayon")]
pub(crate) fn winners_dispatch(
    memory: MemoryRef<'_>,
    batch: &QueryBatch,
    winners: &mut [(usize, u32)],
) {
    let q = winners.len();
    let work = q * memory.rows() * memory.words_per_row();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if threads < 2 || work < PARALLEL_THRESHOLD || q < 2 * QUERY_TILE {
        winners_range(memory, batch, 0, winners);
        return;
    }
    let chunks = threads.min(q.div_ceil(QUERY_TILE));
    let per_chunk = q.div_ceil(chunks).next_multiple_of(QUERY_TILE);
    let mut jobs: Vec<(usize, &mut [(usize, u32)])> = Vec::with_capacity(chunks);
    let mut rest = winners;
    let mut offset = 0usize;
    while !rest.is_empty() {
        let take = per_chunk.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        jobs.push((offset, head));
        rest = tail;
        offset += take;
    }
    std::thread::scope(|scope| {
        for (q_offset, chunk) in jobs {
            scope.spawn(move || winners_range(memory, batch, q_offset, chunk));
        }
    });
}

#[cfg(not(feature = "rayon"))]
pub(crate) fn winners_dispatch(
    memory: MemoryRef<'_>,
    batch: &QueryBatch,
    winners: &mut [(usize, u32)],
) {
    winners_range(memory, batch, 0, winners);
}

/// Routes one contiguous top-k range (`out.len() / k` queries, `k` slots
/// each) to the layout-appropriate kernel.
pub(crate) fn topk_range(
    mem: MemoryRef<'_>,
    batch: &QueryBatch,
    q_offset: usize,
    k: usize,
    out: &mut [(usize, u32)],
) {
    match mem {
        MemoryRef::Rows(m) => topk_rows_range(m, batch, q_offset, k, out),
        MemoryRef::Blocked(b) => {
            (kernel::active_table().blocked_topk_range)(b, batch, q_offset, k, out)
        }
    }
}

/// Row-major fused top-k sweep: per query, one bounded k-best list
/// updated row by row through [`topk_insert`] — the `>` threshold against
/// the running k-th score keeps the common case to a single compare, and
/// no score row is ever materialized. `k` here is already clamped to the
/// row count by the entry points.
fn topk_rows_range(
    memory: &BitMatrix,
    batch: &QueryBatch,
    q_offset: usize,
    k: usize,
    out: &mut [(usize, u32)],
) {
    let wpr = memory.words_per_row_pub();
    for (q, slots) in out.chunks_exact_mut(k).enumerate() {
        let qw = &batch.query_words(q_offset + q)[..wpr];
        let mut filled = 0usize;
        for (r, rw) in memory.data_words_pub().chunks_exact(wpr.max(1)).enumerate() {
            let s = dot_words(rw, qw);
            topk_insert(slots, &mut filled, r, s);
        }
        debug_assert_eq!(filled, k);
    }
}

#[cfg(feature = "rayon")]
pub(crate) fn topk_dispatch(
    memory: MemoryRef<'_>,
    batch: &QueryBatch,
    k: usize,
    out: &mut [(usize, u32)],
) {
    let q = out.len() / k;
    let work = q * memory.rows() * memory.words_per_row();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if threads < 2 || work < PARALLEL_THRESHOLD || q < 2 * QUERY_TILE {
        topk_range(memory, batch, 0, k, out);
        return;
    }
    let chunks = threads.min(q.div_ceil(QUERY_TILE));
    let per_chunk = q.div_ceil(chunks).next_multiple_of(QUERY_TILE);
    let mut jobs: Vec<(usize, &mut [(usize, u32)])> = Vec::with_capacity(chunks);
    let mut rest = out;
    let mut offset = 0usize;
    while !rest.is_empty() {
        let take = per_chunk.min(rest.len() / k);
        let (head, tail) = rest.split_at_mut(take * k);
        jobs.push((offset, head));
        rest = tail;
        offset += take;
    }
    std::thread::scope(|scope| {
        for (q_offset, chunk) in jobs {
            scope.spawn(move || topk_range(memory, batch, q_offset, k, chunk));
        }
    });
}

#[cfg(not(feature = "rayon"))]
pub(crate) fn topk_dispatch(
    memory: MemoryRef<'_>,
    batch: &QueryBatch,
    k: usize,
    out: &mut [(usize, u32)],
) {
    topk_range(memory, batch, 0, k, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rand::Rng;

    fn random_bits(len: usize, rng: &mut rand::rngs::StdRng) -> BitVector {
        let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
        BitVector::from_bools(&bits)
    }

    #[test]
    fn batch_matches_sequential_dot_all() {
        let mut rng = seeded(1);
        for dim in [1usize, 63, 64, 65, 128, 257] {
            let rows: Vec<BitVector> = (0..13).map(|_| random_bits(dim, &mut rng)).collect();
            let m = BitMatrix::from_rows(&rows).unwrap();
            let queries: Vec<BitVector> = (0..9).map(|_| random_bits(dim, &mut rng)).collect();
            let batch = QueryBatch::from_vectors(&queries).unwrap();
            let scores = m.dot_batch(&batch).unwrap();
            for (q, query) in queries.iter().enumerate() {
                assert_eq!(scores.scores(q), m.dot_all(query).as_slice(), "dim {dim} q {q}");
            }
        }
    }

    #[test]
    fn search_batch_winners_match_argmax() {
        let mut rng = seeded(2);
        let rows: Vec<BitVector> = (0..7).map(|_| random_bits(100, &mut rng)).collect();
        let m = BitMatrix::from_rows(&rows).unwrap();
        let queries: Vec<BitVector> = (0..21).map(|_| random_bits(100, &mut rng)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let results = m.search_batch(&batch).unwrap();
        assert_eq!(results.len(), 21);
        for (q, query) in queries.iter().enumerate() {
            let scores = m.dot_all(query);
            let (row, score) = results.winner(q);
            assert_eq!(score, scores[row]);
            // Low-row tie-break: no earlier row may match the best score.
            for (r, &s) in scores.iter().enumerate().take(row) {
                assert!(s < score, "query {q}: row {r} ties winner {row}");
            }
            assert!(scores.iter().all(|&s| s <= score));
        }
    }

    #[test]
    fn dot_many_and_hamming_many_match_pairwise() {
        let mut rng = seeded(3);
        let v = random_bits(130, &mut rng);
        let others: Vec<BitVector> = (0..6).map(|_| random_bits(130, &mut rng)).collect();
        let dots = v.dot_many(&others);
        let hams = v.hamming_many(&others);
        for (i, o) in others.iter().enumerate() {
            assert_eq!(dots[i], v.dot(o));
            assert_eq!(hams[i], v.hamming(o));
        }
    }

    #[test]
    fn scratch_reuse_resets_state() {
        let mut rng = seeded(4);
        let rows: Vec<BitVector> = (0..3).map(|_| random_bits(64, &mut rng)).collect();
        let m = BitMatrix::from_rows(&rows).unwrap();
        let q1: Vec<BitVector> = (0..5).map(|_| random_bits(64, &mut rng)).collect();
        let q2: Vec<BitVector> = (0..2).map(|_| random_bits(64, &mut rng)).collect();
        let mut scratch = ScoreMatrix::zeros(0, 0);
        m.dot_batch_into(&QueryBatch::from_vectors(&q1).unwrap(), &mut scratch).unwrap();
        assert_eq!(scratch.shape(), (5, 3));
        m.dot_batch_into(&QueryBatch::from_vectors(&q2).unwrap(), &mut scratch).unwrap();
        assert_eq!(scratch.shape(), (2, 3));
        assert_eq!(scratch.scores(1), m.dot_all(&q2[1]).as_slice());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = BitMatrix::zeros(2, 64);
        let batch = QueryBatch::from_vectors(&[BitVector::zeros(65)]).unwrap();
        assert!(matches!(
            m.dot_batch(&batch),
            Err(LinalgError::ShapeMismatch { op: "dot_batch", .. })
        ));
    }

    #[test]
    fn query_batch_roundtrip() {
        let queries = vec![BitVector::from_bools(&[true, false, true]), BitVector::zeros(3)];
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        assert_eq!(batch.query(0), queries[0]);
        assert_eq!(batch.query(1), queries[1]);
        assert!(QueryBatch::from_vectors(&[]).is_err());
    }

    #[test]
    fn winners_batch_matches_search_batch() {
        let mut rng = seeded(7);
        for (n_rows, dim, n_queries) in [(3usize, 64usize, 5usize), (128, 128, 300)] {
            let rows: Vec<BitVector> = (0..n_rows).map(|_| random_bits(dim, &mut rng)).collect();
            let m = BitMatrix::from_rows(&rows).unwrap();
            let queries: Vec<BitVector> =
                (0..n_queries).map(|_| random_bits(dim, &mut rng)).collect();
            let batch = QueryBatch::from_vectors(&queries).unwrap();
            let winners = m.winners_batch(&batch).unwrap();
            let full = m.search_batch(&batch).unwrap();
            assert_eq!(winners.len(), n_queries);
            for (q, &w) in winners.iter().enumerate() {
                assert_eq!(w, full.winner(q), "query {q}");
            }
        }
        // Dimension mismatch is rejected.
        let m = BitMatrix::zeros(2, 64);
        let bad = QueryBatch::from_vectors(&[BitVector::zeros(63)]).unwrap();
        assert!(m.winners_batch(&bad).is_err());
    }

    #[test]
    fn builder_matches_from_vectors() {
        let mut rng = seeded(11);
        let queries: Vec<BitVector> = (0..6).map(|_| random_bits(130, &mut rng)).collect();
        let mut builder = QueryBatchBuilder::with_capacity(130, queries.len());
        for q in &queries {
            builder.push(q.as_view()).unwrap();
        }
        assert_eq!(builder.len(), 6);
        let batch = builder.take_batch().unwrap();
        assert_eq!(batch, QueryBatch::from_vectors(&queries).unwrap());
        // Builder is reusable after take_batch.
        assert!(builder.is_empty());
        assert!(builder.take_batch().is_err());
        builder.push(queries[0].as_view()).unwrap();
        assert_eq!(builder.take_batch().unwrap().len(), 1);
        // Dimension mismatches are rejected without corrupting state.
        let mut b = QueryBatchBuilder::new(8);
        assert!(b.push(BitVector::zeros(9).as_view()).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn argmax_scores_tie_break() {
        assert_eq!(argmax_scores(&[3, 5, 5, 1]), (1, 5));
        assert_eq!(argmax_scores(&[7]), (0, 7));
        assert_eq!(argmax_scores(&[0, 0, 0]), (0, 0));
    }

    #[test]
    fn segments_match_per_bit_slices_on_every_grid() {
        let mut rng = seeded(7);
        // Word-aligned (64), unaligned (100, 50), and sub-word (25)
        // partitionings all reproduce the per-bit slices exactly.
        for (dim, seg_len) in [(256usize, 64usize), (300, 100), (300, 50), (100, 25), (130, 65)] {
            let queries: Vec<BitVector> = (0..9).map(|_| random_bits(dim, &mut rng)).collect();
            let batch = QueryBatch::from_vectors(&queries).unwrap();
            let segs = batch.segments(seg_len).unwrap();
            assert_eq!(segs.len(), dim / seg_len);
            for (p, seg) in segs.iter().enumerate() {
                assert_eq!((seg.len(), seg.dim()), (queries.len(), seg_len));
                for (i, q) in queries.iter().enumerate() {
                    assert_eq!(
                        seg.query(i).to_bit_vector(),
                        q.slice(p * seg_len, seg_len),
                        "dim {dim} seg {seg_len} part {p} query {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn segments_cache_is_shared_and_bounded() {
        let mut rng = seeded(8);
        let queries: Vec<BitVector> = (0..4).map(|_| random_bits(300, &mut rng)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        // Repeat calls and clones hand back the same Arc — the
        // zero-repack guarantee for repeated unaligned batches.
        let first = batch.segments(100).unwrap();
        assert!(Arc::ptr_eq(&first, &batch.segments(100).unwrap()));
        assert!(Arc::ptr_eq(&first, &batch.clone().segments(100).unwrap()));
        // A second partitioning coexists (two cache slots)...
        let other = batch.segments(150).unwrap();
        assert!(Arc::ptr_eq(&other, &batch.segments(150).unwrap()));
        assert!(Arc::ptr_eq(&first, &batch.segments(100).unwrap()));
        // ...and a third evicts the least-recently-used partitioning:
        // 150 (100 was re-touched on its last hit), never the hot one.
        let third = batch.segments(75).unwrap();
        assert!(Arc::ptr_eq(&third, &batch.segments(75).unwrap()));
        assert!(Arc::ptr_eq(&first, &batch.segments(100).unwrap()));
        let rederived = batch.segments(150).unwrap();
        assert!(!Arc::ptr_eq(&other, &rederived));
        assert_eq!(other.as_ref(), rederived.as_ref());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// Any interleaving of `segments` calls across a batch and its
        /// clone — more distinct `seg_len`s than cache slots, so
        /// evictions and re-derivations happen constantly — always
        /// returns views of exactly the requested `seg_len` whose bits
        /// match a per-bit reference slice. A stale-keyed cache entry
        /// (or an eviction bug handing back the wrong partitioning)
        /// fails the width or content assertion immediately.
        #[test]
        fn segments_cache_never_serves_stale_seg_len(
            ops in proptest::collection::vec(0usize..4, 1..24),
            rows in 1usize..5,
            seed in 0u64..(1u64 << 32),
        ) {
            use proptest::prelude::prop_assert_eq;
            let lens = [100usize, 150, 75, 300];
            let mut rng = seeded(seed);
            let queries: Vec<BitVector> = (0..rows).map(|_| random_bits(300, &mut rng)).collect();
            let batch = QueryBatch::from_vectors(&queries).unwrap();
            let clone = batch.clone();
            for (i, &op) in ops.iter().enumerate() {
                let seg_len = lens[op];
                // Alternate between the original and the clone: they
                // share one cache, so hits/evictions cross over.
                let via = if i % 2 == 0 { &batch } else { &clone };
                let segs = via.segments(seg_len).unwrap();
                prop_assert_eq!(segs.len(), 300 / seg_len);
                for (p, seg) in segs.iter().enumerate() {
                    prop_assert_eq!(seg.dim(), seg_len);
                    for q in 0..rows {
                        prop_assert_eq!(
                            seg.query(q).to_bit_vector(),
                            batch.query(q).slice(p * seg_len, seg_len)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn push_packed_words_matches_per_query_push_and_cleans_tails() {
        let mut rng = seeded(23);
        for dim in [64usize, 130, 300] {
            let queries: Vec<BitVector> = (0..6).map(|_| random_bits(dim, &mut rng)).collect();
            // Wire layout: each query's packed words back to back.
            let wpr = dim.div_ceil(64);
            let mut words: Vec<u64> = Vec::with_capacity(6 * wpr);
            for q in &queries {
                words.extend_from_slice(q.as_words());
            }
            // Dirty the padding bits the way a hostile client could.
            if dim % 64 != 0 {
                for r in 0..queries.len() {
                    words[r * wpr + wpr - 1] |= !0u64 << (dim % 64);
                }
            }
            let mut packed = QueryBatchBuilder::new(dim);
            assert_eq!(packed.push_packed_words(&words).unwrap(), queries.len());
            assert_eq!(packed.len(), queries.len());
            let mut reference = QueryBatchBuilder::new(dim);
            for q in &queries {
                reference.push(q.as_view()).unwrap();
            }
            // Bit-identical to the per-query path (tails cleaned), so
            // the wire payload landed without any repacking step.
            assert_eq!(packed.take_batch().unwrap(), reference.take_batch().unwrap());
        }
    }

    #[test]
    fn push_packed_words_rejects_bad_shapes_and_interleaves_with_push() {
        let mut rng = seeded(24);
        let dim = 130usize;
        let wpr = dim.div_ceil(64);
        let queries: Vec<BitVector> = (0..5).map(|_| random_bits(dim, &mut rng)).collect();
        let mut b = QueryBatchBuilder::new(dim);
        assert!(matches!(
            b.push_packed_words(&[]),
            Err(LinalgError::Empty { op: "QueryBatchBuilder::push_packed_words" })
        ));
        let stray = vec![0u64; wpr + 1];
        assert!(matches!(
            b.push_packed_words(&stray),
            Err(LinalgError::ShapeMismatch { found: 4, .. })
        ));
        assert!(b.is_empty(), "failed pushes must not enqueue partial rows");
        // Mixed single-query and packed-frame ingestion builds the same
        // batch as packing everything up front.
        b.push(queries[0].as_view()).unwrap();
        let mut frame: Vec<u64> = Vec::new();
        for q in &queries[1..4] {
            frame.extend_from_slice(q.as_words());
        }
        assert_eq!(b.push_packed_words(&frame).unwrap(), 3);
        b.push(queries[4].as_view()).unwrap();
        assert_eq!(b.take_batch().unwrap(), QueryBatch::from_vectors(&queries).unwrap());
    }

    #[test]
    fn segments_validate_partitioning() {
        let batch = QueryBatch::from_vectors(&[BitVector::zeros(128)]).unwrap();
        assert!(matches!(
            batch.segments(0),
            Err(LinalgError::Empty { op: "QueryBatch::segments" })
        ));
        assert!(matches!(
            batch.segments(100),
            Err(LinalgError::ShapeMismatch { op: "QueryBatch::segments", .. })
        ));
        // The full width is a valid single-segment partitioning.
        let whole = batch.segments(128).unwrap();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0], batch);
    }

    #[test]
    fn large_batch_exercises_tiling_tails() {
        // 10 queries: two full tiles of 4 plus a tail of 2.
        let mut rng = seeded(5);
        let rows: Vec<BitVector> = (0..5).map(|_| random_bits(65, &mut rng)).collect();
        let m = BitMatrix::from_rows(&rows).unwrap();
        let queries: Vec<BitVector> = (0..10).map(|_| random_bits(65, &mut rng)).collect();
        let batch = QueryBatch::from_vectors(&queries).unwrap();
        let scores = m.dot_batch(&batch).unwrap();
        for (q, query) in queries.iter().enumerate() {
            assert_eq!(scores.scores(q), query.dot_many(&rows).as_slice());
        }
    }
}
